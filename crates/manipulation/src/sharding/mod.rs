//! Incremental, sharded space–time routing for full-array workloads.
//!
//! The global planner in [`crate::routing`] plans every particle against one
//! monolithic reservation table spanning the whole array and the whole
//! horizon. That is exact, but at the paper's scale — thousands of DEP cages
//! moving concurrently on a 320×320 array — a single A\* pass over a
//! `(cells × steps)` state space is both slow and needlessly serial. The
//! [`IncrementalRouter`] plans *incrementally* instead:
//!
//! * **Windows** — motion is planned `window` steps at a time; each window
//!   starts from the executed positions of the previous one, so the plan
//!   adapts as traffic develops instead of committing to a full-horizon
//!   schedule up front.
//! * **Shards** — within a window the grid is partitioned into
//!   `shard_side`-sized tiles and every shard plans its own particles with a
//!   bounded space–time A\*, in parallel across shards (rayon). Mobile
//!   particles are confined to their tile's *interior*: a margin of
//!   `min_separation / 2` cells along every internal tile boundary is
//!   off-limits, which makes two mobile particles in different shards
//!   provably unable to violate the separation rule — no cross-shard
//!   communication is needed during planning.
//! * **Cross-shard handoff** — particles cross tile boundaries because the
//!   partition is *staggered*: successive windows cycle the partition offset
//!   through four phases (`(0,0)`, `(s/2,0)`, `(0,s/2)`, `(s/2,s/2)`), so
//!   every cell is interior in at least one phase and traffic ratchets
//!   between tiles window by window.
//! * **Re-planning on conflict** — after the per-shard plans are merged the
//!   window is verified with a dense occupancy scan; any violating particle
//!   (none are expected by construction, but frozen corner cases are cheap
//!   to guard) is demoted to wait-in-place and then re-planned serially
//!   against the merged reservation table.
//! * **Warm starts** — [`IncrementalRouter::solve_cached`] memoizes each
//!   shard's window plan in a [`RouterCache`] keyed by a content hash of
//!   everything the shard planner reads. Re-solving an unchanged (or mostly
//!   unchanged) problem replays cached paths instead of searching, and
//!   because the key covers the planner's *entire* input, a hit is
//!   bit-identical to a recompute by construction.
//!
//! The hot loops are struct-of-arrays throughout (`astar_soa`): flat
//! epoch-stamped arrays for reservations, zones, and A\* scratch, pooled in
//! reusable arenas instead of being allocated per shard inside the rayon
//! closure.
//!
//! The outcome is deterministic — per-shard plans depend only on the
//! window-start state and are merged in shard order — so results are
//! bit-identical for any thread count, and identical between cold and
//! cached solves.

mod astar_soa;
mod cache;
mod partition;
mod verify;

pub use cache::{covering_tiles, CacheStats, RouterCache};

use crate::cage::ParticleId;
use crate::error::ManipulationError;
use crate::routing::{ParticlePath, RoutingOutcome, RoutingProblem};
use astar_soa::{position_at, window_astar, Arena, ArenaPool, DenseZone};
use cache::shard_key;
use labchip_units::GridCoord;
use partition::{stagger_phases, Partition, TileMembership};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use verify::{verify_and_repair, ConflictScan};

/// Sharding and windowing knobs of the [`IncrementalRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Tile edge length in electrodes (clamped so a tile interior exists).
    pub shard_side: u32,
    /// Cage steps planned per window.
    pub window: u32,
    /// Give up after this many consecutive windows with no movement (at
    /// least 4, so every stagger phase gets a chance).
    pub max_stagnant_windows: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shard_side: 32,
            window: 8,
            max_stagnant_windows: 4,
        }
    }
}

/// Bounded node expansions per windowed A\* call; searches that exhaust the
/// cap settle for the best stopping cell found so far.
const EXPANSION_CAP: usize = 2048;

/// The incremental sharded space–time router.
///
/// Produces a [`RoutingOutcome`] with the same contract as
/// [`crate::routing::Router::solve`]: conflict-free paths for the particles
/// it routed, the rest reported in `unrouted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IncrementalRouter {
    /// Sharding and windowing parameters.
    pub shards: ShardConfig,
}

impl IncrementalRouter {
    /// Creates a router with the given shard configuration.
    pub fn new(shards: ShardConfig) -> Self {
        Self { shards }
    }

    /// The tile edge length actually used for a problem with the given
    /// separation: the configured `shard_side`, clamped so a tile interior
    /// exists, there is room for the half-tile stagger, and the staggered
    /// margin strips of successive phases leave an overlap corridor for the
    /// cross-shard handoff. Cache invalidation must use this value when
    /// mapping dirty cells to staggered tiles (see [`covering_tiles`]).
    pub fn effective_side(&self, min_separation: u32) -> u32 {
        let margin = min_separation.max(1) / 2;
        self.shards.shard_side.max(4 * margin + 2).max(4)
    }

    /// Solves a routing problem incrementally, from a cold start.
    ///
    /// # Errors
    ///
    /// Returns the validation error of an ill-formed problem; an unsolvable
    /// but well-formed problem is reported through
    /// [`RoutingOutcome::unrouted`] instead.
    pub fn solve(&self, problem: &RoutingProblem) -> Result<RoutingOutcome, ManipulationError> {
        problem.validate()?;
        Ok(self.plan(problem, None))
    }

    /// Solves a routing problem, reading and populating `cache` so that
    /// repeated or overlapping solves replay unchanged shards instead of
    /// re-searching them. The outcome is bit-identical to [`Self::solve`]
    /// regardless of the cache's contents.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    pub fn solve_cached(
        &self,
        problem: &RoutingProblem,
        cache: &mut RouterCache,
    ) -> Result<RoutingOutcome, ManipulationError> {
        problem.validate()?;
        Ok(self.plan(problem, Some(cache)))
    }

    /// Benchmark probe for the per-window partition build: classifies
    /// `positions` against a fresh staggered partition (margin
    /// freezing included) and builds the structure-of-arrays tile
    /// membership exactly as one planning window does. Returns
    /// `(occupied_tiles, mobile_particles)` so the work is observable.
    pub fn partition_build_probe(
        &self,
        dims: labchip_units::GridDims,
        min_separation: u32,
        positions: &[GridCoord],
    ) -> (usize, usize) {
        let sep = min_separation.max(1);
        let margin = sep / 2;
        let side = self.effective_side(min_separation);
        let part = Partition::new(dims, side, 0, 0);
        let frozen: Vec<bool> = positions
            .iter()
            .map(|pos| part.in_margin(*pos, margin))
            .collect();
        let mut membership = TileMembership::build(&part, positions, &frozen);
        membership.sort_each_tile_by_key(|i| i);
        let mobile = frozen.iter().filter(|f| !**f).count();
        (membership.occupied_tiles(), mobile)
    }

    fn plan(
        &self,
        problem: &RoutingProblem,
        mut cache: Option<&mut RouterCache>,
    ) -> RoutingOutcome {
        let n = problem.requests.len();
        let sep = problem.min_separation.max(1);
        let margin = sep / 2;
        let side = self.effective_side(problem.min_separation);
        let window = self.shards.window.max(1) as usize;
        let phases = stagger_phases(side);

        let goals: Vec<GridCoord> = problem.requests.iter().map(|r| r.goal).collect();
        let mut positions: Vec<GridCoord> = problem.requests.iter().map(|r| r.start).collect();
        let mut histories: Vec<Vec<GridCoord>> = positions.iter().map(|p| vec![*p]).collect();
        let mut pending_stays = vec![0usize; n];

        // Per-window scratch, reused across windows — and, when a cache is
        // supplied, across whole solves (the pool lives in the cache and is
        // swapped in here for the duration of the plan).
        let pool: ArenaPool = cache
            .as_mut()
            .map(|c| std::mem::take(&mut c.arenas))
            .unwrap_or_default();
        let mut frozen_zone = DenseZone::default();
        let mut scan = ConflictScan::default();
        let mut frozen_touch: Vec<(u32, GridCoord)> = Vec::new();
        let grid_lo = GridCoord::new(0, 0);
        let grid_hi = GridCoord::new(problem.dims.cols - 1, problem.dims.rows - 1);

        let mut elapsed = 0usize;
        let mut stagnant = 0u32;
        let max_stagnant = self.shards.max_stagnant_windows.max(4);
        let mut phase = 0usize;

        while elapsed < problem.max_steps && n > 0 {
            if positions.iter().zip(&goals).all(|(p, g)| p == g) {
                break;
            }
            let (ox, oy) = phases[phase];
            let part = Partition::new(problem.dims, side, ox, oy);
            phase = (phase + 1) % phases.len();

            // Classify: margin dwellers freeze for this window, everyone
            // else plans within their tile.
            frozen_zone.begin(grid_lo, grid_hi);
            let mut frozen = vec![false; n];
            for (i, pos) in positions.iter().enumerate() {
                if part.in_margin(*pos, margin) {
                    frozen[i] = true;
                    frozen_zone.add(*pos, sep);
                }
            }
            let mut membership = TileMembership::build(&part, &positions, &frozen);

            // Front-runners first: particles closest to their goals plan
            // first so convoys flow instead of blocking on their leaders.
            membership.sort_each_tile_by_key(|i| {
                let i = i as usize;
                (positions[i].manhattan(goals[i]), i)
            });

            // Cache lookup: a shard whose full planning input hashes to a
            // stored key replays its paths; the rest plan fresh below.
            let mut shard_paths: Vec<Vec<Vec<GridCoord>>> = vec![Vec::new(); part.tile_count()];
            let mut needs_plan: Vec<bool> = vec![false; part.tile_count()];
            let mut keys: Vec<u128> = Vec::new();
            match cache.as_deref_mut() {
                Some(cache_ref) => {
                    keys = vec![0u128; part.tile_count()];
                    frozen_touch.clear();
                    let reach = sep.saturating_sub(1);
                    for (i, pos) in positions.iter().enumerate() {
                        if !frozen[i] {
                            continue;
                        }
                        let lo = GridCoord::new(
                            pos.x.saturating_sub(reach),
                            pos.y.saturating_sub(reach),
                        );
                        let hi = GridCoord::new(pos.x + reach, pos.y + reach);
                        for tile in part.tiles_in_box(lo, hi) {
                            frozen_touch.push((tile as u32, *pos));
                        }
                    }
                    // Stable by tile: particle order within a tile is kept.
                    frozen_touch.sort_by_key(|&(tile, _)| tile);
                    for tile in 0..part.tile_count() {
                        let indices = membership.members(tile);
                        if indices.is_empty() {
                            continue;
                        }
                        let lo_idx = frozen_touch.partition_point(|&(t, _)| (t as usize) < tile);
                        let hi_idx = frozen_touch.partition_point(|&(t, _)| (t as usize) <= tile);
                        let key = shard_key(
                            problem.dims,
                            side,
                            ox,
                            oy,
                            tile,
                            sep,
                            window,
                            indices
                                .iter()
                                .map(|&i| (positions[i as usize], goals[i as usize])),
                            &frozen_touch[lo_idx..hi_idx],
                        );
                        keys[tile] = key;
                        needs_plan[tile] = !cache_ref.fetch(key, &mut shard_paths[tile]);
                    }
                }
                None => {
                    for (tile, needs) in needs_plan.iter_mut().enumerate() {
                        *needs = !membership.members(tile).is_empty();
                    }
                }
            }

            // Plan the missing shards in parallel; each plan depends only
            // on the window-start state, so the merge below is
            // deterministic regardless of the hit/miss pattern.
            let positions_ref = &positions;
            let goals_ref = &goals;
            let frozen_ref = &frozen_zone;
            let membership_ref = &membership;
            let needs_ref = &needs_plan;
            let pool_ref = &pool;
            shard_paths
                .par_iter_mut()
                .enumerate()
                .for_each(|(tile, out)| {
                    if !needs_ref[tile] {
                        return;
                    }
                    let indices = membership_ref.members(tile);
                    let (lo, hi) = part.tile_bounds(positions_ref[indices[0] as usize]);
                    let mut arena = pool_ref.checkout();
                    let Arena {
                        scratch,
                        reservations,
                        parked,
                    } = &mut arena;
                    reservations.begin(window, sep, lo, hi);
                    parked.begin(lo, hi);
                    for &i in indices {
                        parked.add(positions_ref[i as usize], sep);
                    }
                    for &i in indices {
                        let i = i as usize;
                        parked.remove(positions_ref[i], sep);
                        let parked_view = &*parked;
                        let path = window_astar(
                            lo,
                            hi,
                            |c| {
                                part.tile_of(c) == tile
                                    && !part.in_margin(c, margin)
                                    && !frozen_ref.blocked(c)
                                    && !parked_view.blocked(c)
                            },
                            positions_ref[i],
                            goals_ref[i],
                            &*reservations,
                            scratch,
                            EXPANSION_CAP,
                        );
                        reservations.add_path(&path);
                        out.push(path);
                    }
                    pool_ref.restore(arena);
                });

            // Store the freshly planned shards under their content keys.
            if let Some(cache_ref) = cache.as_deref_mut() {
                for tile in 0..part.tile_count() {
                    if !membership.members(tile).is_empty() && needs_plan[tile] {
                        cache_ref.insert(keys[tile], ox, oy, tile, &shard_paths[tile]);
                    }
                }
            }

            // Merge into one trajectory per particle (frozen: wait).
            let mut trajs: Vec<Vec<GridCoord>> = positions.iter().map(|p| vec![*p]).collect();
            for (tile, paths) in shard_paths.iter().enumerate() {
                for (k, &i) in membership.members(tile).iter().enumerate() {
                    trajs[i as usize] = paths[k].clone();
                }
            }

            verify_and_repair(
                problem, &positions, &goals, &mut trajs, window, sep, &mut scan,
            );

            // Execute the window (truncated at the global horizon).
            let steps = window.min(problem.max_steps - elapsed);
            let mut any_moved = false;
            for i in 0..n {
                for t in 1..=steps {
                    let pos = position_at(&trajs[i], t);
                    let last = *histories[i].last().expect("histories are never empty");
                    if pos == last {
                        pending_stays[i] += 1;
                    } else {
                        any_moved = true;
                        let stays = pending_stays[i];
                        histories[i].extend(std::iter::repeat_n(last, stays));
                        pending_stays[i] = 0;
                        histories[i].push(pos);
                    }
                }
                positions[i] = position_at(&trajs[i], steps);
            }
            elapsed += steps;
            if any_moved {
                stagnant = 0;
            } else {
                stagnant += 1;
                if stagnant >= max_stagnant {
                    break;
                }
            }
        }

        if let Some(cache_ref) = cache.as_mut() {
            cache_ref.arenas = pool;
            cache_ref.end_solve();
        }

        let mut paths = Vec::new();
        let mut unrouted: Vec<ParticleId> = Vec::new();
        let mut stranded = Vec::new();
        for (i, request) in problem.requests.iter().enumerate() {
            let path = ParticlePath {
                id: request.id,
                positions: std::mem::take(&mut histories[i]),
            };
            if positions[i] == goals[i] {
                paths.push(path);
            } else {
                unrouted.push(request.id);
                stranded.push(path);
            }
        }
        paths.sort_by_key(|p| p.id);
        stranded.sort_by_key(|p| p.id);
        unrouted.sort();
        let makespan = paths.iter().map(|p| p.arrival_step()).max().unwrap_or(0);
        let total_moves = paths
            .iter()
            .chain(stranded.iter())
            .map(|p| p.move_count())
            .sum();
        RoutingOutcome {
            paths,
            unrouted,
            stranded,
            makespan,
            total_moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::astar_soa::{Scratch, WindowReservations};
    use super::*;
    use crate::routing::{Router, RoutingRequest, RoutingStrategy};
    use labchip_units::GridDims;

    fn request(id: u64, start: (u32, u32), goal: (u32, u32)) -> RoutingRequest {
        RoutingRequest {
            id: ParticleId(id),
            start: GridCoord::new(start.0, start.1),
            goal: GridCoord::new(goal.0, goal.1),
        }
    }

    fn small_shards() -> IncrementalRouter {
        IncrementalRouter::new(ShardConfig {
            shard_side: 8,
            window: 4,
            max_stagnant_windows: 4,
        })
    }

    #[test]
    fn single_particle_crosses_the_whole_array() {
        let problem = RoutingProblem::new(GridDims::square(32), vec![request(1, (1, 1), (30, 30))]);
        let outcome = small_shards().solve(&problem).unwrap();
        assert!(outcome.unrouted.is_empty());
        assert!(outcome.is_conflict_free(problem.min_separation));
        // Windowed planning may detour around frozen margins but stays close
        // to the Manhattan distance.
        assert!(outcome.makespan >= 58);
        assert!(outcome.makespan <= 2 * 58);
    }

    #[test]
    fn crossing_particles_stay_separated() {
        let problem = RoutingProblem::new(
            GridDims::square(24),
            vec![request(1, (1, 10), (22, 10)), request(2, (22, 10), (1, 10))],
        );
        let outcome = small_shards().solve(&problem).unwrap();
        assert!(
            outcome.unrouted.is_empty(),
            "unrouted: {:?}",
            outcome.unrouted
        );
        assert!(outcome.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn dense_column_routes_conflict_free() {
        let mut requests = Vec::new();
        for (i, y) in (1..30).step_by(3).enumerate() {
            requests.push(request(i as u64, (2, y), (29, y)));
        }
        let problem = RoutingProblem::new(GridDims::square(32), requests.clone());
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), requests.len());
        assert!(outcome.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn zero_requests_is_a_trivial_success() {
        let problem = RoutingProblem::new(GridDims::square(16), Vec::new());
        let outcome = small_shards().solve(&problem).unwrap();
        assert!(outcome.paths.is_empty());
        assert!(outcome.unrouted.is_empty());
        assert_eq!(outcome.makespan, 0);
        assert_eq!(outcome.success_rate(0), 1.0);
    }

    #[test]
    fn stationary_requests_stay_put() {
        let problem = RoutingProblem::new(
            GridDims::square(16),
            vec![request(1, (4, 4), (4, 4)), request(2, (10, 4), (12, 4))],
        );
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), 2);
        assert_eq!(outcome.paths[0].move_count(), 0);
        assert!(outcome.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn respects_larger_separations() {
        let mut problem = RoutingProblem::new(
            GridDims::square(24),
            vec![request(1, (2, 8), (20, 8)), request(2, (2, 14), (20, 14))],
        );
        problem.min_separation = 4;
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), 2);
        assert!(outcome.is_conflict_free(4));
    }

    #[test]
    fn horizon_bounds_are_respected() {
        let mut problem =
            RoutingProblem::new(GridDims::square(32), vec![request(1, (0, 0), (31, 31))]);
        problem.max_steps = 10;
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), 0);
        assert_eq!(outcome.unrouted, vec![ParticleId(1)]);
    }

    #[test]
    fn matches_global_planner_quality_on_moderate_traffic() {
        let mut requests = Vec::new();
        for i in 0..8u32 {
            requests.push(request(
                u64::from(i),
                (1, 1 + 3 * i),
                (28, 1 + 3 * ((i + 3) % 8)),
            ));
        }
        let problem = RoutingProblem::new(GridDims::square(32), requests.clone());
        let incremental = small_shards().solve(&problem).unwrap();
        let global = Router::new(RoutingStrategy::PrioritizedAStar)
            .solve(&problem)
            .unwrap();
        assert!(incremental.is_conflict_free(problem.min_separation));
        assert!(incremental.paths.len() >= global.paths.len().saturating_sub(1));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut requests = Vec::new();
        for i in 0..20u32 {
            requests.push(request(
                u64::from(i),
                (1 + (i % 4) * 3, 1 + (i / 4) * 3),
                (28 - (i % 4) * 3, 28 - (i / 4) * 3),
            ));
        }
        let problem = RoutingProblem::new(GridDims::square(32), requests);
        let router = small_shards();
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| router.solve(&problem).unwrap());
        let many = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| router.solve(&problem).unwrap());
        assert_eq!(one, many);
        assert!(one.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn window_astar_advances_toward_a_far_goal() {
        let reservations = WindowReservations::new(4, 2);
        let mut scratch = Scratch::default();
        let path = window_astar(
            GridCoord::new(0, 9),
            GridCoord::new(6, 14),
            |_| true,
            GridCoord::new(1, 10),
            GridCoord::new(22, 10),
            &reservations,
            &mut scratch,
            EXPANSION_CAP,
        );
        assert_eq!(path.last(), Some(&GridCoord::new(5, 10)), "path: {path:?}");
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn partition_margins_only_on_internal_boundaries() {
        let part = Partition::new(GridDims::square(16), 8, 0, 0);
        // Array corner: no internal boundary nearby.
        assert!(!part.in_margin(GridCoord::new(0, 0), 1));
        // Cells flanking the internal boundary at x = 8.
        assert!(part.in_margin(GridCoord::new(7, 4), 1));
        assert!(part.in_margin(GridCoord::new(8, 4), 1));
        assert!(!part.in_margin(GridCoord::new(6, 4), 1));
        // Staggered partition moves the margin.
        let staggered = Partition::new(GridDims::square(16), 8, 4, 4);
        assert!(!staggered.in_margin(GridCoord::new(7, 7), 1));
        assert!(staggered.in_margin(GridCoord::new(4, 7), 1));
    }

    #[test]
    fn every_cell_is_mobile_in_some_phase() {
        let dims = GridDims::square(20);
        let side = 8u32;
        let phases = stagger_phases(8);
        for c in dims.iter() {
            let mobile_somewhere = phases
                .iter()
                .any(|&(ox, oy)| !Partition::new(dims, side, ox, oy).in_margin(c, 1));
            assert!(mobile_somewhere, "cell {c} is frozen in every phase");
        }
    }

    fn moderate_problem() -> RoutingProblem {
        let mut requests = Vec::new();
        for i in 0..24u32 {
            requests.push(request(
                u64::from(i),
                (1 + (i % 6) * 5, 1 + (i / 6) * 7),
                (29 - (i % 6) * 4, 29 - (i / 6) * 6),
            ));
        }
        RoutingProblem::new(GridDims::square(32), requests)
    }

    #[test]
    fn cached_solve_is_bit_identical_to_cold() {
        let problem = moderate_problem();
        let router = small_shards();
        let cold = router.solve(&problem).unwrap();
        let mut cache = RouterCache::new();
        let first = router.solve_cached(&problem, &mut cache).unwrap();
        assert_eq!(cold, first, "cold cache must not change the outcome");
        // Even the first cached solve may hit intra-solve (a shard whose
        // state recurs across windows replays itself) — but it must miss at
        // least once per planned shard.
        let after_first = cache.stats();
        assert!(after_first.misses > 0);
        assert!(after_first.entries > 0);

        let warm = router.solve_cached(&problem, &mut cache).unwrap();
        assert_eq!(cold, warm, "warm replay must be bit-identical");
        let after_warm = cache.stats();
        assert_eq!(
            after_warm.misses, after_first.misses,
            "an identical re-solve hits on every shard"
        );
        assert!(after_warm.hits > 0);
    }

    #[test]
    fn cached_solve_survives_invalidation_and_mutation() {
        let mut problem = moderate_problem();
        let router = small_shards();
        let mut cache = RouterCache::new();
        router.solve_cached(&problem, &mut cache).unwrap();

        // Mutate one request's goal; the cached solve must match a cold
        // solve of the mutated problem exactly.
        problem.requests[5].goal = GridCoord::new(3, 27);
        let side = router.effective_side(problem.min_separation);
        cache.invalidate_cells(problem.dims, side, &[problem.requests[5].start]);
        let warm = router.solve_cached(&problem, &mut cache).unwrap();
        let cold = router.solve(&problem).unwrap();
        assert_eq!(warm, cold);
        assert!(warm.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn cached_solve_is_deterministic_across_thread_counts() {
        let problem = moderate_problem();
        let router = small_shards();
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| {
                let mut cache = RouterCache::new();
                router.solve_cached(&problem, &mut cache).unwrap();
                router.solve_cached(&problem, &mut cache).unwrap()
            });
        let many = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                let mut cache = RouterCache::new();
                router.solve_cached(&problem, &mut cache).unwrap();
                router.solve_cached(&problem, &mut cache).unwrap()
            });
        assert_eq!(one, many);
    }
}
