//! Cross-window, cross-solve plan cache for warm-start replanning.
//!
//! One cache entry holds the A\* output of one shard of one window, keyed
//! by a 128-bit hash of *everything the per-shard planner reads*: grid
//! dimensions, effective tile side, stagger offset, tile index, separation,
//! window length, the ordered `(start, goal)` list of the shard's mobile
//! members, and the positions of frozen particles whose separation zone
//! reaches into the tile. Per-shard planning is a pure function of exactly
//! those inputs, so a key hit replays the stored paths *bit-identically* to
//! recomputing them — staleness is impossible by construction, because any
//! change to the inputs changes the key and misses.
//!
//! Invalidation ([`RouterCache::invalidate_cells`]) is therefore a memory
//! hygiene mechanism, not a correctness one: dirty cells reported by
//! `ChipState` map to at most the [`covering_tiles`] of each cell (one tile
//! per stagger phase, ≤ 4 total), and those tiles are marked *suspect*
//! rather than evicted on the spot. The next solve sweeps each suspect
//! tile, keeping entries whose key it hit or refreshed — live content by
//! definition — and dropping the rest. Evicting eagerly would throw away
//! plans the mutation did not actually change (a particle lifted and
//! placed back, a cycle reloaded with the same batch), which is exactly
//! the reuse the cache exists for.
//!
//! Paths are stored packed — 4 bits per step (5 possible moves) in a `u64`
//! plus the start cell — so a full-array solve's worth of cached windows
//! stays tens of megabytes instead of hundreds.

use super::astar_soa::ArenaPool;
use super::partition::{stagger_phases, Partition};
use labchip_units::{GridCoord, GridDims};
use std::collections::{HashMap, HashSet};

/// Default entry cap of [`RouterCache::new`]; a full 320²/10k-particle
/// solve populates roughly half this many shard entries.
const DEFAULT_MAX_ENTRIES: usize = 1 << 16;

/// Hit/miss/size counters of a [`RouterCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Shard lookups served from the cache.
    pub hits: u64,
    /// Shard lookups that had to be planned fresh.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries dropped because the cache hit its capacity cap.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidated: u64,
}

/// One shard's cached window plan: where it applies (for invalidation) and
/// the packed per-member paths, in the shard's deterministic member order.
#[derive(Debug)]
struct ShardEntry {
    ox: u32,
    oy: u32,
    tile: u32,
    paths: Vec<StoredPath>,
}

/// A window path packed to 4 bits per step where possible (the move
/// alphabet has 5 symbols: stay + 4 directions), falling back to the full
/// coordinate list for windows longer than 16 steps.
#[derive(Debug)]
enum StoredPath {
    Packed {
        start: GridCoord,
        steps: u8,
        dirs: u64,
    },
    Wide(Vec<GridCoord>),
}

impl StoredPath {
    fn encode(path: &[GridCoord]) -> Self {
        if path.len() > 17 {
            return Self::Wide(path.to_vec());
        }
        let mut dirs = 0u64;
        for (k, pair) in path.windows(2).enumerate() {
            let dx = pair[1].x as i64 - pair[0].x as i64;
            let dy = pair[1].y as i64 - pair[0].y as i64;
            let code = match (dx, dy) {
                (0, 0) => 0u64,
                (1, 0) => 1,
                (-1, 0) => 2,
                (0, 1) => 3,
                (0, -1) => 4,
                _ => return Self::Wide(path.to_vec()),
            };
            dirs |= code << (4 * k);
        }
        Self::Packed {
            start: path[0],
            steps: (path.len() - 1) as u8,
            dirs,
        }
    }

    fn decode(&self) -> Vec<GridCoord> {
        match self {
            Self::Wide(path) => path.clone(),
            Self::Packed { start, steps, dirs } => {
                let mut out = Vec::with_capacity(*steps as usize + 1);
                let mut pos = *start;
                out.push(pos);
                for k in 0..*steps {
                    let (dx, dy) = match (dirs >> (4 * k)) & 0xF {
                        0 => (0, 0),
                        1 => (1, 0),
                        2 => (-1, 0),
                        3 => (0, 1),
                        _ => (0, -1),
                    };
                    pos = pos.offset(dx, dy).expect("packed path stays on the grid");
                    out.push(pos);
                }
                out
            }
        }
    }
}

/// Two independent 64-bit mixing streams concatenated into a 128-bit key;
/// not cryptographic, but collisions across the cache's working set are
/// negligible and a collision can only occur between *valid* plans.
struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    fn new() -> Self {
        Self {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn word(&mut self, v: u64) {
        self.a = (self.a ^ v).wrapping_mul(0x0100_0000_01b3);
        self.b = (self.b ^ v.rotate_left(31)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        self.b ^= self.b >> 27;
    }

    fn coord(&mut self, c: GridCoord) {
        self.word((u64::from(c.x) << 32) | u64::from(c.y));
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Content key of one shard's window-planning inputs. `members` must be the
/// shard's mobile particles in planning order; `frozen` the
/// `(tile, position)` pairs of frozen particles whose zone reaches this
/// tile, in deterministic order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn shard_key(
    dims: GridDims,
    side: u32,
    ox: u32,
    oy: u32,
    tile: usize,
    sep: u32,
    window: usize,
    members: impl ExactSizeIterator<Item = (GridCoord, GridCoord)>,
    frozen: &[(u32, GridCoord)],
) -> u128 {
    let mut h = KeyHasher::new();
    h.word((u64::from(dims.cols) << 32) | u64::from(dims.rows));
    h.word((u64::from(side) << 32) | u64::from(sep));
    h.word((u64::from(ox) << 32) | u64::from(oy));
    h.word(tile as u64);
    h.word(window as u64);
    h.word(members.len() as u64);
    for (start, goal) in members {
        h.coord(start);
        h.coord(goal);
    }
    h.word(frozen.len() as u64);
    for &(_, pos) in frozen {
        h.coord(pos);
    }
    h.finish()
}

/// The `(ox, oy, tile)` triple of every staggered tile containing `cell` —
/// one per stagger phase, so at most 4. This is the invalidation footprint
/// of a single-cell mutation.
pub fn covering_tiles(dims: GridDims, side: u32, cell: GridCoord) -> Vec<(u32, u32, u32)> {
    stagger_phases(side)
        .iter()
        .map(|&(ox, oy)| {
            (
                ox,
                oy,
                Partition::new(dims, side, ox, oy).tile_of(cell) as u32,
            )
        })
        .collect()
}

/// Warm-start plan cache of the [`super::IncrementalRouter`], carried
/// across solves by the workload driver. Also owns the pool of
/// reusable A\* scratch so allocations persist across whole solves, not
/// just across the windows of one solve.
#[derive(Debug)]
pub struct RouterCache {
    entries: HashMap<u128, ShardEntry>,
    max_entries: usize,
    pub(crate) arenas: ArenaPool,
    /// Tiles flagged by [`invalidate_cells`](Self::invalidate_cells),
    /// awaiting the end-of-solve sweep.
    suspect: HashSet<(u32, u32, u32)>,
    /// Keys hit or inserted by the solve in flight; entries in suspect
    /// tiles survive the sweep only if their key is in here.
    touched: HashSet<u128>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidated: u64,
}

impl Default for RouterCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_MAX_ENTRIES)
    }
}

impl RouterCache {
    /// Creates an empty cache with the default entry cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `max_entries` shard plans.
    pub fn with_capacity(max_entries: usize) -> Self {
        Self {
            entries: HashMap::new(),
            max_entries: max_entries.max(1),
            arenas: ArenaPool::default(),
            suspect: HashSet::new(),
            touched: HashSet::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidated: 0,
        }
    }

    /// Current counters (entry count, hits, misses, evictions,
    /// invalidations).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            evictions: self.evictions,
            invalidated: self.invalidated,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.suspect.clear();
        self.touched.clear();
    }

    /// Decodes the entry for `key` into `out` if present. Counts a hit or
    /// a miss either way.
    pub(crate) fn fetch(&mut self, key: u128, out: &mut Vec<Vec<GridCoord>>) -> bool {
        match self.entries.get(&key) {
            Some(entry) => {
                out.clear();
                out.extend(entry.paths.iter().map(StoredPath::decode));
                self.touched.insert(key);
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    pub(crate) fn insert(
        &mut self,
        key: u128,
        ox: u32,
        oy: u32,
        tile: usize,
        paths: &[Vec<GridCoord>],
    ) {
        if self.entries.len() >= self.max_entries {
            self.evictions += self.entries.len() as u64;
            self.entries.clear();
        }
        self.touched.insert(key);
        self.entries.insert(
            key,
            ShardEntry {
                ox,
                oy,
                tile: tile as u32,
                paths: paths.iter().map(|p| StoredPath::encode(p)).collect(),
            },
        );
    }

    /// Marks every staggered tile containing one of `cells` as suspect:
    /// the next solve's [`end_solve`](Self::end_solve) sweep drops the
    /// tile's entries except those the solve itself hit or refreshed.
    /// `side` must be the router's
    /// [`super::IncrementalRouter::effective_side`] for the problem's
    /// separation, and `dims` the problem grid.
    pub fn invalidate_cells(&mut self, dims: GridDims, side: u32, cells: &[GridCoord]) {
        for &cell in cells {
            self.suspect.extend(covering_tiles(dims, side, cell));
        }
    }

    /// Closes one solve: sweeps the suspect tiles, dropping entries whose
    /// key the solve neither hit nor inserted — content that no longer
    /// exists on the chip. Called by the router after every cached solve;
    /// callers mutating the cache directly (tests) call it explicitly.
    pub fn end_solve(&mut self) {
        if !self.suspect.is_empty() {
            let before = self.entries.len();
            let suspect = &self.suspect;
            let touched = &self.touched;
            self.entries
                .retain(|key, e| !suspect.contains(&(e.ox, e.oy, e.tile)) || touched.contains(key));
            self.invalidated += (before - self.entries.len()) as u64;
            self.suspect.clear();
        }
        self.touched.clear();
    }

    /// Drops everything — the response to a dirty report too coarse to
    /// enumerate (e.g. a whole-plan rebuild).
    pub fn invalidate_all(&mut self) {
        self.invalidated += self.entries.len() as u64;
        self.entries.clear();
        self.suspect.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(raw: &[(u32, u32)]) -> Vec<GridCoord> {
        raw.iter().map(|&(x, y)| GridCoord::new(x, y)).collect()
    }

    #[test]
    fn stored_paths_round_trip() {
        let short = coords(&[(5, 5), (6, 5), (6, 6), (6, 6), (6, 5)]);
        let encoded = StoredPath::encode(&short);
        assert!(matches!(encoded, StoredPath::Packed { .. }));
        assert_eq!(encoded.decode(), short);

        let single = coords(&[(3, 9)]);
        assert_eq!(StoredPath::encode(&single).decode(), single);

        let long: Vec<GridCoord> = (0..40).map(|x| GridCoord::new(x, 0)).collect();
        let encoded = StoredPath::encode(&long);
        assert!(matches!(encoded, StoredPath::Wide(_)));
        assert_eq!(encoded.decode(), long);
    }

    #[test]
    fn covering_tiles_is_one_tile_per_phase() {
        let dims = GridDims::square(64);
        let tiles = covering_tiles(dims, 16, GridCoord::new(20, 33));
        assert_eq!(tiles.len(), 4);
        let offsets: Vec<(u32, u32)> = tiles.iter().map(|&(ox, oy, _)| (ox, oy)).collect();
        assert_eq!(offsets, vec![(0, 0), (8, 0), (0, 8), (8, 8)]);
    }

    #[test]
    fn fetch_and_insert_track_stats() {
        let mut cache = RouterCache::new();
        let paths = vec![coords(&[(1, 1), (2, 1)])];
        let mut out = Vec::new();
        assert!(!cache.fetch(42, &mut out));
        cache.insert(42, 0, 0, 3, &paths);
        assert!(cache.fetch(42, &mut out));
        assert_eq!(out, paths);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn invalidation_drops_exactly_the_covering_tiles() {
        let dims = GridDims::square(64);
        let side = 16;
        let mut cache = RouterCache::new();
        let paths = vec![coords(&[(2, 2)])];
        // One entry per phase tile covering (20, 33), plus one far away.
        for (k, &(ox, oy, tile)) in covering_tiles(dims, side, GridCoord::new(20, 33))
            .iter()
            .enumerate()
        {
            cache.insert(k as u128, ox, oy, tile as usize, &paths);
        }
        let far = Partition::new(dims, side, 0, 0).tile_of(GridCoord::new(60, 60)) as u32;
        cache.insert(99, 0, 0, far as usize, &paths);
        cache.end_solve(); // close the priming solve

        cache.invalidate_cells(dims, side, &[GridCoord::new(20, 33)]);
        cache.end_solve();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "only the far tile survives");
        assert_eq!(stats.invalidated, 4);
        let mut out = Vec::new();
        assert!(cache.fetch(99, &mut out));
    }

    #[test]
    fn suspect_entries_survive_if_the_solve_hits_them() {
        let dims = GridDims::square(64);
        let side = 16;
        let cell = GridCoord::new(20, 33);
        let mut cache = RouterCache::new();
        let paths = vec![coords(&[(2, 2)])];
        let tiles = covering_tiles(dims, side, cell);
        for (k, &(ox, oy, tile)) in tiles.iter().enumerate() {
            cache.insert(k as u128, ox, oy, tile as usize, &paths);
        }
        cache.end_solve(); // close the priming solve

        // A mutation touched the cell, but the next solve finds the same
        // content for one of the phase tiles: its entry must survive.
        cache.invalidate_cells(dims, side, &[cell]);
        let mut out = Vec::new();
        assert!(cache.fetch(0, &mut out));
        cache.end_solve();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "the re-hit entry survives the sweep");
        assert_eq!(stats.invalidated, 3);
        assert!(cache.fetch(0, &mut out));
    }

    #[test]
    fn capacity_cap_evicts_wholesale() {
        let mut cache = RouterCache::with_capacity(2);
        let paths = vec![coords(&[(0, 0)])];
        cache.insert(1, 0, 0, 0, &paths);
        cache.insert(2, 0, 0, 1, &paths);
        cache.insert(3, 0, 0, 2, &paths);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 2);
    }
}
