//! Merged-window verification and serial repair.
//!
//! After the per-shard plans are merged the window is verified with a dense
//! per-step occupancy scan; any violating particle (none are expected by
//! construction — the margins make cross-shard conflicts impossible — but
//! frozen corner cases are cheap to guard) is demoted to wait-in-place and
//! then re-planned serially against the merged reservation table.

use super::astar_soa::{position_at, window_astar, Scratch, WindowReservations};
use super::EXPANSION_CAP;
use crate::routing::{for_each_zone_cell, RoutingProblem};
use labchip_units::{GridCoord, GridDims};

/// Reusable dense occupancy scan for [`ConflictScan::window_conflicts`]:
/// one `u32` occupant id and epoch stamp per grid cell, re-stamped per
/// step instead of rebuilding a hash map (the scan runs every window, so
/// at full-array scale the hash-map version dominated the warm path).
#[derive(Debug, Default)]
pub(crate) struct ConflictScan {
    cols: usize,
    rows: usize,
    occupant: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ConflictScan {
    fn begin(&mut self, dims: GridDims) {
        self.cols = dims.cols as usize;
        self.rows = dims.rows as usize;
        let cells = self.cols * self.rows;
        if self.occupant.len() < cells {
            self.occupant.resize(cells, 0);
            self.stamp.resize(cells, 0);
        }
    }

    fn bump(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// All conflicting particle pairs of a merged window
    /// (`O(n · window · sep²)` instead of `O(n² · window)`); stops at the
    /// first conflicting step so repair can fix it before re-verifying.
    pub(crate) fn window_conflicts(
        &mut self,
        dims: GridDims,
        trajs: &[Vec<GridCoord>],
        window: usize,
        sep: u32,
    ) -> Vec<(usize, usize)> {
        self.begin(dims);
        let mut pairs = Vec::new();
        for t in 1..=window {
            self.bump();
            for (i, traj) in trajs.iter().enumerate() {
                let pos = position_at(traj, t);
                let k = pos.y as usize * self.cols + pos.x as usize;
                self.occupant[k] = i as u32;
                self.stamp[k] = self.epoch;
            }
            let scan = &*self;
            for (i, traj) in trajs.iter().enumerate() {
                for_each_zone_cell(position_at(traj, t), sep, |c| {
                    let (x, y) = (c.x as usize, c.y as usize);
                    if x >= scan.cols || y >= scan.rows {
                        return;
                    }
                    let k = y * scan.cols + x;
                    if scan.stamp[k] == scan.epoch {
                        let j = scan.occupant[k] as usize;
                        if j > i {
                            pairs.push((i, j));
                        }
                    }
                });
            }
            if !pairs.is_empty() {
                break; // repair this step first; later steps re-verify after
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// Verifies a merged window; conflicting particles are demoted to
/// wait-in-place until the window is clean, then re-planned serially
/// against the merged reservations.
pub(crate) fn verify_and_repair(
    problem: &RoutingProblem,
    positions: &[GridCoord],
    goals: &[GridCoord],
    trajs: &mut [Vec<GridCoord>],
    window: usize,
    sep: u32,
    scan: &mut ConflictScan,
) {
    let mut demoted: Vec<usize> = Vec::new();
    loop {
        let offenders = scan.window_conflicts(problem.dims, trajs, window, sep);
        if offenders.is_empty() {
            break;
        }
        for (a, b) in offenders {
            // Demote the particle farther from its goal (ties: higher
            // index); the other keeps its plan. Two waiting particles
            // can never conflict (window-start states are valid), so if
            // the preferred victim already waits, the other one moved.
            let preferred =
                if (positions[a].manhattan(goals[a]), a) >= (positions[b].manhattan(goals[b]), b) {
                    a
                } else {
                    b
                };
            let victim = if trajs[preferred].len() > 1 {
                preferred
            } else {
                a + b - preferred
            };
            if trajs[victim].len() > 1 {
                trajs[victim] = vec![positions[victim]];
                demoted.push(victim);
            }
        }
    }
    if demoted.is_empty() {
        return;
    }
    demoted.sort_unstable();
    demoted.dedup();

    // Re-plan the demoted particles one at a time against everyone
    // else's merged trajectories. This is a cold path, so the sparse
    // whole-grid reservation table is the right trade-off here.
    let mut reservations = WindowReservations::new(window, sep);
    for traj in trajs.iter() {
        reservations.add_path(traj);
    }
    let dims = problem.dims;
    let lo = GridCoord::new(0, 0);
    let hi = GridCoord::new(dims.cols - 1, dims.rows - 1);
    let mut scratch = Scratch::default();
    for &i in &demoted {
        reservations.remove_path(&trajs[i]);
        let path = window_astar(
            lo,
            hi,
            |_| true,
            positions[i],
            goals[i],
            &reservations,
            &mut scratch,
            EXPANSION_CAP,
        );
        reservations.add_path(&path);
        trajs[i] = path;
    }
    // The re-planned paths respected the reservations, but run one
    // last wait-demotion sweep as a hard guarantee.
    loop {
        let offenders = scan.window_conflicts(problem.dims, trajs, window, sep);
        if offenders.is_empty() {
            break;
        }
        for (a, b) in offenders {
            let victim = a.max(b);
            if trajs[victim].len() > 1 {
                trajs[victim] = vec![positions[victim]];
            } else {
                let other = a.min(b);
                trajs[other] = vec![positions[other]];
            }
        }
    }
}
