//! Struct-of-arrays hot paths for the windowed space–time A\*.
//!
//! The per-shard planning loop used to allocate a fresh `HashMap`-backed
//! reservation table and scratch buffer inside the rayon closure for every
//! shard of every window — the allocation traffic was what made the pinned
//! thread-scaling curve go *backwards*. Everything here is flat arrays over
//! a dense `(cell, step)` index space, cleared in O(1) with an epoch stamp,
//! and bundled into an [`Arena`] that an [`ArenaPool`] recycles across
//! shards, windows, and (through [`super::RouterCache`]) whole solves.
//!
//! The sparse [`ZoneCounter`] / [`WindowReservations`] pair is kept for the
//! rare serial repair path, which plans against the whole grid where a dense
//! table would be needlessly large; [`window_astar`] is generic over the
//! [`ReservationView`] trait so both back-ends share one search.

use crate::routing::for_each_zone_cell;
use labchip_units::GridCoord;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Mutex;

/// The position of a window path at step `t` (paths park on their last
/// cell for the remainder of the window).
pub(crate) fn position_at(path: &[GridCoord], t: usize) -> GridCoord {
    path[t.min(path.len() - 1)]
}

/// Read access to a space–time reservation table over one window.
pub(crate) trait ReservationView {
    /// Number of planned steps (the table covers steps `0..=window()`).
    fn window(&self) -> usize;
    /// Whether `c` is unreserved at step `t` (clamped to the window end).
    fn is_free(&self, c: GridCoord, t: usize) -> bool;
    /// Whether a particle parked at `c` from step `t` to the end of the
    /// window stays clear of every reservation.
    fn is_free_from(&self, c: GridCoord, t: usize) -> bool;
}

/// Counting map of blocked cells: every `add` blocks the Chebyshev-<`radius`
/// zone around a centre, and `remove` unblocks it exactly (overlapping zones
/// stay blocked until their last owner is removed).
#[derive(Debug, Default)]
pub(crate) struct ZoneCounter {
    counts: HashMap<GridCoord, u32>,
}

impl ZoneCounter {
    pub(crate) fn add(&mut self, center: GridCoord, radius: u32) {
        for_each_zone_cell(center, radius, |c| {
            *self.counts.entry(c).or_insert(0) += 1;
        });
    }

    pub(crate) fn remove(&mut self, center: GridCoord, radius: u32) {
        for_each_zone_cell(center, radius, |c| {
            if let Some(n) = self.counts.get_mut(&c) {
                *n -= 1;
                if *n == 0 {
                    self.counts.remove(&c);
                }
            }
        });
    }

    pub(crate) fn blocked(&self, c: GridCoord) -> bool {
        self.counts.contains_key(&c)
    }
}

/// Sparse space–time reservations over one window (`window + 1` steps),
/// counting overlaps so paths can be removed again during repair.
#[derive(Debug)]
pub(crate) struct WindowReservations {
    radius: u32,
    steps: Vec<ZoneCounter>,
}

impl WindowReservations {
    pub(crate) fn new(window: usize, min_separation: u32) -> Self {
        Self {
            radius: min_separation,
            steps: (0..=window).map(|_| ZoneCounter::default()).collect(),
        }
    }

    pub(crate) fn add_path(&mut self, path: &[GridCoord]) {
        for t in 0..self.steps.len() {
            let pos = position_at(path, t);
            self.steps[t].add(pos, self.radius);
        }
    }

    pub(crate) fn remove_path(&mut self, path: &[GridCoord]) {
        for t in 0..self.steps.len() {
            let pos = position_at(path, t);
            self.steps[t].remove(pos, self.radius);
        }
    }
}

impl ReservationView for WindowReservations {
    fn window(&self) -> usize {
        self.steps.len() - 1
    }

    fn is_free(&self, c: GridCoord, t: usize) -> bool {
        !self.steps[t.min(self.steps.len() - 1)].blocked(c)
    }

    fn is_free_from(&self, c: GridCoord, t: usize) -> bool {
        (t..self.steps.len()).all(|step| !self.steps[step].blocked(c))
    }
}

/// Dense zone counter over a fixed cell box, epoch-cleared in O(1).
///
/// Writes outside the box are dropped; that is sound because every query
/// the router makes is for a cell inside the box the structure was begun
/// with (tile interiors for `parked`, the whole grid for the frozen zone).
#[derive(Debug, Default)]
pub(crate) struct DenseZone {
    lo_x: u32,
    lo_y: u32,
    bw: usize,
    bh: usize,
    counts: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl DenseZone {
    /// Re-targets the counter to the inclusive cell box `[lo, hi]` and
    /// clears it (lazily, via the epoch stamp).
    pub(crate) fn begin(&mut self, lo: GridCoord, hi: GridCoord) {
        self.lo_x = lo.x;
        self.lo_y = lo.y;
        self.bw = (hi.x - lo.x + 1) as usize;
        self.bh = (hi.y - lo.y + 1) as usize;
        let cells = self.bw * self.bh;
        if self.counts.len() < cells {
            self.counts.resize(cells, 0);
            self.stamp.resize(cells, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    pub(crate) fn add(&mut self, center: GridCoord, radius: u32) {
        let (lx, ly, bw, bh, epoch) = (self.lo_x, self.lo_y, self.bw, self.bh, self.epoch);
        let counts = &mut self.counts;
        let stamp = &mut self.stamp;
        for_each_zone_cell(center, radius, |c| {
            if c.x < lx || c.y < ly {
                return;
            }
            let (x, y) = ((c.x - lx) as usize, (c.y - ly) as usize);
            if x >= bw || y >= bh {
                return;
            }
            let k = y * bw + x;
            if stamp[k] != epoch {
                stamp[k] = epoch;
                counts[k] = 0;
            }
            counts[k] += 1;
        });
    }

    pub(crate) fn remove(&mut self, center: GridCoord, radius: u32) {
        let (lx, ly, bw, bh, epoch) = (self.lo_x, self.lo_y, self.bw, self.bh, self.epoch);
        let counts = &mut self.counts;
        let stamp = &mut self.stamp;
        for_each_zone_cell(center, radius, |c| {
            if c.x < lx || c.y < ly {
                return;
            }
            let (x, y) = ((c.x - lx) as usize, (c.y - ly) as usize);
            if x >= bw || y >= bh {
                return;
            }
            let k = y * bw + x;
            if stamp[k] == epoch && counts[k] > 0 {
                counts[k] -= 1;
            }
        });
    }

    pub(crate) fn blocked(&self, c: GridCoord) -> bool {
        if c.x < self.lo_x || c.y < self.lo_y {
            return false;
        }
        let (x, y) = ((c.x - self.lo_x) as usize, (c.y - self.lo_y) as usize);
        if x >= self.bw || y >= self.bh {
            return false;
        }
        let k = y * self.bw + x;
        self.stamp[k] == self.epoch && self.counts[k] > 0
    }
}

/// Dense space–time reservations over one window and one tile box: a flat
/// `(window + 1) × bh × bw` array of zone counts, epoch-cleared in O(1).
///
/// Functionally equivalent to [`WindowReservations`] for queries inside the
/// box (the only queries the per-shard A\* makes); zone cells spilling
/// outside the box are dropped because they can never be queried.
#[derive(Debug, Default)]
pub(crate) struct DenseReservations {
    radius: u32,
    window: usize,
    lo_x: u32,
    lo_y: u32,
    bw: usize,
    bh: usize,
    counts: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl DenseReservations {
    /// Re-targets the table to `window` steps over the inclusive box
    /// `[lo, hi]` and clears it.
    pub(crate) fn begin(
        &mut self,
        window: usize,
        min_separation: u32,
        lo: GridCoord,
        hi: GridCoord,
    ) {
        self.radius = min_separation;
        self.window = window;
        self.lo_x = lo.x;
        self.lo_y = lo.y;
        self.bw = (hi.x - lo.x + 1) as usize;
        self.bh = (hi.y - lo.y + 1) as usize;
        let cells = self.bw * self.bh * (window + 1);
        if self.counts.len() < cells {
            self.counts.resize(cells, 0);
            self.stamp.resize(cells, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    pub(crate) fn add_path(&mut self, path: &[GridCoord]) {
        let (lx, ly, bw, bh, epoch) = (self.lo_x, self.lo_y, self.bw, self.bh, self.epoch);
        for t in 0..=self.window {
            let pos = position_at(path, t);
            let counts = &mut self.counts;
            let stamp = &mut self.stamp;
            for_each_zone_cell(pos, self.radius, |c| {
                if c.x < lx || c.y < ly {
                    return;
                }
                let (x, y) = ((c.x - lx) as usize, (c.y - ly) as usize);
                if x >= bw || y >= bh {
                    return;
                }
                let k = (t * bh + y) * bw + x;
                if stamp[k] != epoch {
                    stamp[k] = epoch;
                    counts[k] = 0;
                }
                counts[k] += 1;
            });
        }
    }

    fn blocked(&self, c: GridCoord, t: usize) -> bool {
        if c.x < self.lo_x || c.y < self.lo_y {
            return false;
        }
        let (x, y) = ((c.x - self.lo_x) as usize, (c.y - self.lo_y) as usize);
        if x >= self.bw || y >= self.bh {
            return false;
        }
        let k = (t * self.bh + y) * self.bw + x;
        self.stamp[k] == self.epoch && self.counts[k] > 0
    }
}

impl ReservationView for DenseReservations {
    fn window(&self) -> usize {
        self.window
    }

    fn is_free(&self, c: GridCoord, t: usize) -> bool {
        !self.blocked(c, t.min(self.window))
    }

    fn is_free_from(&self, c: GridCoord, t: usize) -> bool {
        (t..=self.window).all(|step| !self.blocked(c, step))
    }
}

/// Min-heap node of the windowed A\*. Ties break on `(t, y, x)` so the
/// expansion order — and therefore the plan — is fully deterministic.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Open {
    f: u32,
    t: u16,
    y: u16,
    x: u16,
}

impl Ord for Open {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .f
            .cmp(&self.f)
            .then_with(|| other.t.cmp(&self.t))
            .then_with(|| other.y.cmp(&self.y))
            .then_with(|| other.x.cmp(&self.x))
    }
}

impl PartialOrd for Open {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable flat-array scratch space for the windowed A\*: visited stamps
/// and parent links indexed by `(cell, t)` — cleared in O(1) via an epoch
/// stamp — plus the open heap, whose allocation is reused across calls.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    visited: Vec<u32>,
    parent: Vec<u32>,
    epoch: u32,
    open: BinaryHeap<Open>,
}

impl Scratch {
    fn begin(&mut self, states: usize) {
        if self.visited.len() < states {
            self.visited.resize(states, 0);
            self.parent.resize(states, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
        self.open.clear();
    }
}

/// One shard's worth of reusable planning state: A\* scratch, the dense
/// reservation table, and the parked-neighbour zone counter. Checked out of
/// an [`ArenaPool`] at the top of each shard task instead of being allocated
/// inside the rayon closure.
#[derive(Debug, Default)]
pub(crate) struct Arena {
    pub(crate) scratch: Scratch,
    pub(crate) reservations: DenseReservations,
    pub(crate) parked: DenseZone,
}

/// A mutex-guarded free list of [`Arena`]s shared by all shard tasks of a
/// window. The pool never holds more arenas than ran concurrently, and the
/// arenas are content-agnostic (epoch-cleared on checkout-side `begin`), so
/// checkout order cannot affect results.
#[derive(Debug, Default)]
pub(crate) struct ArenaPool {
    free: Mutex<Vec<Arena>>,
}

/// Upper bound on pooled arenas; anything beyond this is dropped on restore.
const MAX_POOLED_ARENAS: usize = 32;

impl ArenaPool {
    pub(crate) fn checkout(&self) -> Arena {
        self.free
            .lock()
            .ok()
            .and_then(|mut free| free.pop())
            .unwrap_or_default()
    }

    pub(crate) fn restore(&self, arena: Arena) {
        if let Ok(mut free) = self.free.lock() {
            if free.len() < MAX_POOLED_ARENAS {
                free.push(arena);
            }
        }
    }
}

/// Plans the best window path for one particle: a sequence of positions
/// `[start, ...]` of length ≤ `window + 1` ending on a cell that is safe to
/// park on for the rest of the window, minimising the Manhattan distance to
/// `goal` (then arrival time). Falls back to waiting at `start`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn window_astar(
    lo: GridCoord,
    hi: GridCoord,
    allowed: impl Fn(GridCoord) -> bool,
    start: GridCoord,
    goal: GridCoord,
    reservations: &impl ReservationView,
    scratch: &mut Scratch,
    cap: usize,
) -> Vec<GridCoord> {
    let window = reservations.window();
    let bw = (hi.x - lo.x + 1) as usize;
    let bh = (hi.y - lo.y + 1) as usize;
    let idx = |c: GridCoord, t: usize| -> usize {
        (t * bh + (c.y - lo.y) as usize) * bw + (c.x - lo.x) as usize
    };
    let coord_of = |state: usize| -> (GridCoord, usize) {
        let t = state / (bw * bh);
        let rem = state % (bw * bh);
        (
            GridCoord::new(lo.x + (rem % bw) as u32, lo.y + (rem / bw) as u32),
            t,
        )
    };
    scratch.begin(bw * bh * (window + 1));

    let h = |c: GridCoord| c.manhattan(goal);
    scratch.open.push(Open {
        f: h(start),
        t: 0,
        y: start.y as u16,
        x: start.x as u16,
    });
    scratch.visited[idx(start, 0)] = scratch.epoch;

    // Best parking spot so far: minimise (distance-to-goal, t, y, x). The
    // best spot *away from the start* is tracked separately: when no
    // distance progress is possible at all, parking on an equal-distance
    // sidestep instead of waiting is what lets two head-on particles rotate
    // around each other across successive windows.
    let mut best: Option<(u32, usize, GridCoord)> = None;
    let mut best_moving: Option<(u32, usize, GridCoord)> = None;
    fn update(slot: &mut Option<(u32, usize, GridCoord)>, key: (u32, usize, GridCoord)) {
        match slot {
            Some(existing) if *existing <= key => {}
            _ => *slot = Some(key),
        }
    }
    let consider = |c: GridCoord,
                    t: usize,
                    best: &mut Option<(u32, usize, GridCoord)>,
                    best_moving: &mut Option<(u32, usize, GridCoord)>| {
        if !reservations.is_free_from(c, t) {
            return;
        }
        let key = (h(c), t, c);
        update(best, key);
        if c != start {
            update(best_moving, key);
        }
    };
    consider(start, 0, &mut best, &mut best_moving);

    let mut expansions = 0usize;
    while let Some(Open { t, y, x, .. }) = scratch.open.pop() {
        let c = GridCoord::new(x as u32, y as u32);
        let t = t as usize;
        consider(c, t, &mut best, &mut best_moving);
        if let Some((0, bt, bc)) = best {
            if bc == c && bt == t {
                break; // reached the goal and can park there
            }
        }
        expansions += 1;
        if expansions > cap || t >= window {
            if expansions > cap {
                break;
            }
            continue;
        }
        for (dx, dy) in [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)] {
            let Some(next) = c.offset(dx, dy) else {
                continue;
            };
            if next.x < lo.x || next.x > hi.x || next.y < lo.y || next.y > hi.y {
                continue;
            }
            if !allowed(next) || !reservations.is_free(next, t + 1) {
                continue;
            }
            let slot = idx(next, t + 1);
            if scratch.visited[slot] == scratch.epoch {
                continue;
            }
            scratch.visited[slot] = scratch.epoch;
            scratch.parent[slot] = idx(c, t) as u32;
            scratch.open.push(Open {
                f: (t + 1) as u32 + h(next),
                t: (t + 1) as u16,
                y: next.y as u16,
                x: next.x as u16,
            });
        }
    }

    // Stall breaking: if the best reachable distance equals the start's
    // (no progress possible) prefer an equal-distance sidestep over waiting.
    if let (Some((d, _, _)), Some(moving)) = (best, best_moving) {
        if d > 0 && d == h(start) && moving.0 == d {
            best = Some(moving);
        }
    }
    let Some((_, stop_t, stop_c)) = best else {
        return vec![start]; // defensive: the start always qualifies
    };
    let mut positions = vec![stop_c];
    let mut state = idx(stop_c, stop_t);
    for _ in 0..stop_t {
        state = scratch.parent[state] as usize;
        let (c, _) = coord_of(state);
        positions.push(c);
    }
    positions.reverse();
    positions
}
