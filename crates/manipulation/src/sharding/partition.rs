//! Staggered square-tile partitions of the electrode grid.
//!
//! A [`Partition`] divides the array into `side`-sized tiles anchored at a
//! stagger offset `(ox, oy)`. Successive routing windows cycle the offset
//! through the four [`stagger_phases`] so every cell is interior to some
//! tile in at least one phase — that is what lets traffic ratchet across
//! tile boundaries without any cross-shard communication.

use labchip_units::{GridCoord, GridDims};

/// The four stagger offsets cycled across successive windows:
/// `(0,0)`, `(s/2,0)`, `(0,s/2)`, `(s/2,s/2)`.
pub(crate) fn stagger_phases(side: u32) -> [(u32, u32); 4] {
    [(0, 0), (side / 2, 0), (0, side / 2), (side / 2, side / 2)]
}

/// A staggered partition of the grid into square tiles.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Partition {
    dims: GridDims,
    side: u32,
    ox: u32,
    oy: u32,
    min_tx: u32,
    min_ty: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl Partition {
    pub(crate) fn new(dims: GridDims, side: u32, ox: u32, oy: u32) -> Self {
        let raw_tx = |x: u32| (x + side - ox) / side;
        let raw_ty = |y: u32| (y + side - oy) / side;
        let min_tx = raw_tx(0);
        let min_ty = raw_ty(0);
        Self {
            dims,
            side,
            ox,
            oy,
            min_tx,
            min_ty,
            tiles_x: raw_tx(dims.cols - 1) - min_tx + 1,
            tiles_y: raw_ty(dims.rows - 1) - min_ty + 1,
        }
    }

    pub(crate) fn tile_count(&self) -> usize {
        self.tiles_x as usize * self.tiles_y as usize
    }

    /// Tile grid coordinates `(tx, ty)` of the tile containing `c`.
    fn tile_xy(&self, c: GridCoord) -> (u32, u32) {
        (
            (c.x + self.side - self.ox) / self.side - self.min_tx,
            (c.y + self.side - self.oy) / self.side - self.min_ty,
        )
    }

    /// Compact tile index of a coordinate.
    pub(crate) fn tile_of(&self, c: GridCoord) -> usize {
        let (tx, ty) = self.tile_xy(c);
        (ty * self.tiles_x + tx) as usize
    }

    /// Compact indices of every tile overlapping the inclusive cell box
    /// `[lo, hi]` (the box is clipped to the grid).
    pub(crate) fn tiles_in_box(
        &self,
        lo: GridCoord,
        hi: GridCoord,
    ) -> impl Iterator<Item = usize> + '_ {
        let (tx0, ty0) = self.tile_xy(lo);
        let clipped = GridCoord::new(hi.x.min(self.dims.cols - 1), hi.y.min(self.dims.rows - 1));
        let (tx1, ty1) = self.tile_xy(clipped);
        (ty0..=ty1).flat_map(move |ty| (tx0..=tx1).map(move |tx| (ty * self.tiles_x + tx) as usize))
    }

    /// Unclipped bounds of one axis of the tile containing `v`:
    /// `(lo, hi)` inclusive, possibly negative / past the edge.
    fn raw_axis_bounds(v: u32, side: u32, offset: u32) -> (i64, i64) {
        let t = ((v + side - offset) / side) as i64;
        let lo = t * side as i64 + offset as i64 - side as i64;
        (lo, lo + side as i64 - 1)
    }

    /// Clipped, inclusive bounds of the tile containing `c`.
    pub(crate) fn tile_bounds(&self, c: GridCoord) -> (GridCoord, GridCoord) {
        let (lx, hx) = Self::raw_axis_bounds(c.x, self.side, self.ox);
        let (ly, hy) = Self::raw_axis_bounds(c.y, self.side, self.oy);
        (
            GridCoord::new(lx.max(0) as u32, ly.max(0) as u32),
            GridCoord::new(
                hx.min(self.dims.cols as i64 - 1) as u32,
                hy.min(self.dims.rows as i64 - 1) as u32,
            ),
        )
    }

    /// Whether `c` lies within `margin` cells of an *internal* tile boundary
    /// (array edges need no margin: there is no neighbouring tile there).
    pub(crate) fn in_margin(&self, c: GridCoord, margin: u32) -> bool {
        if margin == 0 {
            return false;
        }
        let m = margin as i64;
        let (lx, hx) = Self::raw_axis_bounds(c.x, self.side, self.ox);
        let (ly, hy) = Self::raw_axis_bounds(c.y, self.side, self.oy);
        let x = c.x as i64;
        let y = c.y as i64;
        (lx > 0 && x < lx + m)
            || (hx < self.dims.cols as i64 - 1 && x > hx - m)
            || (ly > 0 && y < ly + m)
            || (hy < self.dims.rows as i64 - 1 && y > hy - m)
    }
}

/// Structure-of-arrays tile membership: which particle indices plan in
/// which tile this window.
///
/// Replaces the per-window `Vec<Vec<usize>>` nested build with two flat
/// arrays — `starts` (prefix offsets, `tile_count + 1` long) into
/// `members` (particle indices grouped by tile) — built by a two-pass
/// counting sort. One allocation pair per window instead of one `Vec`
/// per tile, contiguous per-tile slices for the planner's hot loops, and
/// the same deterministic within-tile order (ascending particle index)
/// the nested build produced.
#[derive(Debug, Clone, Default)]
pub(crate) struct TileMembership {
    starts: Vec<u32>,
    members: Vec<u32>,
}

impl TileMembership {
    /// Counting-sort build: count per tile, prefix-sum, place. Frozen
    /// particles are left out, exactly like the nested build skipped
    /// them.
    pub(crate) fn build(part: &Partition, positions: &[GridCoord], frozen: &[bool]) -> Self {
        let tiles = part.tile_count();
        let mut starts = vec![0u32; tiles + 1];
        for (i, pos) in positions.iter().enumerate() {
            if !frozen[i] {
                starts[part.tile_of(*pos) + 1] += 1;
            }
        }
        for tile in 0..tiles {
            starts[tile + 1] += starts[tile];
        }
        let mut members = vec![0u32; starts[tiles] as usize];
        let mut cursor = starts.clone();
        for (i, pos) in positions.iter().enumerate() {
            if !frozen[i] {
                let tile = part.tile_of(*pos);
                members[cursor[tile] as usize] = i as u32;
                cursor[tile] += 1;
            }
        }
        Self { starts, members }
    }

    /// Number of tiles (occupied or not).
    pub(crate) fn tile_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// The particle indices planning in `tile`, in build order.
    pub(crate) fn members(&self, tile: usize) -> &[u32] {
        &self.members[self.starts[tile] as usize..self.starts[tile + 1] as usize]
    }

    /// Sorts every tile's members by `key` — the planner's
    /// front-runners-first ordering, applied per contiguous slice.
    pub(crate) fn sort_each_tile_by_key<K: Ord>(&mut self, mut key: impl FnMut(u32) -> K) {
        for tile in 0..self.tile_count() {
            let (lo, hi) = (self.starts[tile] as usize, self.starts[tile + 1] as usize);
            self.members[lo..hi].sort_by_key(|&i| key(i));
        }
    }

    /// Tiles with at least one member.
    pub(crate) fn occupied_tiles(&self) -> usize {
        (0..self.tile_count())
            .filter(|&tile| self.starts[tile] != self.starts[tile + 1])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sort_matches_the_nested_build() {
        let dims = GridDims::new(40, 40);
        let part = Partition::new(dims, 8, 4, 0);
        // A deterministic scatter, some frozen.
        let positions: Vec<GridCoord> = (0..60)
            .map(|i| GridCoord::new((i * 7) % 40, (i * 13) % 40))
            .collect();
        let frozen: Vec<bool> = (0..60).map(|i| i % 5 == 0).collect();

        let mut nested: Vec<Vec<u32>> = vec![Vec::new(); part.tile_count()];
        for (i, pos) in positions.iter().enumerate() {
            if !frozen[i] {
                nested[part.tile_of(*pos)].push(i as u32);
            }
        }
        let soa = TileMembership::build(&part, &positions, &frozen);
        assert_eq!(soa.tile_count(), part.tile_count());
        for (tile, expected) in nested.iter().enumerate() {
            assert_eq!(soa.members(tile), expected.as_slice(), "tile {tile}");
        }
        assert_eq!(
            soa.occupied_tiles(),
            nested.iter().filter(|members| !members.is_empty()).count()
        );
    }

    #[test]
    fn per_tile_sort_orders_within_tiles_only() {
        let dims = GridDims::new(16, 16);
        let part = Partition::new(dims, 8, 0, 0);
        let positions = vec![
            GridCoord::new(1, 1),
            GridCoord::new(2, 2),
            GridCoord::new(9, 9),
            GridCoord::new(10, 10),
        ];
        let mut soa = TileMembership::build(&part, &positions, &[false; 4]);
        // Reverse-index keys flip the order inside each tile but never
        // move a member across tiles.
        soa.sort_each_tile_by_key(std::cmp::Reverse);
        assert_eq!(soa.members(part.tile_of(positions[0])), &[1, 0]);
        assert_eq!(soa.members(part.tile_of(positions[2])), &[3, 2]);
    }
}
