//! Staggered square-tile partitions of the electrode grid.
//!
//! A [`Partition`] divides the array into `side`-sized tiles anchored at a
//! stagger offset `(ox, oy)`. Successive routing windows cycle the offset
//! through the four [`stagger_phases`] so every cell is interior to some
//! tile in at least one phase — that is what lets traffic ratchet across
//! tile boundaries without any cross-shard communication.

use labchip_units::{GridCoord, GridDims};

/// The four stagger offsets cycled across successive windows:
/// `(0,0)`, `(s/2,0)`, `(0,s/2)`, `(s/2,s/2)`.
pub(crate) fn stagger_phases(side: u32) -> [(u32, u32); 4] {
    [(0, 0), (side / 2, 0), (0, side / 2), (side / 2, side / 2)]
}

/// A staggered partition of the grid into square tiles.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Partition {
    dims: GridDims,
    side: u32,
    ox: u32,
    oy: u32,
    min_tx: u32,
    min_ty: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl Partition {
    pub(crate) fn new(dims: GridDims, side: u32, ox: u32, oy: u32) -> Self {
        let raw_tx = |x: u32| (x + side - ox) / side;
        let raw_ty = |y: u32| (y + side - oy) / side;
        let min_tx = raw_tx(0);
        let min_ty = raw_ty(0);
        Self {
            dims,
            side,
            ox,
            oy,
            min_tx,
            min_ty,
            tiles_x: raw_tx(dims.cols - 1) - min_tx + 1,
            tiles_y: raw_ty(dims.rows - 1) - min_ty + 1,
        }
    }

    pub(crate) fn tile_count(&self) -> usize {
        self.tiles_x as usize * self.tiles_y as usize
    }

    /// Tile grid coordinates `(tx, ty)` of the tile containing `c`.
    fn tile_xy(&self, c: GridCoord) -> (u32, u32) {
        (
            (c.x + self.side - self.ox) / self.side - self.min_tx,
            (c.y + self.side - self.oy) / self.side - self.min_ty,
        )
    }

    /// Compact tile index of a coordinate.
    pub(crate) fn tile_of(&self, c: GridCoord) -> usize {
        let (tx, ty) = self.tile_xy(c);
        (ty * self.tiles_x + tx) as usize
    }

    /// Compact indices of every tile overlapping the inclusive cell box
    /// `[lo, hi]` (the box is clipped to the grid).
    pub(crate) fn tiles_in_box(
        &self,
        lo: GridCoord,
        hi: GridCoord,
    ) -> impl Iterator<Item = usize> + '_ {
        let (tx0, ty0) = self.tile_xy(lo);
        let clipped = GridCoord::new(hi.x.min(self.dims.cols - 1), hi.y.min(self.dims.rows - 1));
        let (tx1, ty1) = self.tile_xy(clipped);
        (ty0..=ty1).flat_map(move |ty| (tx0..=tx1).map(move |tx| (ty * self.tiles_x + tx) as usize))
    }

    /// Unclipped bounds of one axis of the tile containing `v`:
    /// `(lo, hi)` inclusive, possibly negative / past the edge.
    fn raw_axis_bounds(v: u32, side: u32, offset: u32) -> (i64, i64) {
        let t = ((v + side - offset) / side) as i64;
        let lo = t * side as i64 + offset as i64 - side as i64;
        (lo, lo + side as i64 - 1)
    }

    /// Clipped, inclusive bounds of the tile containing `c`.
    pub(crate) fn tile_bounds(&self, c: GridCoord) -> (GridCoord, GridCoord) {
        let (lx, hx) = Self::raw_axis_bounds(c.x, self.side, self.ox);
        let (ly, hy) = Self::raw_axis_bounds(c.y, self.side, self.oy);
        (
            GridCoord::new(lx.max(0) as u32, ly.max(0) as u32),
            GridCoord::new(
                hx.min(self.dims.cols as i64 - 1) as u32,
                hy.min(self.dims.rows as i64 - 1) as u32,
            ),
        )
    }

    /// Whether `c` lies within `margin` cells of an *internal* tile boundary
    /// (array edges need no margin: there is no neighbouring tile there).
    pub(crate) fn in_margin(&self, c: GridCoord, margin: u32) -> bool {
        if margin == 0 {
            return false;
        }
        let m = margin as i64;
        let (lx, hx) = Self::raw_axis_bounds(c.x, self.side, self.ox);
        let (ly, hy) = Self::raw_axis_bounds(c.y, self.side, self.oy);
        let x = c.x as i64;
        let y = c.y as i64;
        (lx > 0 && x < lx + m)
            || (hx < self.dims.cols as i64 - 1 && x > hx - m)
            || (ly > 0 && y < ly + m)
            || (hy < self.dims.rows as i64 - 1 && y > hy - m)
    }
}
