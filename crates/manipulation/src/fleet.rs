//! Sharded chip fleets: one logical array decomposed over many
//! [`ChipState`]s with a typed cross-shard handoff protocol.
//!
//! The paper's CMOS array scales by tiling identical cage electronics; a
//! chip larger than one worker's memory or core budget should likewise be
//! simulatable as a *fleet* of shard states that together are
//! **bit-identical** to the monolithic run. This module provides the
//! state-layer half of that story:
//!
//! * [`FleetTopology`] — partitions a logical `dims` into a `gx × gy`
//!   grid of shard rectangles. Each shard owns its *core* rect and
//!   carries a halo (ghost) margin of `min_separation / 2` cells, so a
//!   shard's local coordinate frame has the same boundary context the
//!   staggered-tile planner assumes (see [`crate::sharding`]).
//! * [`ShardedState`] — a fleet of per-shard [`ChipState`]s maintained as
//!   an exact decomposition of the global chip. The workload layer keeps
//!   executing the *identical* algorithm against the global state (so the
//!   global journal cannot diverge by construction) and mirrors every
//!   mutation into the owning shard. A particle whose removal/placement
//!   pair crosses a shard boundary is journaled through the
//!   [`ChipState::export_particle`] / [`ChipState::import_particle`]
//!   choke points as a typed
//!   [`Event::HandoffExported`](crate::journal::Event::HandoffExported) /
//!   [`Event::HandoffImported`](crate::journal::Event::HandoffImported)
//!   pair — so every shard journal replays
//!   bit-for-bit through the ordinary [`replay`](crate::journal::replay)
//!   oracle, handoffs included.
//! * [`ShardedState::compose`] — folds the shard states back into one
//!   global [`ChipState`] whose grid, plan, ledger, [`PartialEq`] and
//!   [`ChipState::state_hash`] all match the monolithic run exactly; the
//!   equivalence check scenario E16 sweeps.
//! * [`ShardedState::route_windows`] — plans each shard's pending
//!   transfer window locally through the existing
//!   [`IncrementalRouter`]/[`RouterCache`] pair, one warm-startable cache
//!   per shard.
//! * [`LiveFleetPlanner`] /
//!   [`ShardedState::route_windows_live`] — the *parallel* variant:
//!   one worker thread per shard plans its own window concurrently, and
//!   seam crossings are exchanged through typed [`HandoffMsg`] `mpsc`
//!   channels in a two-phase export→import protocol. Each worker first
//!   announces every declared transfer leaving its shard, all workers
//!   rendezvous on a barrier, then each drains its inbox **sorted by
//!   particle id** — so the set of requests a shard plans depends only
//!   on the window-start state, never on channel arrival order, and the
//!   result is deterministic for any thread interleaving. Like the
//!   serial path, the live plans are advisory warm-ups of the per-shard
//!   caches: neither touches the global state, RNG or any journal, so
//!   the global journal stays byte-identical to the monolithic run by
//!   construction.
//!
//! Transfers are declared up front
//! ([`ShardedState::begin_transfers`]) so each mutation can be journaled
//! at its application point in application order — deferring the
//! export/import decision until the destination is observed would append
//! shard events out of order and break per-shard replay.

use crate::cage::ParticleId;
use crate::journal::Journal;
use crate::routing::{RoutingProblem, RoutingRequest};
use crate::sharding::{CacheStats, IncrementalRouter, RouterCache};
use crate::state::{ChipState, TimeLedger};
use labchip_units::{GridCoord, GridDims, GridRect, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::Barrier;

/// Partition of a logical array into a `gx × gy` grid of shard
/// rectangles with halo (ghost) margins.
///
/// Shards are indexed row-major: shard `sy * gx + sx` owns the cells
/// with `x` in the `sx`-th column band and `y` in the `sy`-th row band.
/// Bands split the array as evenly as possible (`⌊i·cols/gx⌋`
/// boundaries). Every global cell has exactly one owner; the halo rect
/// extends a shard's core by `min_separation / 2` cells in each
/// direction (clipped to the array), giving the shard's local frame the
/// ghost margin a boundary-adjacent routing window needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTopology {
    dims: GridDims,
    min_separation: u32,
    grid: (u32, u32),
    halo: u32,
    /// `gx + 1` column-band boundaries (`x_bounds[i]..x_bounds[i+1]`).
    x_bounds: Vec<u32>,
    /// `gy + 1` row-band boundaries.
    y_bounds: Vec<u32>,
}

fn band_bounds(extent: u32, bands: u32) -> Vec<u32> {
    (0..=bands)
        .map(|i| ((u64::from(i) * u64::from(extent)) / u64::from(bands)) as u32)
        .collect()
}

impl FleetTopology {
    /// Creates a `grid_cols × grid_rows` shard topology over `dims`.
    ///
    /// # Panics
    ///
    /// Panics if either grid extent is zero or exceeds the matching array
    /// extent (a shard must own at least one column and one row).
    pub fn new(dims: GridDims, min_separation: u32, grid_cols: u32, grid_rows: u32) -> Self {
        assert!(
            grid_cols >= 1 && grid_rows >= 1,
            "fleet grid extents must be at least 1×1"
        );
        assert!(
            grid_cols <= dims.cols && grid_rows <= dims.rows,
            "fleet grid {grid_cols}×{grid_rows} exceeds array {}×{}",
            dims.cols,
            dims.rows
        );
        Self {
            dims,
            min_separation,
            grid: (grid_cols, grid_rows),
            halo: min_separation / 2,
            x_bounds: band_bounds(dims.cols, grid_cols),
            y_bounds: band_bounds(dims.rows, grid_rows),
        }
    }

    /// The logical (global) array dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The minimum cage separation the fleet simulates under.
    pub fn min_separation(&self) -> u32 {
        self.min_separation
    }

    /// The shard grid as `(cols, rows)`.
    pub fn shard_grid(&self) -> (u32, u32) {
        self.grid
    }

    /// Number of shards (`gx · gy`).
    pub fn shard_count(&self) -> usize {
        (self.grid.0 * self.grid.1) as usize
    }

    /// The halo (ghost) margin in cells: `min_separation / 2`.
    pub fn halo(&self) -> u32 {
        self.halo
    }

    /// The core rectangle a shard owns (inclusive corners).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn core(&self, shard: usize) -> GridRect {
        let gx = self.grid.0 as usize;
        assert!(shard < self.shard_count(), "shard {shard} out of range");
        let (sx, sy) = (shard % gx, shard / gx);
        GridRect::new(
            GridCoord::new(self.x_bounds[sx], self.y_bounds[sy]),
            GridCoord::new(self.x_bounds[sx + 1] - 1, self.y_bounds[sy + 1] - 1),
        )
    }

    /// The shard's core expanded by the halo margin, clipped to the array
    /// — the rectangle the shard's local [`ChipState`] spans.
    pub fn halo_rect(&self, shard: usize) -> GridRect {
        let core = self.core(shard);
        GridRect::new(
            GridCoord::new(
                core.min.x.saturating_sub(self.halo),
                core.min.y.saturating_sub(self.halo),
            ),
            GridCoord::new(
                (core.max.x + self.halo).min(self.dims.cols - 1),
                (core.max.y + self.halo).min(self.dims.rows - 1),
            ),
        )
    }

    /// Dimensions of the shard's local frame (its halo rect).
    pub fn local_dims(&self, shard: usize) -> GridDims {
        let rect = self.halo_rect(shard);
        GridDims::new(rect.max.x - rect.min.x + 1, rect.max.y - rect.min.y + 1)
    }

    /// The shard owning a global coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the array.
    pub fn owner(&self, at: GridCoord) -> usize {
        assert!(
            at.x < self.dims.cols && at.y < self.dims.rows,
            "coordinate {at} outside array"
        );
        // partition_point over the upper boundaries: band i covers
        // x_bounds[i]..x_bounds[i+1].
        let sx = self.x_bounds[1..].partition_point(|&b| b <= at.x);
        let sy = self.y_bounds[1..].partition_point(|&b| b <= at.y);
        sy * self.grid.0 as usize + sx
    }

    /// Converts a global coordinate into a shard's local frame.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies outside the shard's halo rect.
    pub fn to_local(&self, shard: usize, at: GridCoord) -> GridCoord {
        let rect = self.halo_rect(shard);
        assert!(
            rect.contains(at),
            "coordinate {at} outside shard {shard} halo rect"
        );
        GridCoord::new(at.x - rect.min.x, at.y - rect.min.y)
    }

    /// Converts a shard-local coordinate back into the global frame.
    pub fn to_global(&self, shard: usize, local: GridCoord) -> GridCoord {
        let rect = self.halo_rect(shard);
        GridCoord::new(local.x + rect.min.x, local.y + rect.min.y)
    }
}

/// Handoff and planning counters of a sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Cross-shard handoff exports journaled.
    pub exports: u64,
    /// Cross-shard handoff imports journaled.
    pub imports: u64,
    /// Staggered-phase barriers executed (one per finished phase).
    pub barriers: u64,
    /// Per-shard local window solves that ran.
    pub local_solves: u64,
    /// Per-shard local windows skipped because the local problem failed
    /// validation (e.g. merged cages at the window start).
    pub local_skips: u64,
    /// Live (parallel) planning windows executed.
    pub live_windows: u64,
    /// Seam-crossing [`HandoffMsg`]es sent over the live planner's
    /// export→import channels.
    pub seam_messages: u64,
    /// Seam messages a destination shard folded into its local planning
    /// problem (announcements whose seam entry cell was free).
    pub seam_imports: u64,
}

/// A transfer declared for the current window: where the particle is
/// headed, and — once its removal has been mirrored — which shard
/// exported it.
#[derive(Debug, Clone, Copy)]
struct PendingTransfer {
    to: GridCoord,
    exported_from: Option<usize>,
}

/// A typed seam-crossing announcement exchanged over the live planner's
/// handoff channels: "particle `id`, currently at `from` in shard
/// `from_shard`, is declared to land at `to` in shard `to_shard` this
/// window". Receivers sort their inbox by `id` before planning, which
/// makes the exchange deterministic for any channel arrival order (a
/// particle has at most one declared transfer per window, so `id` is a
/// total order on the inbox).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoffMsg {
    /// The crossing particle.
    pub id: ParticleId,
    /// Shard currently hosting the particle.
    pub from_shard: usize,
    /// Shard owning the declared destination cell.
    pub to_shard: usize,
    /// Global cell the particle occupies at the window start.
    pub from: GridCoord,
    /// Global destination cell of the declared transfer.
    pub to: GridCoord,
}

/// Per-window report of one [`LiveFleetPlanner::plan_window`] call,
/// summed over the shard workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveWindowReport {
    /// Shard windows solved.
    pub solves: u64,
    /// Shard windows skipped (no goal, or local validation failure).
    pub skips: u64,
    /// Seam messages sent across the handoff channels.
    pub seam_messages: u64,
    /// Seam messages folded into a destination shard's problem.
    pub seam_imports: u64,
}

/// A fleet of per-shard [`ChipState`]s maintained as an exact, journaled
/// decomposition of one global chip.
///
/// The owner of the global [`ChipState`] drives the simulation exactly as
/// in the monolithic path and mirrors each successful mutation here; the
/// mirrors never touch global state, RNG or the global journal, so a
/// sharded run's global journal is byte-identical to the monolithic run
/// by construction. Mirror calls panic if the fleet ever desynchronises
/// from the global chip — that is a bug, not an input error, because a
/// mutation that succeeded globally must succeed in the owning shard
/// (shard occupancy is a subset of global occupancy, so every separation
/// and bounds argument carries over).
#[derive(Debug)]
pub struct ShardedState {
    topology: FleetTopology,
    shards: Vec<ChipState>,
    caches: Vec<RouterCache>,
    /// Which shard currently hosts each particle.
    locate: HashMap<ParticleId, usize>,
    /// Transfers declared for the current window.
    pending: HashMap<ParticleId, PendingTransfer>,
    stats: FleetStats,
}

impl ShardedState {
    /// Creates an empty fleet over `topology`, one journaled [`ChipState`]
    /// and one warm-startable [`RouterCache`] per shard.
    pub fn new(topology: FleetTopology) -> Self {
        let sep = topology.min_separation().max(1);
        let shards: Vec<ChipState> = (0..topology.shard_count())
            .map(|s| {
                let mut state = ChipState::with_separation(topology.local_dims(s), sep);
                state.attach_journal();
                state
            })
            .collect();
        let caches = (0..topology.shard_count())
            .map(|_| RouterCache::new())
            .collect();
        Self {
            topology,
            shards,
            caches,
            locate: HashMap::new(),
            pending: HashMap::new(),
            stats: FleetStats::default(),
        }
    }

    /// The fleet topology.
    pub fn topology(&self) -> &FleetTopology {
        &self.topology
    }

    /// Read access to one shard state.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &ChipState {
        &self.shards[shard]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Handoff and planning counters so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Warm-start cache statistics of one shard's [`RouterCache`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn cache_stats(&self, shard: usize) -> CacheStats {
        self.caches[shard].stats()
    }

    /// Particles currently hosted per shard — the load-imbalance probe.
    pub fn shard_populations(&self) -> Vec<usize> {
        self.shards.iter().map(ChipState::particle_count).collect()
    }

    /// Declares the transfers of the upcoming window: `(id, from, to)`
    /// triples taken from the routing outcome *before* any particle is
    /// lifted. Declaring up front is what lets each subsequent mirror call
    /// journal the handoff halves in application order.
    pub fn begin_transfers(&mut self, transfers: &[(ParticleId, GridCoord, GridCoord)]) {
        for &(id, _from, to) in transfers {
            self.pending.insert(
                id,
                PendingTransfer {
                    to,
                    exported_from: None,
                },
            );
        }
    }

    /// Plans each shard's declared-transfer window locally through the
    /// incremental router, one content-keyed [`RouterCache`] per shard —
    /// so an unchanged shard window warm-starts from its own cache.
    /// Shards with no in-shard transfer target are skipped outright; a
    /// shard whose local problem fails validation (merged cages share a
    /// start site, or two holds collide with a goal) degrades to a
    /// counted skip, never an error: the global plan remains the source
    /// of executed motion.
    pub fn route_windows(&mut self, router: &IncrementalRouter) {
        for s in 0..self.shards.len() {
            let members: Vec<(ParticleId, GridCoord)> =
                self.shards[s].grid().iter_particles().collect();
            if members.is_empty() {
                continue;
            }
            let mut any_goal = false;
            let requests: Vec<RoutingRequest> = members
                .iter()
                .map(|&(id, start)| {
                    let goal = match self.pending.get(&id) {
                        Some(pending) if self.topology.owner(pending.to) == s => {
                            let local = self.topology.to_local(s, pending.to);
                            if local != start {
                                any_goal = true;
                            }
                            local
                        }
                        _ => start,
                    };
                    RoutingRequest { id, start, goal }
                })
                .collect();
            if !any_goal {
                continue;
            }
            let mut problem = RoutingProblem::new(self.topology.local_dims(s), requests);
            problem.min_separation = self.topology.min_separation();
            // One planner window per call: the fleet plans shard-local
            // windows, it does not re-derive the global trajectory.
            problem.max_steps = router.shards.window.max(1) as usize;
            match router.solve_cached(&problem, &mut self.caches[s]) {
                Ok(_) => self.stats.local_solves += 1,
                Err(_) => self.stats.local_skips += 1,
            }
        }
    }

    /// The parallel variant of [`route_windows`](Self::route_windows):
    /// one worker thread per shard plans its window concurrently,
    /// resolving seam crossings through the [`LiveFleetPlanner`]'s
    /// two-phase export→import channel protocol. Bit-equivalent in
    /// journal terms (neither path touches any journal); the live path
    /// additionally folds announced seam arrivals into the destination
    /// shard's window problem.
    pub fn route_windows_live(&mut self, router: &IncrementalRouter) -> LiveWindowReport {
        LiveFleetPlanner::new(*router).plan_window(self)
    }

    /// Mirrors a successful global placement into the owning shard. A
    /// declared transfer whose removal was journaled as an export lands
    /// as a typed [handoff import](ChipState::import_particle); everything
    /// else is a plain placement.
    ///
    /// # Panics
    ///
    /// Panics if the shard rejects the placement — impossible while the
    /// fleet mirrors a valid global chip.
    pub fn mirror_place(&mut self, id: ParticleId, at: GridCoord) {
        let shard = self.topology.owner(at);
        let local = self.topology.to_local(shard, at);
        match self.pending.remove(&id) {
            Some(PendingTransfer {
                exported_from: Some(from_shard),
                ..
            }) => {
                self.shards[shard]
                    .import_particle(id, local, from_shard)
                    .expect("mirror of a successful global place cannot fail");
                self.stats.imports += 1;
            }
            _ => {
                self.shards[shard]
                    .place(id, local)
                    .expect("mirror of a successful global place cannot fail");
            }
        }
        self.locate.insert(id, shard);
    }

    /// Mirrors a successful global removal out of the hosting shard. A
    /// declared transfer headed to another shard is journaled as a typed
    /// [handoff export](ChipState::export_particle); everything else is a
    /// plain removal.
    ///
    /// # Panics
    ///
    /// Panics if the particle is not tracked by the fleet — impossible
    /// while the fleet mirrors a valid global chip.
    pub fn mirror_remove(&mut self, id: ParticleId) {
        let shard = self
            .locate
            .remove(&id)
            .expect("mirror of a successful global remove cannot miss");
        let export_to = match self.pending.get(&id) {
            Some(pending) => {
                let destination = self.topology.owner(pending.to);
                (destination != shard).then_some(destination)
            }
            None => None,
        };
        match export_to {
            Some(destination) => {
                self.shards[shard]
                    .export_particle(id, destination)
                    .expect("mirror of a successful global remove cannot miss");
                if let Some(pending) = self.pending.get_mut(&id) {
                    pending.exported_from = Some(shard);
                }
                self.stats.exports += 1;
            }
            None => {
                self.shards[shard]
                    .remove(id)
                    .expect("mirror of a successful global remove cannot miss");
            }
        }
    }

    /// Mirrors a successful global merge placement into the owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the array.
    pub fn mirror_place_merged(&mut self, id: ParticleId, at: GridCoord) {
        let shard = self.topology.owner(at);
        let local = self.topology.to_local(shard, at);
        self.pending.remove(&id);
        self.shards[shard].place_merged(id, local);
        self.locate.insert(id, shard);
    }

    /// Mirrors a global plan replacement: each shard's plan becomes the
    /// goals it owns, localised; every shard journals the replacement
    /// (possibly empty), preserving the barrier structure of the trace.
    pub fn mirror_plan(&mut self, goals: &[GridCoord]) {
        for s in 0..self.shards.len() {
            let local: Vec<GridCoord> = goals
                .iter()
                .filter(|&&goal| self.topology.owner(goal) == s)
                .map(|&goal| self.topology.to_local(s, goal))
                .collect();
            self.shards[s].set_plan_from_goals(local);
        }
    }

    /// Mirrors a global time charge into every shard, so each shard
    /// journal carries the complete ledger and [`compose`](Self::compose)
    /// reproduces the monolithic ledger bit-for-bit.
    pub fn mirror_charge(&mut self, ledger: TimeLedger, duration: Seconds) {
        for shard in &mut self.shards {
            shard.charge(ledger, duration);
        }
    }

    /// Broadcasts a phase-start marker to every shard journal.
    pub fn note_phase_started(&mut self, index: usize, name: &str) {
        for shard in &mut self.shards {
            shard.note_phase_started(index, name);
        }
    }

    /// Broadcasts a phase-completion marker to every shard journal.
    pub fn note_phase_finished(&mut self, index: usize) {
        for shard in &mut self.shards {
            shard.note_phase_finished(index);
        }
    }

    /// Broadcasts a phase-abort marker to every shard journal.
    pub fn note_phase_aborted(&mut self, index: usize, reason: &str) {
        for shard in &mut self.shards {
            shard.note_phase_aborted(index, reason);
        }
    }

    /// The staggered-phase barrier: a rendezvous point at the end of each
    /// phase where every declared transfer has settled. Undelivered
    /// declarations (a phase that aborted mid-window) are dropped so the
    /// next window starts clean.
    pub fn barrier(&mut self) {
        self.pending.clear();
        self.stats.barriers += 1;
    }

    /// Folds the shard states back into one global [`ChipState`]: every
    /// particle at its global coordinate, the plan the union of the shard
    /// plans, the ledger taken from shard 0 (all shards charge
    /// identically). The result compares equal to — and hashes
    /// identically with — the monolithic state the fleet mirrored.
    pub fn compose(&self) -> ChipState {
        let sep = self.topology.min_separation().max(1);
        let mut composed = ChipState::with_separation(self.topology.dims(), sep);
        for (s, shard) in self.shards.iter().enumerate() {
            for (id, local) in shard.grid().iter_particles() {
                // Merge-tolerant placement: the shard may legitimately
                // hold merged cages, and the grid's id-keyed map makes
                // the insertion order irrelevant.
                composed.place_merged(id, self.topology.to_global(s, local));
            }
        }
        let mut plan: Vec<GridCoord> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            plan.extend(
                shard
                    .plan()
                    .occupied_sites()
                    .into_iter()
                    .map(|site| self.topology.to_global(s, site)),
            );
        }
        composed.set_plan_from_goals(plan);
        if let Some(first) = self.shards.first() {
            let time = *first.time();
            debug_assert!(
                self.shards.iter().all(|shard| *shard.time() == time),
                "mirror_charge keeps every shard ledger identical"
            );
            composed.charge(TimeLedger::Fluidics, time.fluidics);
            composed.charge(TimeLedger::Sensing, time.sensing);
            composed.charge(TimeLedger::Motion, time.motion);
            composed.charge(TimeLedger::Recovery, time.recovery);
        }
        composed
    }

    /// Finishes the run: detaches every shard journal and returns the
    /// fleet's outcome record.
    pub fn into_outcome(mut self) -> FleetOutcome {
        let journals: Vec<Journal> = self
            .shards
            .iter_mut()
            .map(|shard| shard.take_journal().expect("fleet shards are journaled"))
            .collect();
        let cache_stats = (0..self.shards.len())
            .map(|s| self.caches[s].stats())
            .collect();
        FleetOutcome {
            topology: self.topology,
            states: self.shards,
            journals,
            stats: self.stats,
            cache_stats,
        }
    }
}

/// Live parallel per-shard window planner.
///
/// Where [`ShardedState::route_windows`] walks the shards in a serial
/// loop, the live planner spawns **one worker thread per shard**, each
/// owning its shard's [`RouterCache`] (and therefore its pooled A\*
/// arenas) for the duration of the window. Seam traffic is exchanged in
/// a two-phase protocol over typed [`mpsc`] channels:
///
/// 1. **Export** — every worker scans the declared transfers of the
///    particles it hosts and sends a [`HandoffMsg`] to the destination
///    shard's channel for each one leaving its shard, then waits on a
///    [`Barrier`].
/// 2. **Import** — past the barrier every send has happened-before every
///    drain, so each worker drains its inbox completely, sorts it by
///    particle id, and folds the announced arrivals into its local
///    window problem (seam entry cell = the sender's position clamped
///    into the receiver's halo rect; arrivals whose entry cell is
///    already taken are deferred to a later window).
///
/// The sorted drain is the determinism argument: the request set each
/// shard plans is a pure function of the window-start state and the
/// declared transfers, never of channel arrival order or thread
/// interleaving, so cache contents and planning outcomes are
/// bit-identical across runs and thread schedules.
#[derive(Debug, Clone, Copy)]
pub struct LiveFleetPlanner {
    router: IncrementalRouter,
}

impl LiveFleetPlanner {
    /// Creates a live planner over the given incremental router.
    pub fn new(router: IncrementalRouter) -> Self {
        Self { router }
    }

    /// Plans every shard's declared-transfer window concurrently and
    /// returns the summed per-worker report. Updates the fleet's
    /// [`FleetStats`] counters (`local_solves`, `local_skips`,
    /// `live_windows`, `seam_messages`, `seam_imports`).
    pub fn plan_window(&self, fleet: &mut ShardedState) -> LiveWindowReport {
        let router = self.router;
        let topology = &fleet.topology;
        let pending = &fleet.pending;
        let workers = fleet.shards.len();
        let barrier = Barrier::new(workers);
        let (txs, rxs): (Vec<_>, Vec<_>) =
            (0..workers).map(|_| mpsc::channel::<HandoffMsg>()).unzip();
        let reports: Vec<LiveWindowReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = fleet
                .shards
                .iter()
                .zip(fleet.caches.iter_mut())
                .zip(rxs)
                .enumerate()
                .map(|(s, ((shard, cache), rx))| {
                    let txs = txs.clone();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let mut report = LiveWindowReport::default();
                        let members: Vec<(ParticleId, GridCoord)> =
                            shard.grid().iter_particles().collect();
                        // Phase 1 — export: announce every declared
                        // transfer leaving this shard to its destination.
                        for &(id, start) in &members {
                            if let Some(transfer) = pending.get(&id) {
                                let destination = topology.owner(transfer.to);
                                if destination != s {
                                    let msg = HandoffMsg {
                                        id,
                                        from_shard: s,
                                        to_shard: destination,
                                        from: topology.to_global(s, start),
                                        to: transfer.to,
                                    };
                                    txs[destination]
                                        .send(msg)
                                        .expect("live planner receivers outlive the export phase");
                                    report.seam_messages += 1;
                                }
                            }
                        }
                        drop(txs);
                        barrier.wait();
                        // Phase 2 — import: every send happened before
                        // the barrier, so the drain is complete; the
                        // sort pins a deterministic order.
                        let mut inbox: Vec<HandoffMsg> = rx.try_iter().collect();
                        inbox.sort_by_key(|msg| msg.id);

                        let mut any_goal = false;
                        let mut requests: Vec<RoutingRequest> = members
                            .iter()
                            .map(|&(id, start)| {
                                let goal = match pending.get(&id) {
                                    Some(transfer) if topology.owner(transfer.to) == s => {
                                        let local = topology.to_local(s, transfer.to);
                                        if local != start {
                                            any_goal = true;
                                        }
                                        local
                                    }
                                    _ => start,
                                };
                                RoutingRequest { id, start, goal }
                            })
                            .collect();
                        // Announced arrivals: plan each from its seam
                        // entry cell toward its destination. An entry
                        // cell already taken (a resident, or an earlier
                        // arrival in id order) defers the crossing to a
                        // later window.
                        let rect = topology.halo_rect(s);
                        let mut taken: HashSet<GridCoord> =
                            members.iter().map(|&(_, at)| at).collect();
                        for msg in &inbox {
                            let entry_global = GridCoord::new(
                                msg.from.x.clamp(rect.min.x, rect.max.x),
                                msg.from.y.clamp(rect.min.y, rect.max.y),
                            );
                            let entry = topology.to_local(s, entry_global);
                            if !taken.insert(entry) {
                                continue;
                            }
                            let goal = topology.to_local(s, msg.to);
                            if entry != goal {
                                any_goal = true;
                            }
                            report.seam_imports += 1;
                            requests.push(RoutingRequest {
                                id: msg.id,
                                start: entry,
                                goal,
                            });
                        }
                        if !any_goal || requests.is_empty() {
                            return report;
                        }
                        let mut problem = RoutingProblem::new(topology.local_dims(s), requests);
                        problem.min_separation = topology.min_separation();
                        // One planner window per call, exactly like the
                        // serial path: advisory shard-local lookahead,
                        // not a re-derivation of the global trajectory.
                        problem.max_steps = router.shards.window.max(1) as usize;
                        match router.solve_cached(&problem, cache) {
                            Ok(_) => report.solves += 1,
                            Err(_) => report.skips += 1,
                        }
                        report
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("live shard planner panicked"))
                .collect()
        });
        let mut total = LiveWindowReport::default();
        for report in reports {
            total.solves += report.solves;
            total.skips += report.skips;
            total.seam_messages += report.seam_messages;
            total.seam_imports += report.seam_imports;
        }
        fleet.stats.local_solves += total.solves;
        fleet.stats.local_skips += total.skips;
        fleet.stats.live_windows += 1;
        fleet.stats.seam_messages += total.seam_messages;
        fleet.stats.seam_imports += total.seam_imports;
        total
    }
}

/// Everything a finished sharded run leaves behind: the final shard
/// states, their journals, and the handoff/planning counters.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The topology the run was sharded under.
    pub topology: FleetTopology,
    /// Final per-shard states (journals detached).
    pub states: Vec<ChipState>,
    /// Per-shard journals, handoff events included.
    pub journals: Vec<Journal>,
    /// Handoff and planning counters.
    pub stats: FleetStats,
    /// Per-shard warm-start cache statistics.
    pub cache_stats: Vec<CacheStats>,
}

impl FleetOutcome {
    /// Replays every shard journal through the ordinary
    /// [`replay`](crate::journal::replay) oracle and counts shards whose
    /// replayed state hash misses the live shard state — must be zero.
    pub fn replay_divergences(&self) -> usize {
        let sep = self.topology.min_separation().max(1);
        (0..self.states.len())
            .filter(|&s| {
                let replayed =
                    crate::journal::replay(&self.journals[s], self.topology.local_dims(s), sep);
                match replayed {
                    Ok(state) => state.state_hash() != self.states[s].state_hash(),
                    Err(_) => true,
                }
            })
            .count()
    }

    /// Folds the final shard states into one global [`ChipState`] (see
    /// [`ShardedState::compose`]).
    pub fn compose(&self) -> ChipState {
        let sep = self.topology.min_separation().max(1);
        let mut composed = ChipState::with_separation(self.topology.dims(), sep);
        for (s, state) in self.states.iter().enumerate() {
            for (id, local) in state.grid().iter_particles() {
                composed.place_merged(id, self.topology.to_global(s, local));
            }
        }
        let mut plan: Vec<GridCoord> = Vec::new();
        for (s, state) in self.states.iter().enumerate() {
            plan.extend(
                state
                    .plan()
                    .occupied_sites()
                    .into_iter()
                    .map(|site| self.topology.to_global(s, site)),
            );
        }
        composed.set_plan_from_goals(plan);
        if let Some(first) = self.states.first() {
            let time = *first.time();
            composed.charge(TimeLedger::Fluidics, time.fluidics);
            composed.charge(TimeLedger::Sensing, time.sensing);
            composed.charge(TimeLedger::Motion, time.motion);
            composed.charge(TimeLedger::Recovery, time.recovery);
        }
        composed
    }

    /// Total cross-shard handoffs (export halves).
    pub fn handoffs(&self) -> u64 {
        self.stats.exports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Event;

    #[test]
    fn topology_partitions_every_cell_exactly_once() {
        let dims = GridDims::new(13, 9);
        let topo = FleetTopology::new(dims, 2, 3, 2);
        assert_eq!(topo.shard_count(), 6);
        for cell in dims.iter() {
            let owner = topo.owner(cell);
            let owners = (0..topo.shard_count())
                .filter(|&s| topo.core(s).contains(cell))
                .count();
            assert_eq!(owners, 1, "cell {cell} owned once");
            assert!(topo.core(owner).contains(cell));
        }
        let total: u64 = (0..topo.shard_count()).map(|s| topo.core(s).count()).sum();
        assert_eq!(total, u64::from(dims.cols) * u64::from(dims.rows));
    }

    #[test]
    fn halo_rects_extend_cores_by_half_the_separation() {
        let topo = FleetTopology::new(GridDims::square(16), 4, 2, 2);
        assert_eq!(topo.halo(), 2);
        // Interior shard corner: the halo reaches into the neighbour.
        let core = topo.core(3);
        let halo = topo.halo_rect(3);
        assert_eq!(halo.min.x, core.min.x - 2);
        assert_eq!(halo.min.y, core.min.y - 2);
        // Array edge: clipped.
        assert_eq!(halo.max.x, 15);
        assert_eq!(halo.max.y, 15);
        // Local/global round trip.
        let at = GridCoord::new(9, 10);
        assert_eq!(topo.to_global(3, topo.to_local(3, at)), at);
    }

    #[test]
    fn one_by_one_topology_is_the_monolithic_frame() {
        let dims = GridDims::square(12);
        let topo = FleetTopology::new(dims, 2, 1, 1);
        assert_eq!(topo.shard_count(), 1);
        assert_eq!(topo.local_dims(0), dims);
        assert_eq!(topo.owner(GridCoord::new(11, 0)), 0);
        assert_eq!(topo.to_local(0, GridCoord::new(7, 3)), GridCoord::new(7, 3));
    }

    /// Drives a small global chip and its mirror through a
    /// boundary-crossing move, then checks composition, handoff journaling
    /// and per-shard replay.
    #[test]
    fn mirrored_handoff_composes_and_replays_bit_identically() {
        let dims = GridDims::square(16);
        let sep = 2;
        let mut global = ChipState::with_separation(dims, sep);
        global.attach_journal();
        let topo = FleetTopology::new(dims, sep, 2, 1);
        let mut fleet = ShardedState::new(topo);

        // Place two particles, one per shard half.
        for (id, at) in [(1u64, GridCoord::new(2, 8)), (2, GridCoord::new(13, 8))] {
            global.place(ParticleId(id), at).unwrap();
            fleet.mirror_place(ParticleId(id), at);
        }
        // Move particle 1 across the x = 8 boundary: declared transfer,
        // lift, settle — the mirror journals an export/import pair.
        let from = GridCoord::new(2, 8);
        let to = GridCoord::new(11, 4);
        fleet.begin_transfers(&[(ParticleId(1), from, to)]);
        global.remove(ParticleId(1)).unwrap();
        fleet.mirror_remove(ParticleId(1));
        global.place(ParticleId(1), to).unwrap();
        fleet.mirror_place(ParticleId(1), to);
        let goals = vec![to, GridCoord::new(13, 8)];
        global.set_plan_from_goals(goals.iter().copied());
        fleet.mirror_plan(&goals);
        global.charge(TimeLedger::Motion, Seconds::new(1.25));
        fleet.mirror_charge(TimeLedger::Motion, Seconds::new(1.25));
        fleet.barrier();

        assert_eq!(fleet.stats().exports, 1);
        assert_eq!(fleet.stats().imports, 1);
        let composed = fleet.compose();
        assert_eq!(composed, global);
        assert_eq!(composed.state_hash(), global.state_hash());
        assert_eq!(
            fleet.shard_populations(),
            vec![0, 2],
            "both particles ended in the right half"
        );

        let outcome = fleet.into_outcome();
        assert_eq!(outcome.handoffs(), 1);
        assert_eq!(outcome.replay_divergences(), 0);
        assert_eq!(outcome.compose().state_hash(), global.state_hash());
        let kinds: Vec<&str> = outcome.journals[0]
            .events()
            .iter()
            .map(Event::kind)
            .collect();
        assert!(kinds.contains(&"handoff_exported"));
        let kinds: Vec<&str> = outcome.journals[1]
            .events()
            .iter()
            .map(Event::kind)
            .collect();
        assert!(kinds.contains(&"handoff_imported"));
    }

    #[test]
    fn in_shard_moves_journal_plain_remove_and_place() {
        let dims = GridDims::square(12);
        let topo = FleetTopology::new(dims, 2, 2, 1);
        let mut fleet = ShardedState::new(topo);
        fleet.mirror_place(ParticleId(7), GridCoord::new(1, 1));
        fleet.begin_transfers(&[(ParticleId(7), GridCoord::new(1, 1), GridCoord::new(3, 3))]);
        fleet.mirror_remove(ParticleId(7));
        fleet.mirror_place(ParticleId(7), GridCoord::new(3, 3));
        assert_eq!(fleet.stats().exports, 0);
        assert_eq!(fleet.stats().imports, 0);
        let outcome = fleet.into_outcome();
        let kinds: Vec<&str> = outcome.journals[0]
            .events()
            .iter()
            .map(Event::kind)
            .collect();
        assert_eq!(kinds, ["placed", "removed", "placed"]);
    }

    /// Builds a 2×1 fleet with one declared seam crossing and one
    /// in-shard move, for the live-planner tests.
    fn seam_fleet() -> ShardedState {
        let dims = GridDims::square(24);
        let topo = FleetTopology::new(dims, 2, 2, 1);
        let mut fleet = ShardedState::new(topo);
        fleet.mirror_place(ParticleId(1), GridCoord::new(10, 10));
        fleet.mirror_place(ParticleId(2), GridCoord::new(20, 4));
        fleet.begin_transfers(&[
            // Crosses the x = 12 boundary: shard 0 exports, shard 1 imports.
            (
                ParticleId(1),
                GridCoord::new(10, 10),
                GridCoord::new(16, 10),
            ),
            // Stays in shard 1.
            (ParticleId(2), GridCoord::new(20, 4), GridCoord::new(20, 8)),
        ]);
        fleet
    }

    #[test]
    fn live_planner_exchanges_seam_traffic_and_plans_in_parallel() {
        let mut fleet = seam_fleet();
        let router = IncrementalRouter::default();
        let report = fleet.route_windows_live(&router);
        assert_eq!(report.seam_messages, 1, "{report:?}");
        assert_eq!(report.seam_imports, 1, "{report:?}");
        // Shard 1 plans both its resident and the announced arrival;
        // shard 0's only resident is leaving, so it has no local goal.
        assert_eq!(report.solves, 1, "{report:?}");
        assert_eq!(report.skips, 0, "{report:?}");
        let stats = fleet.stats();
        assert_eq!(stats.live_windows, 1);
        assert_eq!(stats.seam_messages, 1);
        assert_eq!(stats.seam_imports, 1);
        assert_eq!(stats.local_solves, 1);
        // The window warmed shard 1's cache.
        assert!(fleet.cache_stats(1).misses > 0);
        // Re-planning the identical window warm-starts from the cache
        // and reports identically — the protocol is deterministic.
        let hits_before = fleet.cache_stats(1).hits;
        let again = fleet.route_windows_live(&router);
        assert_eq!(again, report);
        assert!(fleet.cache_stats(1).hits > hits_before);
    }

    #[test]
    fn live_planner_leaves_journals_untouched() {
        let mut fleet = seam_fleet();
        let router = IncrementalRouter::default();
        let serial_lengths: Vec<usize> = {
            let mut serial = seam_fleet();
            serial.route_windows(&router);
            serial
                .into_outcome()
                .journals
                .iter()
                .map(Journal::len)
                .collect()
        };
        fleet.route_windows_live(&router);
        let live_lengths: Vec<usize> = fleet
            .into_outcome()
            .journals
            .iter()
            .map(Journal::len)
            .collect();
        assert_eq!(live_lengths, serial_lengths, "planning never journals");
    }

    #[test]
    fn live_planner_on_a_single_shard_degenerates_to_the_serial_window() {
        let dims = GridDims::square(16);
        let mut fleet = ShardedState::new(FleetTopology::new(dims, 2, 1, 1));
        fleet.mirror_place(ParticleId(9), GridCoord::new(2, 2));
        fleet.begin_transfers(&[(ParticleId(9), GridCoord::new(2, 2), GridCoord::new(9, 9))]);
        let report = fleet.route_windows_live(&IncrementalRouter::default());
        assert_eq!(report.seam_messages, 0);
        assert_eq!(report.seam_imports, 0);
        assert_eq!(report.solves, 1);
    }

    #[test]
    fn route_windows_exercises_the_per_shard_caches() {
        let dims = GridDims::square(24);
        let topo = FleetTopology::new(dims, 2, 2, 1);
        let mut fleet = ShardedState::new(topo);
        fleet.mirror_place(ParticleId(1), GridCoord::new(2, 10));
        fleet.mirror_place(ParticleId(2), GridCoord::new(20, 10));
        fleet.begin_transfers(&[(ParticleId(1), GridCoord::new(2, 10), GridCoord::new(6, 10))]);
        let router = IncrementalRouter::default();
        fleet.route_windows(&router);
        assert_eq!(fleet.stats().local_solves, 1, "only shard 0 has a goal");
        let stats = fleet.cache_stats(0);
        assert!(stats.misses > 0);
        // The same declared window warm-starts from the shard cache.
        fleet.route_windows(&router);
        assert!(fleet.cache_stats(0).hits > stats.hits);
        fleet.barrier();
        assert_eq!(fleet.stats().barriers, 1);
    }
}
