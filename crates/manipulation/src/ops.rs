//! High-level manipulation operations.
//!
//! The [`Manipulator`] owns a [`CageGrid`] and executes operations on it:
//! moving a particle to a target cage, merging two particles into one cage
//! (e.g. forcing cell–cell or cell–bead contact), isolating a particle away
//! from a crowd, parking groups, and washing (moving every non-target
//! particle to a disposal edge). Every operation is executed step by step
//! through the conflict rules of the grid, and the resulting timeline of
//! patterns is what the actuation array ultimately plays back.

use crate::cage::{CageGrid, ParticleId};
use crate::error::ManipulationError;
use crate::routing::{Router, RoutingProblem, RoutingRequest, RoutingStrategy};
use labchip_array::pattern::CagePattern;
use labchip_units::{GridCoord, GridDims, Meters, MetersPerSecond, Seconds};
use serde::{Deserialize, Serialize};

/// Result of executing one operation: the per-step cage patterns and summary
/// figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationReport {
    /// Cage pattern to program at each step (one entry per cage step,
    /// including the final state).
    pub frames: Vec<CagePattern>,
    /// Number of cage steps the operation took.
    pub steps: usize,
    /// Total individual cage moves across all particles.
    pub moves: usize,
    /// Wall-clock duration at the configured cage-step period.
    pub duration: Seconds,
}

/// Executes high-level operations on a cage grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manipulator {
    grid: CageGrid,
    router: Router,
    /// Electrode pitch (used to convert steps into travel distance).
    pub pitch: Meters,
    /// Speed at which a cell reliably follows its cage.
    pub cell_speed: MetersPerSecond,
}

impl Manipulator {
    /// Creates a manipulator over an empty grid with the DATE'05 reference
    /// geometry (20 µm pitch) and a 50 µm/s cell-following speed.
    pub fn new(dims: GridDims) -> Self {
        Self {
            grid: CageGrid::new(dims),
            router: Router::new(RoutingStrategy::PrioritizedAStar),
            pitch: Meters::from_micrometers(20.0),
            cell_speed: MetersPerSecond::from_micrometers_per_second(50.0),
        }
    }

    /// Replaces the routing strategy.
    pub fn set_strategy(&mut self, strategy: RoutingStrategy) {
        self.router = Router::new(strategy);
    }

    /// Read access to the cage grid.
    pub fn grid(&self) -> &CageGrid {
        &self.grid
    }

    /// Mutable access to the cage grid (loading samples, manual placement).
    pub fn grid_mut(&mut self) -> &mut CageGrid {
        &mut self.grid
    }

    /// Duration of one cage step at the configured speed.
    pub fn step_period(&self) -> Seconds {
        self.pitch / self.cell_speed
    }

    /// Routes a set of particles to target cages simultaneously and applies
    /// the motion to the grid.
    ///
    /// # Errors
    ///
    /// Returns [`ManipulationError::RoutingFailed`] when any particle cannot
    /// be routed; the grid is left unchanged in that case.
    pub fn move_group(
        &mut self,
        targets: &[(ParticleId, GridCoord)],
    ) -> Result<OperationReport, ManipulationError> {
        let mut requests = Vec::with_capacity(targets.len());
        for (id, goal) in targets {
            requests.push(RoutingRequest {
                id: *id,
                start: self.grid.position(*id)?,
                goal: *goal,
            });
        }
        // Particles that are not being moved are static obstacles: model them
        // as zero-length requests so the router keeps everyone apart.
        for (id, pos) in self.grid.iter_particles() {
            if !targets.iter().any(|(t, _)| *t == id) {
                requests.push(RoutingRequest {
                    id,
                    start: pos,
                    goal: pos,
                });
            }
        }

        let mut problem = RoutingProblem::new(self.grid.dims(), requests);
        problem.min_separation = self.grid.min_separation();
        let outcome = self.router.solve(&problem)?;

        let moved_ids: Vec<ParticleId> = targets.iter().map(|(id, _)| *id).collect();
        let failed: Vec<ParticleId> = moved_ids
            .iter()
            .copied()
            .filter(|id| !outcome.paths.iter().any(|p| p.id == *id))
            .collect();
        if !failed.is_empty() {
            return Err(ManipulationError::RoutingFailed {
                unrouted: failed.len(),
                reason: format!("could not route particles {failed:?}"),
            });
        }

        // Play the paths back onto the grid, recording one pattern per step.
        // Every step is applied synchronously, as the hardware does when it
        // reprograms the whole electrode pattern in one frame.
        let mut frames = Vec::with_capacity(outcome.makespan + 1);
        frames.push(self.grid.to_pattern());
        for t in 1..=outcome.makespan {
            let mut moves = Vec::new();
            for path in &outcome.paths {
                let next = path.position_at(t);
                let current = self.grid.position(path.id)?;
                if next != current {
                    moves.push((path.id, next));
                }
            }
            self.grid.apply_step(&moves)?;
            frames.push(self.grid.to_pattern());
        }

        Ok(OperationReport {
            steps: outcome.makespan,
            moves: outcome.total_moves,
            duration: self.step_period() * outcome.makespan as f64,
            frames,
        })
    }

    /// Moves a single particle to a target cage.
    ///
    /// # Errors
    ///
    /// See [`Manipulator::move_group`].
    pub fn move_particle(
        &mut self,
        id: ParticleId,
        goal: GridCoord,
    ) -> Result<OperationReport, ManipulationError> {
        self.move_group(&[(id, goal)])
    }

    /// Brings `a` and `b` into the same cage (cell–cell contact): `b` is
    /// routed to a cage adjacent to `a`, then the two cages are merged by
    /// placing `b` on top of `a`'s electrode. After the merge both ids map to
    /// the same position.
    ///
    /// # Errors
    ///
    /// See [`Manipulator::move_group`]; additionally fails if no approach
    /// cage adjacent to `a` is available.
    pub fn merge(
        &mut self,
        a: ParticleId,
        b: ParticleId,
    ) -> Result<OperationReport, ManipulationError> {
        let target = self.grid.position(a)?;
        let sep = self.grid.min_separation();
        // Find an approach cage exactly `sep` away from `a` (the closest
        // allowed position), preferring the direction `b` is coming from.
        let from = self.grid.position(b)?;
        let mut candidates: Vec<GridCoord> = self
            .grid
            .dims()
            .iter()
            .filter(|c| target.chebyshev(*c) == sep && self.grid.is_free_for(*c, &[b]))
            .collect();
        candidates.sort_by_key(|c| c.manhattan(from));
        let approach =
            candidates
                .first()
                .copied()
                .ok_or_else(|| ManipulationError::SiteConflict {
                    coord: target,
                    reason: "no free approach cage around the merge target".into(),
                })?;

        let mut report = self.move_particle(b, approach)?;

        // Final merge: collapse the two cages into one. This intentionally
        // bypasses the separation rule — merging is the one operation that
        // wants the traps to coalesce — so the grid is updated by removing
        // and re-placing `b` at `a`'s electrode without the separation check.
        let merge_steps = approach.chebyshev(target) as usize;
        self.grid.place_merged(b, target);
        report.steps += merge_steps;
        report.moves += merge_steps;
        report.duration += self.step_period() * merge_steps as f64;
        report.frames.push(self.grid.to_pattern());
        Ok(report)
    }

    /// Moves `id` to the most isolated free cage along the array edge —
    /// used to separate a target cell from the crowd before recovery.
    ///
    /// # Errors
    ///
    /// See [`Manipulator::move_group`]; fails when no edge cage is free.
    pub fn isolate(&mut self, id: ParticleId) -> Result<OperationReport, ManipulationError> {
        let dims = self.grid.dims();
        let others: Vec<GridCoord> = self
            .grid
            .iter_particles()
            .filter(|(other, _)| *other != id)
            .map(|(_, pos)| pos)
            .collect();
        // Candidate edge cages, scored by distance to the nearest other
        // particle (larger is better).
        let mut best: Option<(u32, GridCoord)> = None;
        for c in dims.iter() {
            let on_edge = c.x == 0 || c.y == 0 || c.x == dims.cols - 1 || c.y == dims.rows - 1;
            if !on_edge || !self.grid.is_free_for(c, &[id]) {
                continue;
            }
            let clearance = others
                .iter()
                .map(|o| o.chebyshev(c))
                .min()
                .unwrap_or(u32::MAX);
            if best.is_none_or(|(b, _)| clearance > b) {
                best = Some((clearance, c));
            }
        }
        let (_, target) = best.ok_or(ManipulationError::SiteConflict {
            coord: GridCoord::new(0, 0),
            reason: "no free edge cage available for isolation".into(),
        })?;
        self.move_particle(id, target)
    }

    /// Moves every particle *except* the listed targets to the rightmost
    /// column region (the waste side), emptying the working area.
    ///
    /// # Errors
    ///
    /// See [`Manipulator::move_group`].
    pub fn wash_except(
        &mut self,
        keep: &[ParticleId],
    ) -> Result<OperationReport, ManipulationError> {
        let dims = self.grid.dims();
        let sep = self.grid.min_separation();
        let discard: Vec<ParticleId> = self
            .grid
            .iter_particles()
            .map(|(id, _)| id)
            .filter(|id| !keep.contains(id))
            .collect();
        // Assign waste slots along the right edge, spaced by the separation.
        let mut targets = Vec::new();
        for (slot_index, id) in discard.iter().enumerate() {
            let slot_index = slot_index as u32;
            let column = dims.cols - 1 - (slot_index / (dims.rows / sep)) * sep;
            let row = (slot_index % (dims.rows / sep)) * sep;
            targets.push((*id, GridCoord::new(column, row)));
        }
        if targets.is_empty() {
            return Ok(OperationReport {
                frames: vec![self.grid.to_pattern()],
                steps: 0,
                moves: 0,
                duration: Seconds::ZERO,
            });
        }
        self.move_group(&targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manipulator_with(particles: &[(u64, (u32, u32))]) -> Manipulator {
        let mut m = Manipulator::new(GridDims::square(24));
        for (id, (x, y)) in particles {
            m.grid_mut()
                .place(ParticleId(*id), GridCoord::new(*x, *y))
                .unwrap();
        }
        m
    }

    #[test]
    fn move_particle_produces_one_frame_per_step() {
        let mut m = manipulator_with(&[(1, (2, 2))]);
        let report = m
            .move_particle(ParticleId(1), GridCoord::new(10, 2))
            .unwrap();
        assert_eq!(report.steps, 8);
        assert_eq!(report.frames.len(), report.steps + 1);
        assert_eq!(
            m.grid().position(ParticleId(1)).unwrap(),
            GridCoord::new(10, 2)
        );
        // At 50 µm/s and 20 µm pitch a step takes 0.4 s.
        assert!((report.duration.get() - 8.0 * 0.4).abs() < 1e-9);
    }

    #[test]
    fn move_group_keeps_everyone_apart() {
        let mut m = manipulator_with(&[(1, (2, 2)), (2, (2, 10)), (3, (20, 6))]);
        let report = m
            .move_group(&[
                (ParticleId(1), GridCoord::new(18, 2)),
                (ParticleId(2), GridCoord::new(18, 10)),
            ])
            .unwrap();
        assert!(report.steps >= 16);
        assert_eq!(
            m.grid().position(ParticleId(1)).unwrap(),
            GridCoord::new(18, 2)
        );
        assert_eq!(
            m.grid().position(ParticleId(3)).unwrap(),
            GridCoord::new(20, 6),
            "unmoved particles stay put"
        );
    }

    #[test]
    fn merge_brings_particles_into_one_cage() {
        let mut m = manipulator_with(&[(1, (10, 10)), (2, (3, 10))]);
        let report = m.merge(ParticleId(1), ParticleId(2)).unwrap();
        assert!(report.steps > 0);
        let a = m.grid().position(ParticleId(1)).unwrap();
        let b = m.grid().position(ParticleId(2)).unwrap();
        assert_eq!(a, b, "after merging both particles share a cage");
        assert_eq!(a, GridCoord::new(10, 10));
    }

    #[test]
    fn isolate_moves_particle_to_a_clear_edge() {
        let mut m = manipulator_with(&[(1, (10, 10)), (2, (12, 10)), (3, (10, 12))]);
        let report = m.isolate(ParticleId(1)).unwrap();
        assert!(report.steps > 0);
        let pos = m.grid().position(ParticleId(1)).unwrap();
        let dims = m.grid().dims();
        assert!(
            pos.x == 0 || pos.y == 0 || pos.x == dims.cols - 1 || pos.y == dims.rows - 1,
            "isolated particle should sit on the array edge, got {pos}"
        );
        // And it should now be far from the others.
        for other in [ParticleId(2), ParticleId(3)] {
            let d = m.grid().position(other).unwrap().chebyshev(pos);
            assert!(d >= 5, "isolation left particles only {d} cages apart");
        }
    }

    #[test]
    fn wash_except_clears_everything_but_the_target() {
        let mut m = manipulator_with(&[(1, (10, 10)), (2, (6, 6)), (3, (14, 14))]);
        let report = m.wash_except(&[ParticleId(1)]).unwrap();
        assert!(report.steps > 0);
        assert_eq!(
            m.grid().position(ParticleId(1)).unwrap(),
            GridCoord::new(10, 10),
            "the kept particle does not move"
        );
        let dims = m.grid().dims();
        for id in [ParticleId(2), ParticleId(3)] {
            let pos = m.grid().position(id).unwrap();
            assert!(
                pos.x >= dims.cols - 1 - m.grid().min_separation(),
                "washed particle {id:?} should be near the waste edge, got {pos}"
            );
        }
        // Washing with nothing to wash is a no-op.
        let mut only_one = manipulator_with(&[(9, (5, 5))]);
        let noop = only_one.wash_except(&[ParticleId(9)]).unwrap();
        assert_eq!(noop.steps, 0);
    }

    #[test]
    fn moving_an_unknown_particle_fails() {
        let mut m = manipulator_with(&[(1, (2, 2))]);
        assert!(m
            .move_particle(ParticleId(99), GridCoord::new(5, 5))
            .is_err());
    }

    #[test]
    fn step_period_follows_speed() {
        let mut m = manipulator_with(&[]);
        assert!((m.step_period().get() - 0.4).abs() < 1e-9);
        m.cell_speed = MetersPerSecond::from_micrometers_per_second(100.0);
        assert!((m.step_period().get() - 0.2).abs() < 1e-9);
    }
}
