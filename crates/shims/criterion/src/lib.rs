//! Workspace-local stand-in for
//! [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal shims for its external dependencies. This
//! one is a genuine (if statistically simpler) wall-clock benchmark harness:
//! each benchmark is warmed up, then timed in adaptive batches until the
//! group's measurement time is spent, and the median batch ns/iter is
//! reported on stdout as
//!
//! ```text
//! group/function/param    median 123.4 ns/iter  (n batches)
//! ```
//!
//! Set the `CRITERION_SHIM_JSON` environment variable to a file path to
//! additionally append one JSON line per benchmark (`{"id": ..,
//! "ns_per_iter": ..}`) — the workspace's `BENCH_fields.json` generator uses
//! this hook.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::io::Write;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for API parity.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Measurement backends (API parity; the shim always measures wall time).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id carrying only a parameter (the group name provides the
    /// context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.function.is_empty(), self.parameter.is_empty()) {
            (false, true) => write!(f, "{}", self.function),
            (true, false) => write!(f, "{}", self.parameter),
            _ => write!(f, "{}/{}", self.function, self.parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: function.into(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: String::new(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    /// Filled in by [`Bencher::iter`].
    result_ns: Option<f64>,
    batches: usize,
}

impl Bencher {
    /// Times `routine`, adaptively batching calls until the measurement
    /// budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + batch-size calibration: grow the batch until it costs at
        // least ~1 ms, so Instant overhead is negligible.
        let mut batch: u64 = 1;
        let calibration_deadline = Instant::now() + self.measurement_time / 10;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || Instant::now() >= calibration_deadline {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let deadline = Instant::now() + self.measurement_time;
        let mut samples: Vec<f64> = Vec::new();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline && !samples.is_empty() {
                break;
            }
            if samples.len() >= 5_000 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.batches = samples.len();
        self.result_ns = Some(samples[samples.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API parity; the shim's batching is adaptive, so the
    /// requested sample count is not used directly.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity (no-op).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result_ns: None,
            batches: 0,
        };
        f(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        match bencher.result_ns {
            Some(ns) => {
                println!(
                    "{full_id:<56} median {ns:>12.1} ns/iter  ({} batches)",
                    bencher.batches
                );
                self.criterion.record(&full_id, ns);
            }
            None => println!("{full_id:<56} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Benchmarks a routine with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().to_string();
        self.run_one(id, |b| f(b));
    }

    /// Benchmarks a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.to_string(), |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point: collects and reports benchmarks.
pub struct Criterion {
    json_sink: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            json_sink: std::env::var_os("CRITERION_SHIM_JSON").map(Into::into),
        }
    }
}

impl Criterion {
    /// Accepted for API parity; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(2),
            _measurement: PhantomData,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group("");
        let mut bencher = Bencher {
            measurement_time: group.measurement_time,
            result_ns: None,
            batches: 0,
        };
        f(&mut bencher);
        if let Some(ns) = bencher.result_ns {
            println!(
                "{id:<56} median {ns:>12.1} ns/iter  ({} batches)",
                bencher.batches
            );
            group.criterion.record(id, ns);
        }
    }

    fn record(&mut self, id: &str, ns: f64) {
        if let Some(path) = &self.json_sink {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(file, "{{\"id\": \"{id}\", \"ns_per_iter\": {ns:.2}}}");
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.measurement_time(Duration::from_millis(50));
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_measures_something() {
        sample_bench(&mut Criterion::default());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 320).to_string(), "f/320");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
