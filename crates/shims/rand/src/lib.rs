//! Workspace-local stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing the API subset the labchip workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal, API-compatible shims for its external
//! dependencies. This one provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()` (and the other primitive
//!   types) via the [`distributions::Standard`] distribution,
//! * [`SeedableRng`] with the SplitMix64-based `seed_from_u64` (same
//!   construction the real crate documents),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The shim is deterministic and dependency-free; swapping the real crate
//! back in only requires restoring the registry dependency in the manifests.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (`f64`/`f32` uniform in `[0, 1)`, integers uniform over
    /// their full range, `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from a half-open range.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same construction the real `rand` crate documents.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (public so sibling shims and the
/// simulator's per-particle stream derivation can reuse it).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard distributions for primitive types.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The canonical distribution: uniform `[0, 1)` for floats, full range
    /// for integers, fair for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, as the real crate does.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform-range sampling support.
    pub mod uniform {
        use super::super::RngCore;

        /// A range that can produce uniformly distributed samples.
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + u * (self.end - self.start)
            }
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let span = (self.end as i128 - self.start as i128) as u128;
                        assert!(span > 0, "cannot sample from an empty range");
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleRange;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 = self.0.wrapping_add(1);
            splitmix64(&mut s)
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(11);
        for _ in 0..200 {
            let x = (5u32..9).sample_single(&mut rng);
            assert!((5..9).contains(&x));
            let y = (-3i32..4).sample_single(&mut rng);
            assert!((-3..4).contains(&y));
        }
    }
}
