//! Workspace-local stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal shims for its external dependencies. Unlike
//! the original marker-only shim, this version performs **real
//! serialisation**: [`Serialize`] renders any deriving type into a JSON-like
//! [`Value`] tree and [`Deserialize`] rebuilds the type from one. The
//! `serde_derive` shim generates genuine field-wise implementations, and the
//! `serde_json` shim supplies the text format (`to_string` / `from_str`) on
//! top of [`Value`].
//!
//! Differences from real serde, all confined to this shim:
//!
//! * there is no `Serializer`/`Deserializer` abstraction — the only data
//!   model is the [`Value`] tree (which `serde_json` re-exports as its
//!   `Value`, so downstream code reads exactly like code using the real
//!   crates);
//! * unknown object keys are ignored and missing fields are hard errors
//!   (real serde's default behaviour for plain derives);
//! * enums use serde's external tagging: unit variants serialise as strings,
//!   data variants as single-key objects.
//!
//! Restoring the real crates requires no source change in the substrate
//! crates: trait names, derive names and import paths match.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Error produced when a [`Value`] cannot be decoded into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message (mirrors `serde::de::Error`).
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A JSON number: a non-lossy union of the integer and float cases,
/// normalised so that non-negative integers always take the unsigned
/// representation (as in `serde_json`).
#[derive(Debug, Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Wraps a float. Non-finite values have no JSON representation and are
    /// rendered as `null` by the writer, as real `serde_json` does.
    pub fn from_f64(value: f64) -> Self {
        Self { n: N::Float(value) }
    }

    /// The value as an `f64` (integers convert losslessly up to 2⁵³).
    pub fn as_f64(&self) -> f64 {
        match self.n {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        }
    }

    /// The value as an `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            N::Float(_) => None,
        }
    }

    /// The value as a `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(v) => Some(v),
            N::NegInt(v) => u64::try_from(v).ok(),
            N::Float(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            N::Float(_) => None,
        }
    }

    /// Whether the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Self { n: N::PosInt(v) }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Self {
                n: N::PosInt(v as u64),
            }
        } else {
            Self { n: N::NegInt(v) }
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) if v.is_finite() => {
                // `{:?}` keeps a trailing `.0` on integral floats so the text
                // round-trips back to the float representation.
                write!(f, "{v:?}")
            }
            N::Float(_) => f.write_str("null"),
        }
    }
}

/// An insertion-ordered string-keyed map, the object half of [`Value`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing (in place) any previous value under it.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Removes a key, returning its value if it was present. Insertion order
    /// of the remaining entries is preserved.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let index = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(index).1)
    }

    /// Iterates entries mutably in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Values, mutably, in insertion order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Value> {
        self.entries.iter_mut().map(|(_, v)| v)
    }
}

/// A JSON-like value tree — the single data model of the shimmed serde
/// stack. The `serde_json` shim re-exports this as `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a mutable array, if it is one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object access.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
///
/// Real serde's `Serialize` takes a `Serializer`; the shim's single data
/// model makes the method signature simpler while keeping derive usage
/// source-identical.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize<'de>: Sized {
    /// Decodes a [`Value`] into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape or range does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Marker stand-in for `serde::de`, for completeness of common paths.
pub mod de {
    /// Stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive and container implementations
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", value.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", value.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, found {}", value.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a one-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "{n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected signed integer, found {}",
                        value.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "{n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const LEN: usize> Serialize for [T; LEN] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const LEN: usize> Deserialize<'de> for [T; LEN] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(value)?;
        let found = vec.len();
        vec.try_into()
            .map_err(|_| Error::custom(format!("expected array of {LEN} elements, found {found}")))
    }
}

/// Types usable as JSON object keys (strings on the wire). Mirrors
/// `serde_json`'s behaviour of stringifying integer map keys.
pub trait MapKey: Sized {
    /// Renders the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from an object-key string.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the string does not parse as this key type.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!(
                        "invalid {} map key `{key}`",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort keys so serialised output is deterministic regardless of
        // hash-map iteration order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k.to_key(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let object = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
        object
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.to_key(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let object = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
        object
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, found {}", value.kind()))
                })?;
                let arity = [$($idx),+].len();
                if arr.len() != arity {
                    return Err(Error::custom(format!(
                        "expected tuple of {arity} elements, found {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_normalise_and_round_trip() {
        assert_eq!(Number::from(5i64), Number::from(5u64));
        assert_eq!(
            u32::from_value(&Value::Number(Number::from(7u64))).unwrap(),
            7
        );
        assert!(u8::from_value(&Value::Number(Number::from(700u64))).is_err());
        assert_eq!(
            i64::from_value(&Value::Number(Number::from(-3i64))).unwrap(),
            -3
        );
        assert_eq!(
            f64::from_value(&Value::Number(Number::from(2u64))).unwrap(),
            2.0
        );
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut map = Map::new();
        map.insert("a", Value::Bool(true));
        map.insert("b", Value::Null);
        let old = map.insert("a", Value::Bool(false));
        assert_eq!(old, Some(Value::Bool(true)));
        assert_eq!(map.len(), 2);
        assert_eq!(map.keys().collect::<Vec<_>>(), ["a", "b"]);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, -2i64), (3, -4)];
        let value = v.to_value();
        let back: Vec<(u32, i64)> = Vec::from_value(&value).unwrap();
        assert_eq!(back, v);

        let opt: Option<String> = None;
        assert!(opt.to_value().is_null());
        let some: Option<String> = Option::from_value(&Value::String("x".into())).unwrap();
        assert_eq!(some.as_deref(), Some("x"));
    }

    #[test]
    fn float_display_keeps_fraction_marker() {
        assert_eq!(Number::from_f64(1.0).to_string(), "1.0");
        assert_eq!(Number::from_f64(0.5).to_string(), "0.5");
        assert_eq!(Number::from(3u64).to_string(), "3");
    }
}
