//! Workspace-local stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal shims for its external dependencies. The
//! labchip crates only *derive* `Serialize`/`Deserialize` (no serialisation
//! is performed anywhere — there is no `serde_json` or other format crate in
//! the tree), so the traits are empty markers and the derives emit empty
//! impls. Restoring the real crates requires no source change: the trait
//! names, derive names and import paths match.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de`, for completeness of common paths.
pub mod de {
    /// Stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}
