//! Workspace-local stand-in for the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate.
//!
//! Implements a genuine ChaCha8 keystream generator (Bernstein's ChaCha with
//! 8 rounds, 256-bit key, 64-bit block counter) behind the shim [`rand`]
//! traits. Output quality and determinism match the real construction; the
//! exact stream differs from the upstream crate (which is fine — nothing in
//! the workspace depends on the upstream byte stream, only on seeded
//! determinism).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha random generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

impl PartialEq for ChaCha8Rng {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && self.index == other.index
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round, then diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, st)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*st);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    /// Current 64-bit block counter (diagnostic; counts generated blocks).
    pub fn block_counter(&self) -> u64 {
        self.state[12] as u64 | ((self.state[13] as u64) << 32)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0u32; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_f64_mean_is_near_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u64();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
