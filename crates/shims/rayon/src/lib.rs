//! Workspace-local stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! Provides genuine multi-core data parallelism via `std::thread::scope`
//! for the API subset the labchip workspace uses:
//!
//! * `slice.par_iter_mut().for_each(..)` / `.enumerate().for_each(..)`
//! * `slice.par_chunks_mut(n).for_each(..)`
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to pin the worker count
//!   (the labchip simulator uses this for its thread-count determinism test)
//! * [`join`] and [`current_num_threads`]
//!
//! Work is split into contiguous chunks, one per worker, which is the right
//! shape for the embarrassingly parallel particle loops this workspace runs.
//! There is no work stealing; a chunk is processed sequentially on its
//! worker. The thread count comes from, in priority order: the innermost
//! [`ThreadPool::install`] scope, the `RAYON_NUM_THREADS` environment
//! variable, then `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::fmt;

thread_local! {
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations will use right now.
pub fn current_num_threads() -> usize {
    let overridden = POOL_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by the
/// shim; present for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that pins the worker count for operations run inside
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count in effect.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_OVERRIDE.with(|c| {
            let prev = c.get();
            c.set(if self.num_threads == 0 {
                prev
            } else {
                self.num_threads
            });
            prev
        });
        let result = f();
        POOL_OVERRIDE.with(|c| c.set(previous));
        result
    }

    /// The pinned thread count (0 = automatic).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim join worker panicked");
        (ra, rb)
    })
}

fn run_chunked<'a, T, F>(slice: &'a mut [T], base_offset: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &'a mut T) + Send + Sync,
{
    let len = slice.len();
    if len == 0 {
        return;
    }
    let workers = current_num_threads().min(len).max(1);
    if workers == 1 {
        for (i, item) in slice.iter_mut().enumerate() {
            f(base_offset + i, item);
        }
        return;
    }
    let chunk_len = len.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut start = base_offset;
        for chunk in slice.chunks_mut(chunk_len) {
            let offset = start;
            start += chunk.len();
            scope.spawn(move || {
                for (i, item) in chunk.iter_mut().enumerate() {
                    f(offset + i, item);
                }
            });
        }
    });
}

/// Parallel iterator over `&mut` slice elements.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

/// Parallel iterator over `(index, &mut element)` pairs.
pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

/// The subset of rayon's `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item produced by the iterator.
    type Item;

    /// Consumes the iterator, applying `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync;
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }
}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_chunked(self.slice, 0, &|_, item| f(item));
    }
}

impl<'a, T: Send> ParallelIterator for ParIterMutEnumerate<'a, T> {
    type Item = (usize, &'a mut T);

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_chunked(self.slice, 0, &|i, item| f((i, item)));
    }
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let chunk_size = self.chunk_size.max(1);
        let mut chunks: Vec<&'a mut [T]> = self.slice.chunks_mut(chunk_size).collect();
        run_chunked(&mut chunks, 0, &|_, chunk| {
            f(std::mem::take(chunk));
        });
    }
}

/// Conversion into a parallel iterator over `&mut` elements.
pub trait IntoParallelRefMutIterator<'a> {
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced.
    type Item;

    /// Creates the parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// Parallel chunking of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into mutable chunks of at most `chunk_size`, in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![0u64; 1000];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u64 * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_chunks_mut_partitions_exactly() {
        let mut v = vec![0u32; 103];
        v.par_chunks_mut(10).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }
}
