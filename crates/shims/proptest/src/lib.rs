//! Workspace-local stand-in for
//! [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal shims for its external dependencies. This
//! one is a small but real property-test runner:
//!
//! * the [`proptest!`] macro runs each property over `ProptestConfig::cases`
//!   deterministic pseudo-random cases (seeded per test name, so failures
//!   reproduce),
//! * range expressions (`0u32..40`, `-1e9f64..1e9`), [`strategy::Just`],
//!   tuples of strategies, `prop_oneof!` and `proptest::collection::vec` are
//!   supported as strategies,
//! * `prop_assert!` / `prop_assert_eq!` panic with context (no shrinking —
//!   the failing inputs are printed instead), and `prop_assume!` skips the
//!   case.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Test-runner plumbing: the deterministic per-test RNG.
pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies while generating cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) ChaCha8Rng);

    impl TestRng {
        /// Creates a generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(ChaCha8Rng::seed_from_u64(h))
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            RngCore::next_u64(&mut self.0)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runtime configuration of a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the offline test suite
            // quick while still exercising the properties broadly.
            Self { cases: 64 }
        }
    }
}

/// Strategies: how property inputs are generated.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "cannot sample from an empty range");
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );

    /// Uniformly picks among boxed alternative strategies (built by
    /// `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds from the alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!` to erase alternative types).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing fair random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `size` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runs each property in this block over many deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __inputs = format!(
                        concat!("case {}/{}: ", $(stringify!($arg), " = {:?} ",)*),
                        __case + 1, __config.cases $(, &$arg)*
                    );
                    let __run = || { $body };
                    $crate::__run_case(&__inputs, __run);
                }
            }
        )*
    };
}

/// Runs one generated case, decorating panics with the inputs that caused
/// them. Not part of the public API.
#[doc(hidden)]
pub fn __run_case<F: FnOnce()>(inputs: &str, f: F) {
    struct Bomb<'a>(&'a str);
    impl Drop for Bomb<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!("proptest case failed with inputs: {}", self.0);
            }
        }
    }
    let bomb = Bomb(inputs);
    f();
    std::mem::forget(bomb);
}

/// `assert!` for properties (panics; the runner prints the failing inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniformly picks one of several alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, OneOf, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x > 4);
            prop_assert!(x > 4);
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec(0usize..100, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn oneof_picks_from_alternatives(x in prop_oneof![Just(1u8), Just(3u8), Just(7u8)]) {
            prop_assert!(x == 1 || x == 3 || x == 7);
        }

        #[test]
        fn tuple_strategies_compose(t in (0u64..6, 0u32..16)) {
            prop_assert!(t.0 < 6 && t.1 < 16);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("foo");
        let mut b = crate::test_runner::TestRng::deterministic("foo");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
