//! Workspace-local stand-in for `serde_derive`.
//!
//! The shim `serde` crate defines `Serialize` and `Deserialize` as empty
//! marker traits, so the derives only need to find the item name and emit an
//! empty impl. The parser below handles the shapes that occur in this
//! workspace: non-generic `struct`s and `enum`s with any number of outer
//! attributes and doc comments. Generic items are rejected with a clear
//! error rather than silently mis-expanded.

use proc_macro::{TokenStream, TokenTree};

fn item_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Outer attribute: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => return Err(format!("expected item name, found {other:?}")),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return Err(format!(
                                "the workspace serde shim cannot derive for generic type `{name}`"
                            ));
                        }
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)` etc. — keep scanning.
            }
            _ => {}
        }
    }
    Err("no struct/enum found in derive input".into())
}

fn emit(input: TokenStream, make_impl: impl Fn(&str) -> String) -> TokenStream {
    match item_name(input) {
        Ok(name) => make_impl(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Derives the shim `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives the shim `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
