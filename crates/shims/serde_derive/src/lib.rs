//! Workspace-local stand-in for `serde_derive`.
//!
//! The shim `serde` crate serialises through a single JSON-like `Value` data
//! model, so the derives generate genuine field-wise implementations:
//! `Serialize::to_value` renders structs as objects (newtype structs
//! transparently, tuple structs as arrays) and enums with serde's external
//! tagging (unit variants as strings, data variants as single-key objects);
//! `Deserialize::from_value` rebuilds the type, erroring on missing fields,
//! wrong shapes and unknown variants while ignoring unknown object keys —
//! the behaviour of a plain real-serde derive.
//!
//! The hand-rolled token parser (no `syn` available offline) handles the
//! shapes that occur in this workspace: non-generic structs and enums with
//! any number of outer attributes, doc comments, `pub` visibility and
//! field-level attributes. Generic items are rejected with a clear error
//! rather than silently mis-expanded.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// One named field: its name, and whether its type is `Option<..>` (an
/// absent key deserialises to `None`, matching real serde derives).
struct NamedField {
    name: String,
    optional: bool,
}

/// The field layout of a struct or of one enum variant.
enum FieldsShape {
    /// `struct Foo;` or a bare enum variant.
    Unit,
    /// Named fields: `{ a: T, b: U }`.
    Named(Vec<NamedField>),
    /// Tuple fields: `(T, U)` — only the arity matters for codegen.
    Tuple(usize),
}

struct VariantShape {
    name: String,
    fields: FieldsShape,
}

enum ItemShape {
    Struct {
        name: String,
        fields: FieldsShape,
    },
    Enum {
        name: String,
        variants: Vec<VariantShape>,
    },
}

/// Consumes one `#[...]` (or `#![...]`) attribute if the iterator is at one.
fn skip_attributes(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            return;
        }
        tokens.next();
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '!' {
                tokens.next();
            }
        }
        // The bracketed attribute body.
        tokens.next();
    }
}

/// Consumes a `pub` / `pub(crate)` / `pub(in ...)` visibility if present.
fn skip_visibility(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consumes type tokens until a top-level `,` (which is also consumed) or
/// the end of the stream. Angle brackets are depth-tracked; the `>` of a
/// `->` is not a closing bracket.
fn skip_type(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while let Some(tt) = tokens.peek() {
        if let TokenTree::Punct(p) = tt {
            let c = p.as_char();
            if c == ',' && angle_depth == 0 {
                tokens.next();
                return;
            }
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' && !prev_dash {
                angle_depth -= 1;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        tokens.next();
    }
}

/// Parses `{ a: T, b: U, .. }` field names, noting `Option<..>` types.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<NamedField>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(name)) => {
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field name, found {other:?}")),
                }
                let optional = matches!(
                    tokens.peek(),
                    Some(TokenTree::Ident(head)) if head.to_string() == "Option"
                );
                fields.push(NamedField {
                    name: name.to_string(),
                    optional,
                });
                skip_type(&mut tokens);
            }
            None => return Ok(fields),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type(&mut tokens);
    }
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Result<Vec<VariantShape>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            None => return Ok(variants),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                FieldsShape::Named(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                FieldsShape::Tuple(count_tuple_fields(inner))
            }
            _ => FieldsShape::Unit,
        };
        variants.push(VariantShape { name, fields });
        // Consume anything up to the variant separator (covers explicit
        // discriminants, which do not occur here but cost nothing to allow).
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<ItemShape, String> {
    let mut tokens = input.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word != "struct" && word != "enum" {
                    // `pub`, `pub(crate)` etc. — keep scanning.
                    continue;
                }
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected item name, found {other:?}")),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "the workspace serde shim cannot derive for generic type `{name}`"
                        ));
                    }
                }
                if word == "enum" {
                    let body = match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            g.stream()
                        }
                        other => return Err(format!("expected enum body, found {other:?}")),
                    };
                    return Ok(ItemShape::Enum {
                        name,
                        variants: parse_variants(body)?,
                    });
                }
                let fields = match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner = g.stream();
                        FieldsShape::Named(parse_named_fields(inner)?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        FieldsShape::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => FieldsShape::Unit,
                };
                return Ok(ItemShape::Struct { name, fields });
            }
            None => return Err("no struct/enum found in derive input".into()),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// `to_value` body for one set of fields, given an accessor prefix:
/// `&self.` for structs, plain bindings for enum variants.
fn serialize_named(fields: &[NamedField], accessor: impl Fn(&str) -> String) -> String {
    let mut code = String::from("{ let mut map = ::serde::Map::new();");
    for field in fields {
        let field = &field.name;
        code.push_str(&format!(
            "map.insert(\"{field}\", ::serde::Serialize::to_value({}));",
            accessor(field)
        ));
    }
    code.push_str("::serde::Value::Object(map) }");
    code
}

/// `from_value` field extraction for named fields out of a map binding. A
/// missing key is a hard error for plain fields and `None` for `Option`
/// fields — the behaviour of a plain real-serde derive.
fn deserialize_named(type_name: &str, fields: &[NamedField], map: &str) -> String {
    fields
        .iter()
        .map(|field| {
            let name = &field.name;
            if field.optional {
                format!(
                    "{name}: ::serde::Deserialize::from_value({map}.get(\"{name}\")\
                     .unwrap_or(&::serde::Value::Null))?,"
                )
            } else {
                format!(
                    "{name}: ::serde::Deserialize::from_value({map}.get(\"{name}\")\
                     .ok_or_else(|| ::serde::Error::custom(\
                     \"{type_name}: missing field `{name}`\"))?)?,"
                )
            }
        })
        .collect()
}

fn generate_serialize(item: &ItemShape) -> String {
    let (name, body) = match item {
        ItemShape::Struct { name, fields } => {
            let body = match fields {
                FieldsShape::Unit => "::serde::Value::Null".to_string(),
                FieldsShape::Named(fields) => serialize_named(fields, |f| format!("&self.{f}")),
                FieldsShape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                FieldsShape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            (name, body)
        }
        ItemShape::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.fields {
                    FieldsShape::Unit => {
                        arms.push_str(&format!(
                            "Self::{v} => ::serde::Value::String(String::from(\"{v}\")),"
                        ));
                    }
                    FieldsShape::Named(fields) => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner = serialize_named(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "Self::{v} {{ {bindings} }} => {{ \
                             let mut tagged = ::serde::Map::new(); \
                             tagged.insert(\"{v}\", {inner}); \
                             ::serde::Value::Object(tagged) }},"
                        ));
                    }
                    FieldsShape::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{v}({}) => {{ \
                             let mut tagged = ::serde::Map::new(); \
                             tagged.insert(\"{v}\", {inner}); \
                             ::serde::Value::Object(tagged) }},",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived] \
         impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn generate_deserialize(item: &ItemShape) -> String {
    let (name, body) = match item {
        ItemShape::Struct { name, fields } => {
            let body = match fields {
                FieldsShape::Unit => format!(
                    "if value.is_null() {{ ::core::result::Result::Ok(Self) }} else {{ \
                     ::core::result::Result::Err(::serde::Error::custom(\
                     \"{name}: expected null for unit struct\")) }}"
                ),
                FieldsShape::Named(fields) => {
                    let extract = deserialize_named(name, fields, "map");
                    format!(
                        "let map = value.as_object().ok_or_else(|| ::serde::Error::custom(\
                         \"{name}: expected object\"))?; \
                         ::core::result::Result::Ok(Self {{ {extract} }})"
                    )
                }
                FieldsShape::Tuple(1) => {
                    "::core::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))"
                        .to_string()
                }
                FieldsShape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "let arr = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                         \"{name}: expected array\"))?; \
                         if arr.len() != {n} {{ return ::core::result::Result::Err(\
                         ::serde::Error::custom(\"{name}: expected {n} elements\")); }} \
                         ::core::result::Result::Ok(Self({}))",
                        items.join(", ")
                    )
                }
            };
            (name, body)
        }
        ItemShape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.fields {
                    FieldsShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{v}\" => ::core::result::Result::Ok(Self::{v}),"
                        ));
                    }
                    FieldsShape::Named(fields) => {
                        let extract = deserialize_named(name, fields, "fields");
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ \
                             let fields = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{v}: expected object\"))?; \
                             ::core::result::Result::Ok(Self::{v} {{ {extract} }}) }},"
                        ));
                    }
                    FieldsShape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{v}\" => ::core::result::Result::Ok(Self::{v}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        ));
                    }
                    FieldsShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ \
                             let arr = inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{v}: expected array\"))?; \
                             if arr.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::Error::custom(\"{name}::{v}: expected {n} elements\")); }} \
                             ::core::result::Result::Ok(Self::{v}({})) }},",
                            items.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "match value {{ \
                 ::serde::Value::String(tag) => match tag.as_str() {{ \
                 {unit_arms} \
                 other => ::core::result::Result::Err(::serde::Error::custom(format!(\
                 \"{name}: unknown variant `{{other}}`\"))), }}, \
                 ::serde::Value::Object(map) if map.len() == 1 => {{ \
                 let (tag, inner) = map.iter().next().expect(\"map has one entry\"); \
                 match tag.as_str() {{ \
                 {data_arms} \
                 other => ::core::result::Result::Err(::serde::Error::custom(format!(\
                 \"{name}: unknown variant `{{other}}`\"))), }} }}, \
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"{name}: expected variant string or single-key object\")), }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] \
         impl<'de> ::serde::Deserialize<'de> for {name} {{ \
         fn from_value(value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

fn emit(input: TokenStream, generate: impl Fn(&ItemShape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Derives a field-wise `serde::Serialize` impl rendering into the shim's
/// `Value` data model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, generate_serialize)
}

/// Derives a field-wise `serde::Deserialize` impl rebuilding from the shim's
/// `Value` data model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, generate_deserialize)
}
