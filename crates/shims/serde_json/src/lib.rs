//! Workspace-local stand-in for
//! [`serde_json`](https://crates.io/crates/serde_json).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal shims for its external dependencies. The
//! shimmed serde stack serialises through a single JSON-like [`Value`] tree
//! (defined in the `serde` shim and re-exported here, where downstream code
//! expects to find it); this crate supplies the **text format**: a strict
//! JSON writer ([`to_string`], [`to_string_pretty`]) and a recursive-descent
//! parser ([`from_str`]), plus the [`to_value`] / [`from_value`] bridges.
//!
//! Supported JSON is the full standard grammar minus non-finite numbers
//! (serialised as `null`, exactly as real `serde_json` does) and `\u`
//! escapes for code points outside the BMP (surrogate pairs are decoded).

pub use serde::{Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

/// Error produced by parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self::new(err.to_string())
    }
}

/// Renders any serialisable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not match the type.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serialises a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serialises a value to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Parses JSON text into any deserialisable type (including [`Value`]
/// itself).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.consume_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x20 => return Err(Error::new("control character in string")),
                c if c < 0x80 => out.push(c as char),
                lead => {
                    // Multi-byte UTF-8: the lead byte fixes the sequence
                    // length, so only that window is decoded (the input came
                    // from a `&str`, the checks just guard the slicing).
                    let len = match lead {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 in string"));
                    }
                    let ch = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?
                        .chars()
                        .next()
                        .expect("non-empty by construction");
                    out.push(ch);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::from_f64(n)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "3", "-7", "2.5", "\"hi\""] {
            let value: Value = from_str(text).unwrap();
            assert_eq!(to_string(&value), text);
        }
    }

    #[test]
    fn nested_value_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":"x"}],"c":null,"d":{"e":true}}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(to_string(&value), text);
        // Pretty output parses back to the same tree.
        let reparsed: Value = from_str(&to_string_pretty(&value)).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quote\" back\\slash tab\t unicode \u{263A} control\u{0001}";
        let text = to_string(&String::from(original));
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let back: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(back, "\u{1F600}");
        // Raw multi-byte UTF-8 passes through unescaped too.
        let raw: String = from_str("\"\u{1F600}\"").unwrap();
        assert_eq!(raw, "\u{1F600}");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>(r#""\q""#).is_err());
    }

    #[test]
    fn optional_fields_default_to_none_like_real_serde() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Probe {
            a: u32,
            b: Option<f64>,
        }
        // An absent Option key decodes to None (real serde derive behaviour).
        let probe: Probe = from_str(r#"{"a":1}"#).unwrap();
        assert_eq!(probe, Probe { a: 1, b: None });
        // Plain fields still hard-error when absent.
        assert!(from_str::<Probe>(r#"{"b":2.0}"#).is_err());
        // Present values still decode and round-trip.
        let probe: Probe = from_str(r#"{"a":1,"b":2.5}"#).unwrap();
        assert_eq!(probe.b, Some(2.5));
        assert_eq!(to_string(&probe), r#"{"a":1,"b":2.5}"#);
    }

    #[test]
    fn typed_bridges_work() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, [1, 2, 3]);
        assert_eq!(to_string(&v), "[1,2,3]");
        assert!(from_str::<Vec<u32>>("[1,-2]").is_err());
    }
}
