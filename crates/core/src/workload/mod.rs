//! The batch workload driver: complete paper-style assays at full-array
//! scale, composed from data-driven phases.
//!
//! The scenario experiments up to E9 exercise one subsystem each; this
//! module drives the *assembled* pipeline the way the paper's §4 envisions
//! the chip being used — thousands of cells manipulated concurrently,
//! cycle after cycle. Since the ChipState/phase decomposition, a cycle is
//! not control flow but **data**:
//!
//! * [`ChipState`](labchip_manipulation::state::ChipState) owns the one
//!   copy of chip truth — the cage grid plus its cached, dirty-tracked
//!   derivations (electrode pattern, ground-truth occupancy), the plan map
//!   and the per-phase time ledger — shared by router, scanner and driver
//!   instead of each keeping a private copy stitched together by ad-hoc
//!   converters;
//! * the five [`phases`] — [`Load`](phases::Load), [`Route`](phases::Route)
//!   (with a pluggable [`RouteTarget`]),
//!   [`Sense`](phases::Sense), [`Recover`](phases::Recover) and
//!   [`Flush`](phases::Flush) — each implement
//!   [`AssayPhase`]: one reusable unit of chip work
//!   over the shared state;
//! * a [`Protocol`] is a serde-round-trippable ordered
//!   list of phase specs with per-phase knobs, executed by the thin
//!   [`ProtocolRunner`] — so arbitrary assays
//!   (multi-route merges, repeated sense rounds, wash-free cycles;
//!   scenario E13) compose from the same verified pieces.
//!
//! [`BatchDriver::run_cycle`] is literally the canned
//! `load → route(sort) → sense → recover → flush` protocol
//! ([`Protocol::canned_cycle`](protocol::Protocol::canned_cycle)). The
//! pipeline is **event-sourced**: every chip-state mutation is recorded as
//! a typed [`Event`](labchip_manipulation::journal::Event) in an
//! append-only [`Journal`](labchip_manipulation::journal::Journal) when
//! one is attached ([`ProtocolRunner::run_journaled`]), and
//! [`replay`](labchip_manipulation::journal::replay) of that journal
//! reconstructs the final [`ChipState`](labchip_manipulation::state::ChipState)
//! bit-for-bit — the equivalence oracle that retired the old monolithic
//! `legacy` baseline for good. A [`Checkpoint`] (state snapshot + journal
//! offset + cycle accumulators) lets [`ProtocolRunner::resume`] continue a
//! killed run to the same final state; scenario E14 sweeps seeded
//! [`FaultPlan`](labchip_manipulation::journal::FaultPlan) kill points to
//! prove it.
//!
//! Every cycle reports a [`CycleReport`] with a per-phase
//! [`TimeBreakdown`]; the running [`SustainedThroughput`] splits *chip time*
//! from *planner wall-clock* — the moves/sec figure of experiment E11.
//!
//! ## The sense phase is not an oracle
//!
//! The sense phase goes through [`ArrayScanner`]: what the driver reports —
//! and what the recovery loop acts on — is the classifier's decision per
//! site, with real false positives and false negatives at the configured
//! [`WorkloadConfig::noise_scale`]. A zero noise scale reproduces the
//! oracle numbers bit-for-bit (locked in by tests); scenario E12 sweeps the
//! knob and closes the loop with recovery.

mod envelope;
pub mod phases;
pub mod protocol;

pub use envelope::ForceEnvelope;
pub use phases::{
    AssayPhase, CtxSnapshot, PhaseCtx, PhaseError, PhaseReport, RouteTarget, StateView,
};
pub use protocol::{
    Checkpoint, InterruptedRun, NeverStop, PhaseSpec, Protocol, ProtocolOutcome, ProtocolRunner,
    RunControl, StopCause, StoppedRun,
};

use labchip_array::addressing::ProgrammingInterface;
use labchip_array::timing::WindowBudget;
use labchip_manipulation::cage::ParticleId;
use labchip_manipulation::metrics::SustainedThroughput;
use labchip_manipulation::protocol::TimeBreakdown;
use labchip_manipulation::routing::{RoutingOutcome, RoutingProblem};
use labchip_manipulation::sharding::{CacheStats, IncrementalRouter, RouterCache, ShardConfig};
use labchip_sensing::array_scan::ArrayScanner;
use labchip_sensing::detect::DetectionStats;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridDims, Seconds};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// The bounded closed-loop recovery policy: what the driver does when the
/// detected occupancy disagrees with the plan.
///
/// Each round re-scans every suspect site with
/// `detection_frames × rescan_factor` frames (detection errors mostly
/// dissolve under the extra averaging), then pairs each *confirmed* stray —
/// a detected particle off the plan — with the nearest unfilled plan slot
/// and re-routes it there with the incremental router. `max_rounds == 0`
/// disables recovery (the pre-closed-loop behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Maximum sense→decide→act rounds per cycle (0 disables recovery).
    pub max_rounds: u32,
    /// Suspect sites are re-scanned with `detection_frames × rescan_factor`
    /// frames (clamped to at least 1×).
    pub rescan_factor: u32,
}

impl RecoveryPolicy {
    /// Recovery off: detection mismatches are reported but not acted on.
    pub fn disabled() -> Self {
        Self {
            max_rounds: 0,
            rescan_factor: 4,
        }
    }

    /// The reference closed-loop policy: two rounds, 4× re-scan averaging.
    pub fn date05_reference() -> Self {
        Self {
            max_rounds: 2,
            rescan_factor: 4,
        }
    }

    /// Whether recovery runs at all.
    pub fn is_enabled(&self) -> bool {
        self.max_rounds > 0
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        // Off by default: the closed loop is opt-in so the long-standing
        // E10/E11 baseline numbers stay untouched; E12 turns it on.
        Self::disabled()
    }
}

/// Configuration of the batch workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Sharding/windowing of the incremental router.
    pub shards: ShardConfig,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Scale applied to every sensor noise term (1 = the reference channel,
    /// 0 = ideal electronics; the detected map then equals truth exactly).
    pub noise_scale: f64,
    /// Closed-loop recovery policy for detection/plan mismatches.
    pub recovery: RecoveryPolicy,
    /// Fluidic handling time to load one batch.
    pub load_time: Seconds,
    /// Fluidic handling time to flush one batch.
    pub flush_time: Seconds,
    /// Base RNG seed for batch placement.
    pub seed: u64,
    /// Route phases through the driver's warm-start
    /// [`RouterCache`]:
    /// per-shard window plans are memoized across solves and invalidated
    /// from the chip state's dirty regions. Outcomes are bit-identical
    /// either way; this knob only trades memory for planning time.
    pub reuse_plans: bool,
    /// Plan sharded-run windows with the live parallel per-shard planner
    /// ([`LiveFleetPlanner`](labchip_manipulation::fleet::LiveFleetPlanner)):
    /// one worker thread per shard, seam traffic exchanged over typed
    /// handoff channels. Only affects runs with a sharded
    /// [`StateView`](phases::StateView); the global journal is
    /// byte-identical either way — this knob trades threads for
    /// window-planning wall clock.
    pub live_planning: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            array_side: 128,
            shards: ShardConfig::default(),
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 16,
            noise_scale: 1.0,
            recovery: RecoveryPolicy::disabled(),
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            seed: 2005,
            reuse_plans: false,
            live_planning: false,
        }
    }
}

/// The record of one load→route→sense→flush cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Particles loaded.
    pub requested: usize,
    /// Particles routed to their target slots.
    pub routed: usize,
    /// Steps until the last routed particle arrived.
    pub makespan_steps: usize,
    /// Individual cage moves across the batch.
    pub total_moves: usize,
    /// Planner wall-clock.
    pub planning: Seconds,
    /// Simulated chip time by phase.
    pub time: TimeBreakdown,
    /// Planned moves checked against the force envelope.
    pub moves_checked: usize,
    /// Moves the envelope rejected (0 for a feasible step period).
    pub infeasible_moves: usize,
    /// Occupied cages the detection scan *decided* it saw after routing —
    /// the classifier's count, not the ground truth.
    pub occupancy_detected: usize,
    /// Confusion counts of the full-array detection scan against truth.
    pub detection: DetectionStats,
    /// Sites where the initial scan disagreed with the planned pattern.
    pub mismatches_initial: usize,
    /// Sites where the final detected map still disagrees with the plan
    /// after recovery (equals `mismatches_initial` when recovery is off).
    pub mismatches_final: usize,
    /// Sites where the *true* occupancy disagrees with the plan at cycle
    /// end — the ground-truth placement error the assay actually suffers.
    pub true_mismatches_final: usize,
    /// Recovery rounds executed.
    pub recovery_rounds: usize,
    /// Corrective cage moves commanded by the recovery loop.
    pub recovery_moves: usize,
    /// Programming-clock budget of the executed motion.
    pub budget: WindowBudget,
    /// Whether the plan passed the separation invariant.
    pub conflict_free: bool,
}

impl CycleReport {
    /// Fraction of the batch routed.
    pub fn success_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.routed as f64 / self.requested as f64
        }
    }

    /// Observed per-site detection error rate of the full-array scan.
    pub fn detection_error_rate(&self) -> f64 {
        self.detection.error_rate()
    }
}

/// Generates the full-array sort workload: particles start on a seeded
/// random subset of a whole-array loading lattice (spacing
/// `min_separation + 1`, the densest loadable packing) and are sorted into
/// two target patterns — even-indexed particles to a lattice in the left
/// third, odd-indexed to the right third. Target lattices use spacing
/// `min_separation + 2`, which keeps them *traversable while occupied*, so
/// any arrival order works.
///
/// Built from the same primitives the [`phases`] use
/// ([`phases::loading_sites`] + the sort-goal assignment of
/// [`RouteTarget::SortSplit`]), so seeded problems are bit-identical to
/// what the canned protocol generates.
pub fn sort_problem(
    dims: GridDims,
    particles: usize,
    min_separation: u32,
    seed: u64,
) -> RoutingProblem {
    let (left, right) = phases::sort_lattices(dims, min_separation);
    let starts = phases::loading_sites(
        dims,
        particles,
        min_separation,
        seed,
        Some(left.len() + right.len()),
    );
    let indexed: Vec<(ParticleId, labchip_units::GridCoord)> = starts
        .iter()
        .enumerate()
        .map(|(i, start)| (ParticleId(i as u64), *start))
        .collect();
    let requests = phases::assign_sort_goals(&indexed, &left, &right);
    let mut problem = RoutingProblem::new(dims, requests);
    problem.min_separation = min_separation;
    problem
}

/// Executes repeated full-array assay protocols and accumulates throughput.
#[derive(Debug)]
pub struct BatchDriver {
    config: WorkloadConfig,
    envelope: ForceEnvelope,
    router: IncrementalRouter,
    programming: ProgrammingInterface,
    scan: ScanTiming,
    scanner: ArrayScanner,
    totals: SustainedThroughput,
    cycles_run: usize,
    /// Warm-start plan cache shared across this driver's cycles; consulted
    /// only when [`WorkloadConfig::reuse_plans`] is set. Behind a mutex so
    /// the borrowed [`ProtocolRunner`] stays `Copy + Sync`.
    route_cache: Mutex<RouterCache>,
}

/// Stream-salt separating the sensor synthesis from batch placement.
const SCANNER_SEED_SALT: u64 = 0x5EE5_0A11_D07E_C70F;

impl BatchDriver {
    /// Creates a driver; the force envelope is derived once from the cached
    /// field engine.
    pub fn new(config: WorkloadConfig) -> Self {
        Self::with_envelope(config, ForceEnvelope::date05_reference())
    }

    /// Creates a driver reusing an already-derived force envelope — sweeps
    /// that build many drivers (E12 runs one per sweep point) share the
    /// cached-field-engine probe instead of repeating it.
    pub fn with_envelope(mut config: WorkloadConfig, envelope: ForceEnvelope) -> Self {
        // Sanitize the CLI-reachable sensing knobs the way the runner
        // clamps `min_separation`: a `--set` override should degrade, not
        // panic deep in the sensing stack. NaN noise clamps to ideal
        // electronics, infinity to a saturating (coin-flip) channel, and a
        // zero frame count reads one frame.
        config.noise_scale = if config.noise_scale.is_nan() {
            0.0
        } else {
            config.noise_scale.clamp(0.0, 1e12)
        };
        config.detection_frames = config.detection_frames.max(1);
        Self {
            envelope,
            router: IncrementalRouter::new(config.shards),
            programming: ProgrammingInterface::date05_reference(),
            scan: ScanTiming::date05_reference(),
            scanner: ArrayScanner::date05_reference(
                GridDims::square(config.array_side),
                config.noise_scale,
                config.seed ^ SCANNER_SEED_SALT,
            ),
            totals: SustainedThroughput::default(),
            cycles_run: 0,
            route_cache: Mutex::new(RouterCache::new()),
            config,
        }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The force-feasibility envelope in effect.
    pub fn envelope(&self) -> &ForceEnvelope {
        &self.envelope
    }

    /// Running totals across the cycles executed so far.
    pub fn totals(&self) -> &SustainedThroughput {
        &self.totals
    }

    /// A [`ProtocolRunner`] borrowing this driver's shared resources.
    pub fn runner(&self) -> ProtocolRunner<'_> {
        ProtocolRunner {
            config: &self.config,
            envelope: &self.envelope,
            router: &self.router,
            programming: &self.programming,
            scan: &self.scan,
            scanner: &self.scanner,
            route_cache: self.config.reuse_plans.then_some(&self.route_cache),
        }
    }

    /// Hit/miss counters of the warm-start plan cache (all zero unless
    /// [`WorkloadConfig::reuse_plans`] is set).
    pub fn route_cache_stats(&self) -> CacheStats {
        self.route_cache
            .lock()
            .expect("route cache poisoned")
            .stats()
    }

    /// Executes an arbitrary protocol as the next cycle, recording its
    /// work into the running totals.
    pub fn run_protocol(&mut self, protocol: &Protocol) -> ProtocolOutcome {
        let cycle = self.cycles_run;
        self.cycles_run += 1;
        let outcome = self.runner().run(protocol, cycle);
        let report = &outcome.report;
        // Recovery moves are executed on-chip and their time is in the
        // recorded total, so they belong in the throughput numerator too.
        self.totals.record(
            report.requested,
            report.routed,
            report.total_moves + report.recovery_moves,
            report.time.total(),
            report.planning,
        );
        outcome
    }

    /// Runs one load→route→sense→recover→flush cycle with `particles`
    /// particles (clamped to the array's pattern capacity) — the canned
    /// [`Protocol::canned_cycle`] through the phase pipeline.
    pub fn run_cycle(&mut self, particles: usize) -> CycleReport {
        let dims = GridDims::square(self.config.array_side);
        let sep = self.config.min_separation.max(1);
        self.run_protocol(&Protocol::canned_cycle(dims, sep, particles))
            .report
    }

    /// The outcome of routing one generated batch without executing it —
    /// used by benchmarks probing the planner alone.
    pub fn plan_only(&self, particles: usize, cycle_seed: u64) -> RoutingOutcome {
        let dims = GridDims::square(self.config.array_side);
        let problem = sort_problem(dims, particles, self.config.min_separation, cycle_seed);
        self.router
            .solve(&problem)
            .expect("generated problems are always well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::MetersPerSecond;

    #[test]
    fn sort_problem_is_valid_and_splits_classes() {
        let dims = GridDims::square(64);
        let problem = sort_problem(dims, 60, 2, 7);
        assert!(problem.validate().is_ok());
        assert_eq!(problem.requests.len(), 60);
        let left_goals = problem
            .requests
            .iter()
            .filter(|r| r.goal.x < dims.cols / 3)
            .count();
        let right_goals = problem
            .requests
            .iter()
            .filter(|r| r.goal.x >= 2 * dims.cols / 3)
            .count();
        assert_eq!(left_goals + right_goals, 60);
        assert!(left_goals >= 25 && right_goals >= 25);
    }

    #[test]
    fn sort_problem_clamps_to_capacity() {
        let dims = GridDims::square(32);
        let problem = sort_problem(dims, 100_000, 2, 7);
        assert!(problem.requests.len() < 100_000);
        assert!(problem.validate().is_ok());
    }

    #[test]
    fn one_small_cycle_end_to_end() {
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            ..WorkloadConfig::default()
        });
        let report = driver.run_cycle(40);
        assert_eq!(report.cycle, 0);
        assert_eq!(report.requested, 40);
        assert!(report.conflict_free);
        assert!(report.success_rate() > 0.85, "routed {}", report.routed);
        assert_eq!(report.occupancy_detected, 40);
        assert_eq!(report.infeasible_moves, 0);
        assert!(report.moves_checked >= report.total_moves);
        assert!(report.budget.fits_within(driver.config().step_period));
        assert!(report.time.fluidics > report.time.sensing);
        // The planner is far faster than the chip.
        assert!(driver.totals().planner_headroom() > 1.0);
    }

    #[test]
    fn journal_replay_is_the_equivalence_oracle_bit_for_bit() {
        // The event-sourcing contract, at the same seed/noise grid the old
        // legacy-equivalence test used: a journaled run produces the exact
        // report a plain run does (planner wall-clock is real time, so it
        // is the one field aligned), and replaying its journal into a
        // fresh chip reconstructs the final state bit-for-bit.
        use labchip_manipulation::journal::replay;

        for (seed, noise_scale, recovery) in [
            (2005u64, 1.0, RecoveryPolicy::disabled()),
            (7, 0.0, RecoveryPolicy::date05_reference()),
            (11, 8.0, RecoveryPolicy::date05_reference()),
            (13, 8.0, RecoveryPolicy::disabled()),
        ] {
            let config = WorkloadConfig {
                array_side: 48,
                seed,
                noise_scale,
                detection_frames: 2,
                recovery,
                ..WorkloadConfig::default()
            };
            let envelope = ForceEnvelope::date05_reference();
            let driver = BatchDriver::with_envelope(config, envelope);
            let dims = GridDims::square(config.array_side);
            let sep = config.min_separation.max(1);
            for (cycle, particles) in [40usize, 90].into_iter().enumerate() {
                let protocol = Protocol::canned_cycle(dims, sep, particles);
                let plain = driver.runner().run(&protocol, cycle);
                let (journaled, journal) = driver.runner().run_journaled(&protocol, cycle);
                assert!(!journal.is_empty());

                let mut plain_report = plain.report.clone();
                plain_report.planning = journaled.report.planning;
                assert_eq!(journaled.report, plain_report, "seed {seed}");
                assert_eq!(journaled.state, plain.state, "seed {seed}");

                let replayed = replay(&journal, dims, sep).expect("journal replays cleanly");
                assert_eq!(replayed, journaled.state, "seed {seed} noise {noise_scale}");
                assert_eq!(replayed.state_hash(), journaled.state.state_hash());
            }
        }
    }

    #[test]
    fn zero_noise_sense_reproduces_the_oracle_exactly() {
        // The lock-in for the old "sense = oracle" behaviour: with ideal
        // electronics the detected map equals the truth bit-for-bit, no
        // recovery fires, and no recovery time is charged — so the numbers
        // E9/E11 publish cannot drift at noise_scale 0.
        let config = WorkloadConfig {
            array_side: 48,
            noise_scale: 0.0,
            recovery: RecoveryPolicy::date05_reference(),
            ..WorkloadConfig::default()
        };
        let report = BatchDriver::new(config).run_cycle(40);
        assert_eq!(report.occupancy_detected, 40);
        assert_eq!(report.detection.error_rate(), 0.0);
        assert_eq!(report.detection.false_positives, 0);
        assert_eq!(report.detection.false_negatives, 0);
        // Detection mismatches against the plan can only be real stranding,
        // which this light batch does not produce.
        assert_eq!(report.mismatches_initial, 0);
        assert_eq!(report.mismatches_final, 0);
        assert_eq!(report.true_mismatches_final, 0);
        assert_eq!(report.recovery_rounds, 0);
        assert_eq!(report.recovery_moves, 0);
        assert_eq!(report.time.recovery, Seconds::new(0.0));

        // Bit-identical to the oracle baseline: the same cycle with
        // recovery entirely disabled produces the exact same report
        // (modulo planner wall-clock, which is not simulated time).
        let mut baseline = BatchDriver::new(WorkloadConfig {
            recovery: RecoveryPolicy::disabled(),
            ..config
        })
        .run_cycle(40);
        baseline.planning = report.planning;
        assert_eq!(report, baseline);
    }

    #[test]
    fn noisy_detection_errors_are_flagged_and_rescan_clears_them() {
        // Loud electronics: the single scan misreads sites, so the cycle
        // reports detection errors (impossible under the old oracle). The
        // recovery re-scan at 4x frames then clears essentially all of
        // them — detection errors are not real placement errors.
        let noisy = WorkloadConfig {
            array_side: 48,
            noise_scale: 8.0,
            detection_frames: 2,
            recovery: RecoveryPolicy::disabled(),
            ..WorkloadConfig::default()
        };
        let open_loop = BatchDriver::new(noisy).run_cycle(30);
        assert!(
            open_loop.detection.error_rate() > 0.0,
            "a loud channel must show detection errors"
        );
        assert!(open_loop.mismatches_initial > 0);
        assert_eq!(open_loop.mismatches_final, open_loop.mismatches_initial);
        // The chip never misplaced anything — the errors are in the eyes.
        assert_eq!(open_loop.true_mismatches_final, 0);

        let closed_loop = BatchDriver::new(WorkloadConfig {
            recovery: RecoveryPolicy::date05_reference(),
            ..noisy
        })
        .run_cycle(30);
        // Same seed, same pass numbering: the initial scan is identical.
        assert_eq!(closed_loop.detection, open_loop.detection);
        assert_eq!(closed_loop.mismatches_initial, open_loop.mismatches_initial);
        assert!(
            closed_loop.mismatches_final < open_loop.mismatches_final,
            "recovery must reduce the final mismatch count: {} vs {}",
            closed_loop.mismatches_final,
            open_loop.mismatches_final
        );
        assert!(closed_loop.recovery_rounds >= 1);
        assert!(closed_loop.time.recovery.get() > 0.0);
    }

    #[test]
    fn recovery_reroutes_stranded_particles_to_their_slots() {
        // A dense batch on a small array strands some particles short of
        // their goals. With ideal sensing the mismatches are all real, and
        // the closed loop routes the strays home: the ground-truth
        // placement error strictly drops versus the open-loop run.
        let config = WorkloadConfig {
            array_side: 48,
            noise_scale: 0.0,
            recovery: RecoveryPolicy::disabled(),
            ..WorkloadConfig::default()
        };
        let mut open_report = None;
        // Find a seed whose batch strands at least one particle.
        for seed in 0..64 {
            let candidate = WorkloadConfig { seed, ..config };
            let report = BatchDriver::new(candidate).run_cycle(90);
            if report.true_mismatches_final > 0 {
                open_report = Some((candidate, report));
                break;
            }
        }
        let (config, open_loop) = open_report.expect("some dense batch strands a particle");
        assert!(open_loop.routed < open_loop.requested);

        let closed_loop = BatchDriver::new(WorkloadConfig {
            recovery: RecoveryPolicy::date05_reference(),
            ..config
        })
        .run_cycle(90);
        assert!(closed_loop.recovery_moves > 0);
        assert!(
            closed_loop.true_mismatches_final < open_loop.true_mismatches_final,
            "recovery must strictly improve true placement: {} vs {}",
            closed_loop.true_mismatches_final,
            open_loop.true_mismatches_final
        );
        assert!(closed_loop.time.recovery.get() > 0.0);
        // Recovery work is visible in the totals the envelope checks saw.
        assert!(closed_loop.moves_checked > open_loop.moves_checked);
    }

    #[test]
    fn hostile_sensing_overrides_degrade_instead_of_panicking() {
        // CLI `--set` overrides can deliver any value; like the
        // `min_separation=0` clamp, bad sensing knobs must degrade rather
        // than panic deep in the sensing stack.
        let envelope = ForceEnvelope::date05_reference();
        let base = WorkloadConfig {
            array_side: 16,
            ..WorkloadConfig::default()
        };
        let negative = BatchDriver::with_envelope(
            WorkloadConfig {
                noise_scale: -3.0,
                detection_frames: 0,
                ..base
            },
            envelope,
        );
        assert_eq!(negative.config().noise_scale, 0.0);
        assert_eq!(negative.config().detection_frames, 1);
        let nan = BatchDriver::with_envelope(
            WorkloadConfig {
                noise_scale: f64::NAN,
                ..base
            },
            envelope,
        );
        assert_eq!(nan.config().noise_scale, 0.0);
        let infinite = BatchDriver::with_envelope(
            WorkloadConfig {
                noise_scale: f64::INFINITY,
                ..base
            },
            envelope,
        );
        assert!(infinite.config().noise_scale.is_finite());
        // The clamp keeps hostile envelopes comparable too.
        assert!(!envelope.permits(MetersPerSecond::new(1.0)));
    }

    #[test]
    fn cycles_accumulate_into_totals() {
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            ..WorkloadConfig::default()
        });
        driver.run_cycle(20);
        driver.run_cycle(20);
        let totals = driver.totals();
        assert_eq!(totals.cycles, 2);
        assert_eq!(totals.requested, 40);
        assert!(totals.moves_per_planning_second() > 0.0);
    }

    #[test]
    fn repeated_loads_draw_fresh_batches() {
        // Two identical Load phases must not replay the same placement
        // stream (every site would already be occupied and the second load
        // would silently be a no-op): the id-offset salt gives each load a
        // fresh draw.
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            noise_scale: 0.0,
            ..WorkloadConfig::default()
        });
        let protocol = Protocol::new("double-load")
            .with_phase(PhaseSpec::Load {
                particles: 15,
                capacity_clamp: None,
            })
            .with_phase(PhaseSpec::Load {
                particles: 15,
                capacity_clamp: None,
            })
            .with_phase(PhaseSpec::Flush);
        let outcome = driver.run_protocol(&protocol);
        assert_eq!(outcome.phases[0].particles_after, 15);
        assert!(
            outcome.phases[1].particles_after > 15,
            "second load placed nothing: {:?}",
            outcome.phases[1]
        );
    }

    #[test]
    fn custom_protocols_compose_phases_the_monolith_could_not() {
        // A two-route assay: sort the populations apart, then bring pairs
        // together in the centre — with a verifying scan after each motion
        // phase. The old run_cycle literally could not express this.
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            noise_scale: 0.0,
            ..WorkloadConfig::default()
        });
        let protocol = Protocol::new("two-population merge")
            .with_phase(PhaseSpec::Load {
                particles: 20,
                capacity_clamp: None,
            })
            .with_phase(PhaseSpec::Route {
                target: RouteTarget::SortSplit,
            })
            .with_phase(PhaseSpec::Sense { frames: None })
            .with_phase(PhaseSpec::Route {
                target: RouteTarget::MergePairs,
            })
            .with_phase(PhaseSpec::Sense { frames: None })
            .with_phase(PhaseSpec::Flush);
        let outcome = driver.run_protocol(&protocol);
        assert_eq!(outcome.phases.len(), 6);
        assert_eq!(outcome.report.requested, 20);
        // Both routes delivered everyone with ideal sensing on a roomy array.
        assert_eq!(outcome.report.routed, 40, "two routes of 20 requests each");
        // The second scan sees the merged layout, and with zero noise the
        // detected map matches the plan exactly.
        assert_eq!(outcome.report.mismatches_final, 0);
        assert_eq!(outcome.report.true_mismatches_final, 0);
        // The chip is empty after the flush, and time accrued in every
        // ledger that ran.
        assert_eq!(outcome.state.particle_count(), 0);
        assert!(outcome.report.time.motion.get() > 0.0);
        assert!(outcome.report.time.sensing.get() > 0.0);
        assert!(outcome.report.time.fluidics.get() > 0.0);
        // Phase ledgers sum to the cycle total.
        let summed: f64 = outcome.phases.iter().map(|p| p.time.total().get()).sum();
        assert!((summed - outcome.report.time.total().get()).abs() < 1e-9);
    }
}
