//! The retired monolithic cycle, kept verbatim for one release as (a) the
//! baseline the `BENCH_workload` protocol-runner-overhead figure is measured
//! against and (b) the oracle of the phase decomposition's equivalence test.
//!
//! Do not add features here: new workloads are composed from
//! [`AssayPhase`](super::phases::AssayPhase) implementations and executed by
//! the [`ProtocolRunner`](super::protocol::ProtocolRunner). Once a release's
//! `BENCH_workload.json` trajectory has established the runner overhead,
//! this module is scheduled for deletion.

use super::phases::pair_nearest;
use super::{sort_problem, BatchDriver, CycleReport};
use labchip_array::timing::WindowBudget;
use labchip_manipulation::cage::{CageGrid, ParticleId};
use labchip_manipulation::protocol::TimeBreakdown;
use labchip_manipulation::routing::{RoutingOutcome, RoutingProblem, RoutingRequest};
use labchip_manipulation::state::ChipState;
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::detect::{Occupancy, OccupancyMap};
use labchip_units::{GridCoord, GridDims, Seconds};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// The true occupancy map of a cage grid (through the shared builder).
fn occupancy_of(grid: &CageGrid) -> OccupancyMap {
    ChipState::occupancy_from_sites(grid.dims(), grid.iter_particles().map(|(_, coord)| coord))
}

impl BatchDriver {
    /// The pre-decomposition `run_cycle`: one hard-coded
    /// load→route→sense→recover→flush flow. Produces the same
    /// [`CycleReport`] as [`BatchDriver::run_cycle`] (the equivalence is
    /// asserted bit-for-bit by tests, modulo planner wall-clock); retained
    /// only as the benchmark baseline. See the module docs.
    #[doc(hidden)]
    pub fn run_cycle_legacy(&mut self, particles: usize) -> CycleReport {
        let cycle = self.cycles_run;
        self.cycles_run += 1;
        let dims = GridDims::square(self.config.array_side);
        let sep = self.config.min_separation.max(1);
        let cycle_seed = self
            .config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cycle as u64 + 1));
        let problem = sort_problem(dims, particles, sep, cycle_seed);
        let requested = problem.requests.len();

        let mut time = TimeBreakdown::default();

        // Load: place the batch on the loading lattice.
        let mut grid = CageGrid::with_separation(dims, sep);
        for request in &problem.requests {
            grid.place(request.id, request.start)
                .expect("loading lattice sites are mutually separated");
        }
        time.fluidics += self.config.load_time;

        // Route with the incremental sharded planner.
        let started = Instant::now();
        let outcome = self
            .router
            .solve(&problem)
            .expect("generated problems are always well-formed");
        let planning = Seconds::new(started.elapsed().as_secs_f64());
        let conflict_free = outcome.is_conflict_free(sep);

        // Force-feasibility and programming-budget checks on every planned
        // move.
        let speed = self.envelope.pitch / self.config.step_period;
        let feasible = self.envelope.permits(speed);
        let mut moves_checked = 0usize;
        let mut infeasible_moves = 0usize;
        let mut budget = WindowBudget::default();
        self.legacy_check_planned_moves(
            &outcome,
            dims,
            feasible,
            &mut budget,
            &mut moves_checked,
            &mut infeasible_moves,
        );
        time.motion += self.config.step_period * outcome.makespan as f64;

        // Execute.
        let moved = || outcome.paths.iter().chain(outcome.stranded.iter());
        for path in moved() {
            grid.remove(path.id).expect("loaded particle");
        }
        for path in moved() {
            let last = *path.positions.last().expect("paths are never empty");
            grid.place(path.id, last)
                .expect("final configurations are conflict-free");
        }

        // Sense.
        let scan_time = self
            .scan
            .averaged_scan_time(dims, &FrameAverager::new(self.config.detection_frames));
        time.sensing += scan_time;
        let mut pass = (cycle as u64) << 16;
        let scan = self
            .scanner
            .scan(&occupancy_of(&grid), self.config.detection_frames, pass);
        pass += 1;
        let detection = scan.stats;
        let mut detected = scan.map;

        let mut plan = OccupancyMap::new(dims);
        for request in &problem.requests {
            plan.set(request.goal, Occupancy::Occupied);
        }
        let mismatches_initial = detected
            .diff_count(&plan)
            .expect("plan and detected maps share the array dims");

        // Recover.
        let policy = self.config.recovery;
        let rescan_frames = self
            .config
            .detection_frames
            .saturating_mul(policy.rescan_factor.max(1));
        let mut recovery_rounds = 0usize;
        let mut recovery_moves = 0usize;
        for _ in 0..policy.max_rounds {
            let suspects: Vec<GridCoord> = dims
                .iter()
                .filter(|c| detected.get(*c) != plan.get(*c))
                .collect();
            if suspects.is_empty() {
                break;
            }
            recovery_rounds += 1;

            let truth = occupancy_of(&grid);
            let rows: HashSet<u32> = suspects.iter().map(|c| c.y).collect();
            time.recovery +=
                self.scan.row_time(dims.cols) * (rows.len() as f64 * rescan_frames as f64);
            for &site in &suspects {
                detected.set(
                    site,
                    self.scanner
                        .sense_site(truth.get(site), site, rescan_frames, pass),
                );
            }
            pass += 1;

            let strays: Vec<GridCoord> = suspects
                .iter()
                .copied()
                .filter(|c| {
                    detected.get(*c) == Occupancy::Occupied && plan.get(*c) == Occupancy::Empty
                })
                .collect();
            let vacancies: Vec<GridCoord> = suspects
                .iter()
                .copied()
                .filter(|c| {
                    detected.get(*c) == Occupancy::Empty && plan.get(*c) == Occupancy::Occupied
                })
                .collect();
            if strays.is_empty() || vacancies.is_empty() {
                continue;
            }

            let pairs = pair_nearest(&strays, &vacancies);
            let movers = pairs.len();
            let mut requests: Vec<RoutingRequest> = pairs
                .iter()
                .enumerate()
                .map(|(k, &(from, to))| RoutingRequest {
                    id: ParticleId(k as u64),
                    start: from,
                    goal: to,
                })
                .collect();
            let moving: HashSet<GridCoord> = pairs.iter().map(|&(from, _)| from).collect();
            for site in dims.iter() {
                if detected.get(site) == Occupancy::Occupied && !moving.contains(&site) {
                    requests.push(RoutingRequest {
                        id: ParticleId(requests.len() as u64),
                        start: site,
                        goal: site,
                    });
                }
            }
            let mut recovery_problem = RoutingProblem::new(dims, requests);
            recovery_problem.min_separation = sep;
            if recovery_problem.validate().is_err() {
                break;
            }
            let Ok(recovery_outcome) = self.router.solve(&recovery_problem) else {
                break;
            };
            self.legacy_check_planned_moves(
                &recovery_outcome,
                dims,
                feasible,
                &mut budget,
                &mut moves_checked,
                &mut infeasible_moves,
            );
            time.recovery += self.config.step_period * recovery_outcome.makespan as f64;
            recovery_moves += recovery_outcome.total_moves;

            let occupant: HashMap<GridCoord, ParticleId> =
                grid.iter_particles().map(|(id, c)| (c, id)).collect();
            let mut touched: Vec<GridCoord> = Vec::new();
            let mut moved: Vec<(ParticleId, GridCoord, GridCoord)> = Vec::new();
            for path in recovery_outcome
                .paths
                .iter()
                .chain(recovery_outcome.stranded.iter())
            {
                if path.id.0 >= movers as u64 {
                    continue; // stationary on-plan particle
                }
                let from = path.positions[0];
                let to = *path.positions.last().expect("paths are never empty");
                touched.push(from);
                touched.push(to);
                if from == to {
                    continue;
                }
                if let Some(&id) = occupant.get(&from) {
                    moved.push((id, from, to));
                }
            }
            for &(id, _, _) in &moved {
                grid.remove(id).expect("tracked particle");
            }
            for &(id, from, to) in &moved {
                if grid.place(id, to).is_err() && grid.place(id, from).is_err() {
                    grid.place_merged(id, from);
                }
            }

            let truth = occupancy_of(&grid);
            let rows: HashSet<u32> = touched.iter().map(|c| c.y).collect();
            time.recovery +=
                self.scan.row_time(dims.cols) * (rows.len() as f64 * rescan_frames as f64);
            for &site in &touched {
                detected.set(
                    site,
                    self.scanner
                        .sense_site(truth.get(site), site, rescan_frames, pass),
                );
            }
            pass += 1;
        }

        let mismatches_final = detected
            .diff_count(&plan)
            .expect("plan and detected maps share the array dims");
        let true_mismatches_final = occupancy_of(&grid)
            .diff_count(&plan)
            .expect("plan and truth maps share the array dims");
        let occupancy_detected = detected.occupied_count();

        // Flush the batch.
        let ids: Vec<ParticleId> = grid.iter_particles().map(|(id, _)| id).collect();
        for id in ids {
            grid.remove(id).expect("flushing tracked particles");
        }
        time.fluidics += self.config.flush_time;

        let report = CycleReport {
            cycle,
            requested,
            routed: outcome.paths.len(),
            makespan_steps: outcome.makespan,
            total_moves: outcome.total_moves,
            planning,
            time,
            moves_checked,
            infeasible_moves,
            occupancy_detected,
            detection,
            mismatches_initial,
            mismatches_final,
            true_mismatches_final,
            recovery_rounds,
            recovery_moves,
            budget,
            conflict_free,
        };
        self.totals.record(
            requested,
            report.routed,
            report.total_moves + report.recovery_moves,
            report.time.total(),
            planning,
        );
        report
    }

    fn legacy_check_planned_moves(
        &self,
        outcome: &RoutingOutcome,
        dims: GridDims,
        feasible: bool,
        budget: &mut WindowBudget,
        moves_checked: &mut usize,
        infeasible_moves: &mut usize,
    ) {
        let all_paths = || outcome.paths.iter().chain(outcome.stranded.iter());
        let horizon = all_paths().map(|p| p.arrival_step()).max().unwrap_or(0);
        let mut changed: Vec<GridCoord> = Vec::new();
        for t in 1..=horizon {
            changed.clear();
            for path in all_paths() {
                let prev = path.position_at(t - 1);
                let cur = path.position_at(t);
                if prev != cur {
                    *moves_checked += 1;
                    if !feasible {
                        *infeasible_moves += 1;
                    }
                    changed.push(prev);
                    changed.push(cur);
                }
            }
            if !changed.is_empty() {
                budget.record(&self.programming.plan_update(dims, &changed));
            }
        }
    }
}
