//! The composable assay phases: `Load`, `Route`, `Sense`, `Recover`,
//! `Flush`.
//!
//! Each phase is one reusable unit of chip work implementing [`AssayPhase`]:
//! it mutates the shared [`ChipState`] (grid, plan, time ledger) and the
//! cycle-scoped [`PhaseCtx`] accumulators, and returns a [`PhaseReport`].
//! A [`Protocol`](super::protocol::Protocol) is an ordered list of phase
//! specs; the canned `load → route(sort) → sense → recover → flush` sequence
//! is the driver's standard cycle (its replay equivalence is locked in by
//! the journal oracle), and arbitrary other sequences (multi-route,
//! multi-sense — see scenario E13) compose from the same five pieces.
//!
//! Phases are **fallible and interruptible**: [`AssayPhase::run`] returns
//! `Result<PhaseReport, PhaseError>`, never panics on grid-state surprises,
//! and polls [`ChipState::fault_tripped`] at its mutation boundaries so an
//! armed [`FaultPlan`](labchip_manipulation::journal::FaultPlan) kills
//! execution cooperatively — the hook the checkpoint/resume sweep (E14)
//! injects crashes through.

use super::envelope::ForceEnvelope;
use super::{RecoveryPolicy, WorkloadConfig};
use labchip_array::addressing::ProgrammingInterface;
use labchip_array::timing::WindowBudget;
use labchip_manipulation::cage::ParticleId;
use labchip_manipulation::error::ManipulationError;
use labchip_manipulation::fleet::ShardedState;
use labchip_manipulation::protocol::TimeBreakdown;
use labchip_manipulation::routing::{RoutingOutcome, RoutingProblem, RoutingRequest};
use labchip_manipulation::sharding::{IncrementalRouter, RouterCache};
use labchip_manipulation::state::{ChipState, DirtyRegions, TimeLedger};
use labchip_sensing::array_scan::ArrayScanner;
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::detect::{DetectionStats, Occupancy, OccupancyMap};
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridCoord, GridDims, Seconds};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

/// One composable unit of assay work.
///
/// Phases communicate through two channels: the persistent [`ChipState`]
/// (particle truth, plan, simulated-time ledger) and the cycle-scoped
/// [`PhaseCtx`] (detection maps, envelope/budget counters, routing totals).
/// Implementations must charge all simulated time through
/// [`ChipState::charge`] so the per-phase ledger the runner reports stays
/// complete.
pub trait AssayPhase {
    /// Short stable name of the phase (for reports and tables).
    fn name(&self) -> &'static str;

    /// Executes the phase. The returned report's `time` field is
    /// overwritten by the runner with the measured ledger delta.
    ///
    /// # Errors
    ///
    /// [`PhaseError::Interrupted`] when an armed fault plan tripped at one
    /// of the phase's poll points; [`PhaseError::Invariant`] when the grid
    /// rejected an operation the phase's own bookkeeping says must succeed
    /// (a bug or corrupted state — reported, never panicked). Either way
    /// the runner journals a `PhaseAborted` marker and the protocol can be
    /// resumed from the checkpoint taken before the phase.
    fn run(&self, state: &mut ChipState, ctx: &mut PhaseCtx) -> Result<PhaseReport, PhaseError>;
}

/// Why a phase stopped without completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseError {
    /// An armed [`FaultPlan`](labchip_manipulation::journal::FaultPlan)
    /// kill point tripped at one of the phase's poll points.
    Interrupted {
        /// Name of the interrupted phase.
        phase: &'static str,
    },
    /// A grid operation the phase's bookkeeping guarantees was rejected —
    /// an internal inconsistency, surfaced instead of panicking.
    Invariant {
        /// Name of the failing phase.
        phase: &'static str,
        /// What was violated.
        reason: String,
    },
}

impl PhaseError {
    /// Name of the phase that stopped.
    pub fn phase(&self) -> &'static str {
        match self {
            PhaseError::Interrupted { phase } | PhaseError::Invariant { phase, .. } => phase,
        }
    }

    fn interrupted(phase: &'static str) -> Self {
        PhaseError::Interrupted { phase }
    }

    fn invariant(phase: &'static str, reason: impl Into<String>) -> Self {
        PhaseError::Invariant {
            phase,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseError::Interrupted { phase } => {
                write!(f, "{phase} interrupted by injected fault")
            }
            PhaseError::Invariant { phase, reason } => {
                write!(f, "{phase} invariant violated: {reason}")
            }
        }
    }
}

impl std::error::Error for PhaseError {}

/// What one executed phase did — one row of a protocol's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name (plus a target/knob annotation where relevant).
    pub phase: String,
    /// Simulated chip time this phase charged, by ledger (filled in by the
    /// protocol runner from [`ChipState`] snapshots around the phase).
    pub time: TimeBreakdown,
    /// Cage moves this phase commanded.
    pub moves: usize,
    /// Particles on the grid after the phase.
    pub particles_after: usize,
    /// One-line human summary.
    pub detail: String,
}

/// The final plan-vs-reality counts of a protocol, captured while the batch
/// is still on-chip (just before a flush, or at protocol end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FinalCounts {
    /// Sites where the final detected map disagrees with the plan.
    pub mismatches_final: usize,
    /// Sites where the true occupancy disagrees with the plan.
    pub true_mismatches_final: usize,
    /// Occupied cages the detection scan decided it saw.
    pub occupancy_detected: usize,
}

/// Which state model the phases execute against.
///
/// The phases always run the identical algorithm over the global
/// [`ChipState`]; in the `Sharded` arm every successful mutation is
/// additionally *mirrored* into a [`ShardedState`] fleet through the
/// typed helpers on [`PhaseCtx`] ([`place`](PhaseCtx::place),
/// [`remove`](PhaseCtx::remove), …). Because the mirror never feeds back
/// into the global state or any RNG stream, a sharded run's global
/// journal is byte-identical to the monolithic run by construction — the
/// fleet is an exact decomposition riding alongside, with its own
/// per-shard journals, handoff events and warm-start router caches.
#[derive(Debug, Default)]
pub enum StateView {
    /// The classic single-`ChipState` path: mirrors are no-ops.
    #[default]
    Monolithic,
    /// A sharded fleet maintained as an exact mirror of the global state.
    Sharded(Box<ShardedState>),
}

impl StateView {
    /// Whether a sharded fleet is attached.
    pub fn is_sharded(&self) -> bool {
        matches!(self, StateView::Sharded(_))
    }

    /// Detaches the view, leaving `Monolithic` behind — how a sharded
    /// runner extracts the fleet at the end of a run.
    pub fn take(&mut self) -> StateView {
        std::mem::take(self)
    }

    fn as_sharded_mut(&mut self) -> Option<&mut ShardedState> {
        match self {
            StateView::Monolithic => None,
            StateView::Sharded(fleet) => Some(fleet),
        }
    }

    /// Mirrors a phase-started marker into every shard journal.
    pub fn note_phase_started(&mut self, index: usize, name: &str) {
        if let Some(fleet) = self.as_sharded_mut() {
            fleet.note_phase_started(index, name);
        }
    }

    /// Mirrors a phase-finished marker into every shard journal, then
    /// releases the fleet's window barrier: every declared transfer has
    /// either landed or been abandoned by the end of the phase, so the
    /// pending set must be empty going into the next one.
    pub fn note_phase_finished(&mut self, index: usize) {
        if let Some(fleet) = self.as_sharded_mut() {
            fleet.note_phase_finished(index);
            fleet.barrier();
        }
    }

    /// Mirrors a phase-aborted marker into every shard journal and clears
    /// the transfers the aborted phase had declared.
    pub fn note_phase_aborted(&mut self, index: usize, reason: &str) {
        if let Some(fleet) = self.as_sharded_mut() {
            fleet.note_phase_aborted(index, reason);
            fleet.barrier();
        }
    }
}

/// Cycle-scoped context handed to every phase: the driver's shared
/// resources plus the accumulators the final [`CycleReport`](super::CycleReport)
/// is assembled from.
pub struct PhaseCtx<'a> {
    /// Workload knobs in effect.
    pub config: &'a WorkloadConfig,
    /// The force-feasibility envelope every planned move is checked against.
    pub envelope: &'a ForceEnvelope,
    /// The incremental sharded router.
    pub router: &'a IncrementalRouter,
    /// The array's row-update programming model.
    pub programming: &'a ProgrammingInterface,
    /// Scan timing model.
    pub scan: &'a ScanTiming,
    /// The whole-array scan synthesizer.
    pub scanner: &'a ArrayScanner,
    /// Warm-start plan cache (`Some` iff [`WorkloadConfig::reuse_plans`]);
    /// phases route through [`PhaseCtx::solve_routing`] so caching stays
    /// transparent to them.
    pub route_cache: Option<&'a Mutex<RouterCache>>,
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Seed of this cycle's batch placement.
    pub cycle_seed: u64,
    /// Next scan pass number (separates repeated scans of one cycle).
    pub pass: u64,
    /// Particles requested across all load phases.
    pub requested: usize,
    /// Requests the routers delivered to their goals.
    pub routed: usize,
    /// Cage steps until the last routed particle arrived, summed over
    /// route phases.
    pub makespan_steps: usize,
    /// Individual cage moves across all route phases.
    pub total_moves: usize,
    /// Planner wall-clock across all route phases (recovery re-plans are
    /// deliberately *not* counted, matching the legacy driver).
    pub planning: Seconds,
    /// Whether every routed plan passed the separation invariant.
    pub conflict_free: bool,
    /// Planned moves checked against the force envelope.
    pub moves_checked: usize,
    /// Moves the envelope rejected.
    pub infeasible_moves: usize,
    /// Programming-clock budget of the executed motion.
    pub budget: WindowBudget,
    /// The latest detected occupancy map (None until a sense phase runs).
    pub detected: Option<OccupancyMap>,
    /// Confusion counts accumulated over all full-array scans.
    pub detection: DetectionStats,
    /// Detected-vs-plan mismatches of the *first* scan.
    pub mismatches_initial: Option<usize>,
    /// Recovery rounds executed.
    pub recovery_rounds: usize,
    /// Corrective cage moves commanded by recovery.
    pub recovery_moves: usize,
    pub(crate) finals: Option<FinalCounts>,
    /// The state model the phases mutate through (defaults to
    /// [`StateView::Monolithic`]; a sharded runner attaches a fleet after
    /// construction).
    pub view: StateView,
}

/// A serde-round-trippable snapshot of every [`PhaseCtx`] accumulator —
/// the second half of a [`Checkpoint`](super::protocol::Checkpoint)
/// (the first being the [`ChipStateSnapshot`](labchip_manipulation::state::ChipStateSnapshot)).
/// Restoring it into a fresh ctx over the same driver resources makes a
/// resumed run bit-identical to an uninterrupted one: the scan-pass
/// counter and cycle seed pin every RNG stream, the rest pins the final
/// [`CycleReport`](super::CycleReport) assembly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtxSnapshot {
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Seed of this cycle's batch placement.
    pub cycle_seed: u64,
    /// Next scan pass number.
    pub pass: u64,
    /// Particles requested across all load phases.
    pub requested: usize,
    /// Requests the routers delivered to their goals.
    pub routed: usize,
    /// Cage steps until the last routed particle arrived.
    pub makespan_steps: usize,
    /// Individual cage moves across all route phases.
    pub total_moves: usize,
    /// Planner wall-clock accumulated so far.
    pub planning: Seconds,
    /// Whether every routed plan passed the separation invariant.
    pub conflict_free: bool,
    /// Planned moves checked against the force envelope.
    pub moves_checked: usize,
    /// Moves the envelope rejected.
    pub infeasible_moves: usize,
    /// Programming-clock budget of the executed motion.
    pub budget: WindowBudget,
    /// The latest detected occupancy map.
    pub detected: Option<OccupancyMap>,
    /// Confusion counts accumulated over all full-array scans.
    pub detection: DetectionStats,
    /// Detected-vs-plan mismatches of the first scan.
    pub mismatches_initial: Option<usize>,
    /// Recovery rounds executed.
    pub recovery_rounds: usize,
    /// Corrective cage moves commanded by recovery.
    pub recovery_moves: usize,
    /// Final plan-vs-reality counts, if already captured.
    pub finals: Option<FinalCounts>,
}

impl<'a> PhaseCtx<'a> {
    /// Creates a fresh cycle context over the driver's resources.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: &'a WorkloadConfig,
        envelope: &'a ForceEnvelope,
        router: &'a IncrementalRouter,
        programming: &'a ProgrammingInterface,
        scan: &'a ScanTiming,
        scanner: &'a ArrayScanner,
        route_cache: Option<&'a Mutex<RouterCache>>,
        cycle: usize,
        cycle_seed: u64,
    ) -> Self {
        Self {
            config,
            envelope,
            router,
            programming,
            scan,
            scanner,
            route_cache,
            cycle,
            cycle_seed,
            pass: (cycle as u64) << 16,
            requested: 0,
            routed: 0,
            makespan_steps: 0,
            total_moves: 0,
            planning: Seconds::ZERO,
            conflict_free: true,
            moves_checked: 0,
            infeasible_moves: 0,
            budget: WindowBudget::default(),
            detected: None,
            detection: DetectionStats::default(),
            mismatches_initial: None,
            recovery_rounds: 0,
            recovery_moves: 0,
            finals: None,
            view: StateView::Monolithic,
        }
    }

    /// Places a particle through the state's journaled choke point and
    /// mirrors the success into the sharded view, if one is attached.
    /// Rejected placements mirror nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`ChipState::place`] rejections.
    pub fn place(
        &mut self,
        state: &mut ChipState,
        id: ParticleId,
        at: GridCoord,
    ) -> Result<(), ManipulationError> {
        state.place(id, at)?;
        if let Some(fleet) = self.view.as_sharded_mut() {
            fleet.mirror_place(id, at);
        }
        Ok(())
    }

    /// Removes a particle through the state's journaled choke point and
    /// mirrors the success into the sharded view, if one is attached.
    ///
    /// # Errors
    ///
    /// Propagates [`ChipState::remove`] rejections.
    pub fn remove(
        &mut self,
        state: &mut ChipState,
        id: ParticleId,
    ) -> Result<GridCoord, ManipulationError> {
        let from = state.remove(id)?;
        if let Some(fleet) = self.view.as_sharded_mut() {
            fleet.mirror_remove(id);
        }
        Ok(from)
    }

    /// Merge-places a particle through the state's journaled choke point
    /// and mirrors it into the sharded view, if one is attached.
    pub fn place_merged(&mut self, state: &mut ChipState, id: ParticleId, at: GridCoord) {
        state.place_merged(id, at);
        if let Some(fleet) = self.view.as_sharded_mut() {
            fleet.mirror_place_merged(id, at);
        }
    }

    /// Replaces the plan through the state's journaled choke point and
    /// mirrors the ownership-split plan into the sharded view.
    pub fn set_plan(&mut self, state: &mut ChipState, goals: Vec<GridCoord>) {
        state.set_plan_from_goals(goals.iter().copied());
        if let Some(fleet) = self.view.as_sharded_mut() {
            fleet.mirror_plan(&goals);
        }
    }

    /// Charges simulated time through the state's journaled choke point
    /// and broadcasts the charge to every shard of the sharded view.
    pub fn charge(&mut self, state: &mut ChipState, ledger: TimeLedger, duration: Seconds) {
        state.charge(ledger, duration);
        if let Some(fleet) = self.view.as_sharded_mut() {
            fleet.mirror_charge(ledger, duration);
        }
    }

    /// Declares the `(id, from, to)` transfers of the upcoming motion
    /// window to the sharded view and plans each shard's local window
    /// through the per-shard router caches — serially, or concurrently
    /// over the live planner's handoff channels when
    /// [`WorkloadConfig::live_planning`] is set. A no-op on the
    /// monolithic path.
    pub fn begin_transfers(&mut self, transfers: &[(ParticleId, GridCoord, GridCoord)]) {
        let router = self.router;
        let live = self.config.live_planning;
        if let Some(fleet) = self.view.as_sharded_mut() {
            fleet.begin_transfers(transfers);
            if live {
                fleet.route_windows_live(router);
            } else {
                fleet.route_windows(router);
            }
        }
    }

    /// Snapshots every accumulator for a checkpoint.
    pub fn snapshot(&self) -> CtxSnapshot {
        CtxSnapshot {
            cycle: self.cycle,
            cycle_seed: self.cycle_seed,
            pass: self.pass,
            requested: self.requested,
            routed: self.routed,
            makespan_steps: self.makespan_steps,
            total_moves: self.total_moves,
            planning: self.planning,
            conflict_free: self.conflict_free,
            moves_checked: self.moves_checked,
            infeasible_moves: self.infeasible_moves,
            budget: self.budget,
            detected: self.detected.clone(),
            detection: self.detection,
            mismatches_initial: self.mismatches_initial,
            recovery_rounds: self.recovery_rounds,
            recovery_moves: self.recovery_moves,
            finals: self.finals,
        }
    }

    /// Restores every accumulator from a checkpoint snapshot (the borrowed
    /// driver resources are supplied by [`PhaseCtx::new`]).
    pub fn restore(&mut self, snapshot: &CtxSnapshot) {
        self.cycle = snapshot.cycle;
        self.cycle_seed = snapshot.cycle_seed;
        self.pass = snapshot.pass;
        self.requested = snapshot.requested;
        self.routed = snapshot.routed;
        self.makespan_steps = snapshot.makespan_steps;
        self.total_moves = snapshot.total_moves;
        self.planning = snapshot.planning;
        self.conflict_free = snapshot.conflict_free;
        self.moves_checked = snapshot.moves_checked;
        self.infeasible_moves = snapshot.infeasible_moves;
        self.budget = snapshot.budget;
        self.detected = snapshot.detected.clone();
        self.detection = snapshot.detection;
        self.mismatches_initial = snapshot.mismatches_initial;
        self.recovery_rounds = snapshot.recovery_rounds;
        self.recovery_moves = snapshot.recovery_moves;
        self.finals = snapshot.finals;
    }

    /// Routes a problem through the shared router, warm-starting from the
    /// driver's [`RouterCache`] when [`WorkloadConfig::reuse_plans`] is set.
    /// Before solving, the state's dirty regions are drained and the
    /// affected staggered tiles invalidated, so the cache never retains
    /// entries for shards whose cells changed. Outcomes are bit-identical
    /// with and without the cache.
    ///
    /// # Errors
    ///
    /// Propagates the router's validation error for ill-formed problems.
    pub fn solve_routing(
        &self,
        state: &mut ChipState,
        problem: &RoutingProblem,
    ) -> Result<RoutingOutcome, ManipulationError> {
        let Some(cache) = self.route_cache else {
            return self.router.solve(problem);
        };
        let mut cache = cache.lock().expect("route cache poisoned");
        match state.take_dirty() {
            DirtyRegions::All => cache.invalidate_all(),
            DirtyRegions::Cells(cells) => {
                let side = self.router.effective_side(problem.min_separation);
                cache.invalidate_cells(problem.dims, side, &cells);
            }
        }
        self.router.solve_cached(problem, &mut cache)
    }

    /// Checks every move of a plan against the force envelope and feeds the
    /// changed electrode pairs into the row-update budget — shared by route
    /// phases and the recovery re-plans.
    pub fn check_planned_moves(&mut self, outcome: &RoutingOutcome, dims: GridDims) {
        let speed = self.envelope.pitch / self.config.step_period;
        let feasible = self.envelope.permits(speed);
        let all_paths = || outcome.paths.iter().chain(outcome.stranded.iter());
        let horizon = all_paths().map(|p| p.arrival_step()).max().unwrap_or(0);
        let mut changed: Vec<GridCoord> = Vec::new();
        for t in 1..=horizon {
            changed.clear();
            for path in all_paths() {
                let prev = path.position_at(t - 1);
                let cur = path.position_at(t);
                if prev != cur {
                    self.moves_checked += 1;
                    if !feasible {
                        self.infeasible_moves += 1;
                    }
                    changed.push(prev);
                    changed.push(cur);
                }
            }
            if !changed.is_empty() {
                self.budget
                    .record(&self.programming.plan_update(dims, &changed));
            }
        }
    }

    /// Captures the final plan-vs-reality counts from the current state
    /// (overwriting any earlier capture — the *last* on-chip snapshot wins).
    pub(crate) fn capture_finals(&mut self, state: &mut ChipState) {
        let mismatches_final = match &self.detected {
            Some(map) => map
                .diff_count(state.plan())
                .expect("detected and plan maps share the array dims"),
            None => state.plan().occupied_count(),
        };
        let occupancy_detected = self
            .detected
            .as_ref()
            .map(OccupancyMap::occupied_count)
            .unwrap_or(0);
        self.finals = Some(FinalCounts {
            mismatches_final,
            true_mismatches_final: state.true_mismatches(),
            occupancy_detected,
        });
    }
}

// ---------------------------------------------------------------------------
// Workload geometry: loading lattices and sort targets.
// ---------------------------------------------------------------------------

/// A sparse lattice of sites over `x_lo..x_hi`, rows `1..rows-1`, with the
/// given spacing — the building block of loading and target patterns.
pub(crate) fn lattice(dims: GridDims, x_lo: u32, x_hi: u32, spacing: u32) -> Vec<GridCoord> {
    let mut slots = Vec::new();
    let mut y = 1;
    while y < dims.rows - 1 {
        let mut x = x_lo;
        while x < x_hi {
            slots.push(GridCoord::new(x, y));
            x += spacing;
        }
        y += spacing;
    }
    slots
}

/// The two sort-target lattices of the full-array sort workload: one in the
/// left third, one in the right, spaced `min_separation + 2` so they stay
/// traversable while occupied.
pub(crate) fn sort_lattices(
    dims: GridDims,
    min_separation: u32,
) -> (Vec<GridCoord>, Vec<GridCoord>) {
    let spacing = min_separation + 2;
    let left = lattice(dims, 1, dims.cols / 3, spacing);
    let right = lattice(dims, 2 * dims.cols / 3, dims.cols - 1, spacing);
    (left, right)
}

/// Capacity of the canned sort workload (both target lattices together) —
/// the load clamp of the canned cycle.
pub fn sort_capacity(dims: GridDims, min_separation: u32) -> usize {
    let (left, right) = sort_lattices(dims, min_separation);
    left.len() + right.len()
}

/// The seeded batch placement: a random subset of the whole-array loading
/// lattice (spacing `min_separation + 1`, the densest loadable packing),
/// truncated to `particles` (and `capacity_clamp` if given) and sorted
/// row-major. The RNG stream is a pure function of
/// `(seed, particles, min_separation via the lattice)`, unchanged from the
/// original `sort_problem` so seeded placements stay bit-identical.
pub fn loading_sites(
    dims: GridDims,
    particles: usize,
    min_separation: u32,
    seed: u64,
    capacity_clamp: Option<usize>,
) -> Vec<GridCoord> {
    let load_spacing = min_separation + 1;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ particles as u64);
    let mut starts = lattice(dims, 1, dims.cols - 1, load_spacing);
    starts.shuffle(&mut rng);
    starts.truncate(particles.min(capacity_clamp.unwrap_or(usize::MAX)));
    starts.sort_unstable_by_key(|c| (c.y, c.x));
    starts
}

/// Assigns the alternating sort goals: even-indexed particles to the left
/// lattice, odd-indexed to the right, overflowing into whichever side still
/// has slots — exactly the original `sort_problem` assignment.
pub(crate) fn assign_sort_goals(
    particles: &[(ParticleId, GridCoord)],
    left: &[GridCoord],
    right: &[GridCoord],
) -> Vec<RoutingRequest> {
    let mut requests = Vec::with_capacity(particles.len());
    let (mut li, mut ri) = (0usize, 0usize);
    for (i, (id, start)) in particles.iter().enumerate() {
        let goal = if i % 2 == 0 && li < left.len() {
            li += 1;
            left[li - 1]
        } else if ri < right.len() {
            ri += 1;
            right[ri - 1]
        } else if li < left.len() {
            li += 1;
            left[li - 1]
        } else {
            // Both target lattices are full — only reachable when the
            // population was loaded without the sort-capacity clamp (the
            // canned cycle always clamps); the overflow holds position.
            *start
        };
        requests.push(RoutingRequest {
            id: *id,
            start: *start,
            goal,
        });
    }
    requests
}

/// Greedily pairs each stray with its nearest (Chebyshev) unused vacancy;
/// leftover strays or vacancies stay unpaired for a later round.
pub(crate) fn pair_nearest(
    strays: &[GridCoord],
    vacancies: &[GridCoord],
) -> Vec<(GridCoord, GridCoord)> {
    let mut used = vec![false; vacancies.len()];
    let mut pairs = Vec::with_capacity(strays.len().min(vacancies.len()));
    for &from in strays {
        let mut best: Option<(u32, usize)> = None;
        for (j, &slot) in vacancies.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d = from.chebyshev(slot);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, j));
            }
        }
        let Some((_, j)) = best else { break };
        used[j] = true;
        pairs.push((from, vacancies[j]));
    }
    pairs
}

// ---------------------------------------------------------------------------
// The five phases.
// ---------------------------------------------------------------------------

/// Loads a seeded batch onto the loading lattice (fluidics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Load {
    /// Particles requested (the placement truncates to the lattice and the
    /// optional capacity clamp).
    pub particles: usize,
    /// Optional cap on placed particles (the canned cycle clamps to the
    /// sort targets' capacity, as the monolithic driver did).
    pub capacity_clamp: Option<usize>,
}

impl AssayPhase for Load {
    fn name(&self) -> &'static str {
        "load"
    }

    fn run(&self, state: &mut ChipState, ctx: &mut PhaseCtx) -> Result<PhaseReport, PhaseError> {
        if state.fault_tripped() {
            return Err(PhaseError::interrupted(self.name()));
        }
        let dims = state.dims();
        let sep = state.grid().min_separation();
        // Ids continue after the largest already on the grid so repeated
        // loads stay unique.
        let first_id = state
            .grid()
            .iter_particles()
            .last()
            .map(|(id, _)| id.0 + 1)
            .unwrap_or(0);
        // Salt the placement stream with the id offset so a repeated load
        // draws a *fresh* batch instead of replaying the first one (whose
        // sites are all occupied by now). The first load of a cycle has
        // `first_id == 0` and keeps the exact historical stream.
        let seed = ctx.cycle_seed ^ first_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let starts = loading_sites(dims, self.particles, sep, seed, self.capacity_clamp);
        let mut placed = 0usize;
        for start in &starts {
            // On an empty grid every lattice site is placeable (they are
            // mutually separated); a repeated load skips sites an earlier
            // batch already crowds.
            if ctx
                .place(state, ParticleId(first_id + placed as u64), *start)
                .is_ok()
            {
                placed += 1;
            }
            if state.fault_tripped() {
                return Err(PhaseError::interrupted(self.name()));
            }
        }
        ctx.requested += placed;
        ctx.charge(state, TimeLedger::Fluidics, ctx.config.load_time);
        Ok(PhaseReport {
            phase: self.name().to_owned(),
            time: TimeBreakdown::default(),
            moves: 0,
            particles_after: state.particle_count(),
            detail: format!("{placed} particles loaded (requested {})", self.particles),
        })
    }
}

/// Where a route phase sends the current population.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteTarget {
    /// The canned full-array sort: even-indexed particles to a lattice in
    /// the left third, odd-indexed to the right third.
    SortSplit,
    /// Pairs consecutive particles (by id) and routes each pair to adjacent
    /// slots — separated by exactly the minimum cage separation, the closest
    /// legal approach — on a central lattice. The protocol-level "bring
    /// these two populations together" step the monolithic driver could not
    /// express.
    MergePairs,
    /// Every particle holds its position (stationary obstacle routing; a
    /// no-op that still exercises the planner).
    Hold,
}

impl RouteTarget {
    /// Short annotation for reports.
    fn label(&self) -> &'static str {
        match self {
            RouteTarget::SortSplit => "sort-split",
            RouteTarget::MergePairs => "merge-pairs",
            RouteTarget::Hold => "hold",
        }
    }

    /// Builds the routing requests for the current population (in id
    /// order, so seeded runs are deterministic).
    fn requests(&self, state: &ChipState, sep: u32) -> Vec<RoutingRequest> {
        let dims = state.dims();
        let particles: Vec<(ParticleId, GridCoord)> = state.grid().iter_particles().collect();
        match self {
            RouteTarget::SortSplit => {
                let (left, right) = sort_lattices(dims, sep);
                assign_sort_goals(&particles, &left, &right)
            }
            RouteTarget::MergePairs => {
                // Anchor slots on a central lattice wide enough that pairs
                // stay mutually separated: each anchor hosts a pair at
                // (anchor, anchor + sep·x̂).
                let pitch = 2 * sep + 2;
                let x_lo = dims.cols / 3 + 1;
                let x_hi = (2 * dims.cols / 3).saturating_sub(sep + 1);
                let mut anchors = Vec::new();
                let mut y = 1;
                while y < dims.rows - 1 {
                    let mut x = x_lo;
                    while x < x_hi {
                        anchors.push(GridCoord::new(x, y));
                        x += pitch;
                    }
                    y += pitch;
                }
                let mut requests = Vec::with_capacity(particles.len());
                for (pair, chunk) in particles.chunks(2).enumerate() {
                    match (chunk, anchors.get(pair)) {
                        ([(id_a, start_a), (id_b, start_b)], Some(anchor)) => {
                            requests.push(RoutingRequest {
                                id: *id_a,
                                start: *start_a,
                                goal: *anchor,
                            });
                            requests.push(RoutingRequest {
                                id: *id_b,
                                start: *start_b,
                                goal: GridCoord::new(anchor.x + sep, anchor.y),
                            });
                        }
                        _ => {
                            // Unpaired leftover or anchors exhausted: hold.
                            for (id, start) in chunk {
                                requests.push(RoutingRequest {
                                    id: *id,
                                    start: *start,
                                    goal: *start,
                                });
                            }
                        }
                    }
                }
                requests
            }
            RouteTarget::Hold => particles
                .iter()
                .map(|(id, start)| RoutingRequest {
                    id: *id,
                    start: *start,
                    goal: *start,
                })
                .collect(),
        }
    }
}

/// Routes the population to a [`RouteTarget`] with the incremental sharded
/// planner, checks every planned move against the force envelope and the
/// programming budget, executes the plan, and replaces the plan map with
/// the target goals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Where to send the population.
    pub target: RouteTarget,
}

impl AssayPhase for Route {
    fn name(&self) -> &'static str {
        "route"
    }

    fn run(&self, state: &mut ChipState, ctx: &mut PhaseCtx) -> Result<PhaseReport, PhaseError> {
        if state.fault_tripped() {
            return Err(PhaseError::interrupted(self.name()));
        }
        let dims = state.dims();
        let sep = state.grid().min_separation();
        let requests = self.target.requests(state, sep);
        if requests.is_empty() {
            return Ok(PhaseReport {
                phase: format!("{}:{}", self.name(), self.target.label()),
                time: TimeBreakdown::default(),
                moves: 0,
                particles_after: state.particle_count(),
                detail: "nothing to route".into(),
            });
        }
        let goals: Vec<GridCoord> = requests.iter().map(|r| r.goal).collect();
        let mut problem = RoutingProblem::new(dims, requests);
        problem.min_separation = sep;

        // Protocols are data and can demand the impossible (e.g. sorting a
        // population larger than the target capacity): an unroutable target
        // degrades into a skipped motion phase, never a panic. The canned
        // cycle clamps its load to the sort capacity, so this branch is
        // unreachable on the legacy-equivalent path. The solver validates
        // internally, so its error *is* the degrade signal.
        let started = Instant::now();
        let Ok(outcome) = ctx.solve_routing(state, &problem) else {
            return Ok(PhaseReport {
                phase: format!("{}:{}", self.name(), self.target.label()),
                time: TimeBreakdown::default(),
                moves: 0,
                particles_after: state.particle_count(),
                detail: format!(
                    "target unroutable for {} particles; routing skipped",
                    problem.requests.len()
                ),
            });
        };
        ctx.planning += Seconds::new(started.elapsed().as_secs_f64());
        ctx.conflict_free &= outcome.is_conflict_free(sep);
        ctx.check_planned_moves(&outcome, dims);
        ctx.charge(
            state,
            TimeLedger::Motion,
            ctx.config.step_period * outcome.makespan as f64,
        );

        // Execute: routed particles end on their targets, stranded ones
        // wherever their best-effort trajectory stopped. Lift every moved
        // particle first, then set the finals — applying moves one at a
        // time would trip the separation check against particles that have
        // not been moved yet. The window's transfers are declared to the
        // sharded view up front so each lift/settle mirror can journal its
        // handoff half in application order.
        let moved = || outcome.paths.iter().chain(outcome.stranded.iter());
        let transfers: Vec<(ParticleId, GridCoord, GridCoord)> = moved()
            .filter_map(|path| Some((path.id, path.positions[0], *path.positions.last()?)))
            .collect();
        ctx.begin_transfers(&transfers);
        for path in moved() {
            ctx.remove(state, path.id).map_err(|e| {
                PhaseError::invariant(self.name(), format!("lifting routed particle: {e}"))
            })?;
            if state.fault_tripped() {
                return Err(PhaseError::interrupted(self.name()));
            }
        }
        for path in moved() {
            let last = *path.positions.last().ok_or_else(|| {
                PhaseError::invariant(self.name(), "router produced an empty path")
            })?;
            ctx.place(state, path.id, last).map_err(|e| {
                PhaseError::invariant(self.name(), format!("settling routed particle: {e}"))
            })?;
            if state.fault_tripped() {
                return Err(PhaseError::interrupted(self.name()));
            }
        }
        ctx.set_plan(state, goals);

        ctx.routed += outcome.paths.len();
        ctx.makespan_steps += outcome.makespan;
        ctx.total_moves += outcome.total_moves;
        Ok(PhaseReport {
            phase: format!("{}:{}", self.name(), self.target.label()),
            time: TimeBreakdown::default(),
            moves: outcome.total_moves,
            particles_after: state.particle_count(),
            detail: format!(
                "{}/{} routed in {} steps",
                outcome.paths.len(),
                problem.requests.len(),
                outcome.makespan
            ),
        })
    }
}

/// Synthesizes one full-array detection scan through the noisy sensor chain
/// and diffs the decisions against the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sense {
    /// Frames averaged (None = the workload's `detection_frames`).
    pub frames: Option<u32>,
}

impl AssayPhase for Sense {
    fn name(&self) -> &'static str {
        "sense"
    }

    fn run(&self, state: &mut ChipState, ctx: &mut PhaseCtx) -> Result<PhaseReport, PhaseError> {
        if state.fault_tripped() {
            return Err(PhaseError::interrupted(self.name()));
        }
        let dims = state.dims();
        let frames = self.frames.unwrap_or(ctx.config.detection_frames).max(1);
        let scan_time = ctx
            .scan
            .averaged_scan_time(dims, &FrameAverager::new(frames));
        ctx.charge(state, TimeLedger::Sensing, scan_time);
        if state.fault_tripped() {
            return Err(PhaseError::interrupted(self.name()));
        }
        let result = ctx.scanner.scan_source(state, frames, ctx.pass);
        ctx.pass += 1;
        ctx.detection.merge(&result.stats);
        let mismatches = result
            .map
            .diff_count(state.plan())
            .map_err(|e| PhaseError::invariant(self.name(), e.to_string()))?;
        if ctx.mismatches_initial.is_none() {
            ctx.mismatches_initial = Some(mismatches);
        }
        let occupied = result.map.occupied_count();
        ctx.detected = Some(result.map);
        Ok(PhaseReport {
            phase: self.name().to_owned(),
            time: TimeBreakdown::default(),
            moves: 0,
            particles_after: state.particle_count(),
            detail: format!(
                "{occupied} occupied detected, {mismatches} mismatches vs plan ({frames} frames)"
            ),
        })
    }
}

/// The bounded closed-loop recovery: re-scan suspect sites with heavier
/// averaging, pair confirmed strays with vacant plan slots, re-route them
/// with the incremental router, and verify the touched sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recover {
    /// Policy override (None = the workload's configured policy).
    pub policy: Option<RecoveryPolicy>,
}

impl AssayPhase for Recover {
    fn name(&self) -> &'static str {
        "recover"
    }

    fn run(&self, state: &mut ChipState, ctx: &mut PhaseCtx) -> Result<PhaseReport, PhaseError> {
        if state.fault_tripped() {
            return Err(PhaseError::interrupted(self.name()));
        }
        let dims = state.dims();
        let sep = state.grid().min_separation();
        let policy = self.policy.unwrap_or(ctx.config.recovery);
        let scanner = ctx.scanner;
        let scan = ctx.scan;
        let rescan_frames = ctx
            .config
            .detection_frames
            .saturating_mul(policy.rescan_factor.max(1));
        let Some(mut detected) = ctx.detected.take() else {
            // No scan to recover against: nothing to do.
            return Ok(PhaseReport {
                phase: self.name().to_owned(),
                time: TimeBreakdown::default(),
                moves: 0,
                particles_after: state.particle_count(),
                detail: "no detection map (sense phase missing)".into(),
            });
        };

        let moves_before = ctx.recovery_moves;
        let rounds_before = ctx.recovery_rounds;
        for _ in 0..policy.max_rounds {
            if state.fault_tripped() {
                return Err(PhaseError::interrupted(self.name()));
            }
            let suspects: Vec<GridCoord> = dims
                .iter()
                .filter(|c| detected.get(*c) != state.plan().get(*c))
                .collect();
            if suspects.is_empty() {
                break;
            }
            ctx.recovery_rounds += 1;

            // Re-scan every suspect with heavier averaging; most detection
            // errors dissolve here. Charge the rows actually re-read.
            let rows: HashSet<u32> = suspects.iter().map(|c| c.y).collect();
            ctx.charge(
                state,
                TimeLedger::Recovery,
                scan.row_time(dims.cols) * (rows.len() as f64 * rescan_frames as f64),
            );
            let truth = state.occupancy();
            for &site in &suspects {
                detected.set(
                    site,
                    scanner.sense_site(truth.get(site), site, rescan_frames, ctx.pass),
                );
            }
            ctx.pass += 1;

            // Decide: confirmed strays are detected particles off the plan;
            // vacancies are plan slots the readout still reports empty.
            let strays: Vec<GridCoord> = suspects
                .iter()
                .copied()
                .filter(|c| {
                    detected.get(*c) == Occupancy::Occupied
                        && state.plan().get(*c) == Occupancy::Empty
                })
                .collect();
            let vacancies: Vec<GridCoord> = suspects
                .iter()
                .copied()
                .filter(|c| {
                    detected.get(*c) == Occupancy::Empty
                        && state.plan().get(*c) == Occupancy::Occupied
                })
                .collect();
            if strays.is_empty() || vacancies.is_empty() {
                // Nothing actionable; the re-scan may already have cleared
                // the suspects — the next round re-checks and exits.
                continue;
            }

            // Act: pair each stray with the nearest vacancy and re-route.
            // Every other site the scanner reports occupied — particles on
            // plan *and* strays left unpaired when strays outnumber the
            // vacancies — enters the problem as a stationary request, so
            // corrective paths are planned around every known particle, not
            // just the ones being moved.
            let pairs = pair_nearest(&strays, &vacancies);
            let movers = pairs.len();
            let mut requests: Vec<RoutingRequest> = pairs
                .iter()
                .enumerate()
                .map(|(k, &(from, to))| RoutingRequest {
                    id: ParticleId(k as u64),
                    start: from,
                    goal: to,
                })
                .collect();
            let moving: HashSet<GridCoord> = pairs.iter().map(|&(from, _)| from).collect();
            for site in dims.iter() {
                if detected.get(site) == Occupancy::Occupied && !moving.contains(&site) {
                    requests.push(RoutingRequest {
                        id: ParticleId(requests.len() as u64),
                        start: site,
                        goal: site,
                    });
                }
            }
            let mut recovery_problem = RoutingProblem::new(dims, requests);
            recovery_problem.min_separation = sep;
            if recovery_problem.validate().is_err() {
                // A surviving false positive sits too close to a real
                // particle: no conflict-free plan exists for this reading.
                break;
            }
            let Ok(recovery_outcome) = ctx.solve_routing(state, &recovery_problem) else {
                break;
            };
            ctx.check_planned_moves(&recovery_outcome, dims);
            ctx.charge(
                state,
                TimeLedger::Recovery,
                ctx.config.step_period * recovery_outcome.makespan as f64,
            );
            ctx.recovery_moves += recovery_outcome.total_moves;

            // Execute on the particles actually present. A commanded move of
            // a phantom detection drags an empty cage — time passes, nothing
            // relocates, and the next verification scan still flags it.
            let occupant: BTreeMap<GridCoord, ParticleId> = state
                .grid()
                .iter_particles()
                .map(|(id, c)| (c, id))
                .collect();
            let mut touched: Vec<GridCoord> = Vec::new();
            let mut moved: Vec<(ParticleId, GridCoord, GridCoord)> = Vec::new();
            for path in recovery_outcome
                .paths
                .iter()
                .chain(recovery_outcome.stranded.iter())
            {
                if path.id.0 >= movers as u64 {
                    continue; // stationary on-plan particle
                }
                let from = path.positions[0];
                let to = *path.positions.last().ok_or_else(|| {
                    PhaseError::invariant(self.name(), "router produced an empty path")
                })?;
                touched.push(from);
                touched.push(to);
                if from == to {
                    continue;
                }
                if let Some(&id) = occupant.get(&from) {
                    moved.push((id, from, to));
                }
            }
            ctx.begin_transfers(&moved);
            for &(id, _, _) in &moved {
                ctx.remove(state, id).map_err(|e| {
                    PhaseError::invariant(self.name(), format!("lifting tracked particle: {e}"))
                })?;
                if state.fault_tripped() {
                    return Err(PhaseError::interrupted(self.name()));
                }
            }
            for &(id, from, to) in &moved {
                if ctx.place(state, id, to).is_err() {
                    // An undetected particle blocks the slot; the cell
                    // stays where it was (its own cage is still free).
                    if ctx.place(state, id, from).is_err() {
                        ctx.place_merged(state, id, from);
                    }
                }
                if state.fault_tripped() {
                    return Err(PhaseError::interrupted(self.name()));
                }
            }

            // Verify the sites the moves touched so the loop (and the final
            // report) sees the post-move readout, not a stale map.
            let rows: HashSet<u32> = touched.iter().map(|c| c.y).collect();
            ctx.charge(
                state,
                TimeLedger::Recovery,
                scan.row_time(dims.cols) * (rows.len() as f64 * rescan_frames as f64),
            );
            let truth = state.occupancy();
            for &site in &touched {
                detected.set(
                    site,
                    scanner.sense_site(truth.get(site), site, rescan_frames, ctx.pass),
                );
            }
            ctx.pass += 1;
        }
        let moves = ctx.recovery_moves - moves_before;
        let rounds = ctx.recovery_rounds - rounds_before;
        ctx.detected = Some(detected);
        Ok(PhaseReport {
            phase: self.name().to_owned(),
            time: TimeBreakdown::default(),
            moves,
            particles_after: state.particle_count(),
            detail: format!("{rounds} rounds, {moves} corrective moves"),
        })
    }
}

/// Flushes the batch out through the outlet (fluidics), snapshotting the
/// final plan-vs-reality counts just before the chip empties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flush;

impl AssayPhase for Flush {
    fn name(&self) -> &'static str {
        "flush"
    }

    fn run(&self, state: &mut ChipState, ctx: &mut PhaseCtx) -> Result<PhaseReport, PhaseError> {
        if state.fault_tripped() {
            return Err(PhaseError::interrupted(self.name()));
        }
        ctx.capture_finals(state);
        let flushed = state.particle_count();
        let ids: Vec<ParticleId> = state.grid().iter_particles().map(|(id, _)| id).collect();
        for id in ids {
            ctx.remove(state, id).map_err(|e| {
                PhaseError::invariant(self.name(), format!("flushing tracked particle: {e}"))
            })?;
            if state.fault_tripped() {
                return Err(PhaseError::interrupted(self.name()));
            }
        }
        ctx.charge(state, TimeLedger::Fluidics, ctx.config.flush_time);
        Ok(PhaseReport {
            phase: self.name().to_owned(),
            time: TimeBreakdown::default(),
            moves: 0,
            particles_after: 0,
            detail: format!("{flushed} particles flushed"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_nearest_matches_each_stray_to_its_closest_slot() {
        let strays = [GridCoord::new(0, 0), GridCoord::new(10, 10)];
        let vacancies = [GridCoord::new(9, 9), GridCoord::new(1, 1)];
        let pairs = pair_nearest(&strays, &vacancies);
        assert_eq!(
            pairs,
            vec![
                (GridCoord::new(0, 0), GridCoord::new(1, 1)),
                (GridCoord::new(10, 10), GridCoord::new(9, 9)),
            ]
        );
        // Leftovers stay unpaired.
        assert_eq!(pair_nearest(&strays, &vacancies[..1]).len(), 1);
        assert_eq!(pair_nearest(&[], &vacancies).len(), 0);
    }

    #[test]
    fn loading_sites_are_deterministic_and_clamped() {
        let dims = GridDims::square(32);
        let a = loading_sites(dims, 20, 2, 7, None);
        let b = loading_sites(dims, 20, 2, 7, None);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let clamped = loading_sites(dims, 20, 2, 7, Some(5));
        assert_eq!(clamped.len(), 5);
        // Row-major order.
        for pair in a.windows(2) {
            assert!((pair[0].y, pair[0].x) < (pair[1].y, pair[1].x));
        }
    }

    #[test]
    fn merge_pairs_targets_put_partners_at_minimum_separation() {
        let dims = GridDims::square(48);
        let mut state = ChipState::with_separation(dims, 2);
        for (i, site) in loading_sites(dims, 8, 2, 3, None).iter().enumerate() {
            state.place(ParticleId(i as u64), *site).unwrap();
        }
        let requests = RouteTarget::MergePairs.requests(&state, 2);
        assert_eq!(requests.len(), 8);
        let mut problem = RoutingProblem::new(dims, requests.clone());
        problem.min_separation = 2;
        assert!(problem.validate().is_ok(), "merge goals must be routable");
        for chunk in requests.chunks(2) {
            if let [a, b] = chunk {
                if a.goal != a.start {
                    assert_eq!(a.goal.chebyshev(b.goal), 2, "{a:?} vs {b:?}");
                }
            }
        }
    }
}
