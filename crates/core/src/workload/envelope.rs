//! The force-feasibility envelope of cage motion.

use crate::biochip::Biochip;
use labchip_physics::dep::TrapAnalysis;
use labchip_physics::drag::StokesDrag;
use labchip_units::{GridCoord, MetersPerSecond, Newtons};
use serde::{Deserialize, Serialize};

/// The force-feasibility envelope of cage motion: how fast a cage may be
/// stepped before the trapped cell falls out of the moving potential well.
///
/// Derived once per workload from the cached field engine: the DEP holding
/// force of a reference cage (sampled on a
/// [`FieldCache`](labchip_physics::field::cache::FieldCache) lattice)
/// balanced against Stokes drag gives the maximum speed at which the cell
/// still follows; every planned move is then a cheap comparison against the
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForceEnvelope {
    /// Maximum lateral restoring force of the reference cage.
    pub holding_force: Newtons,
    /// Maximum cage speed the holding force can drag a cell at.
    pub max_speed: MetersPerSecond,
    /// Electrode pitch of the array the envelope was derived for — one
    /// cage move covers exactly this distance.
    pub pitch: labchip_units::Meters,
}

impl ForceEnvelope {
    /// Builds the envelope for a chip's reference particle, medium and
    /// drive, probing a single cage at the centre of a small replica array
    /// through the cached field engine.
    pub fn from_reference_cage(side: u32) -> Self {
        let mut chip = Biochip::small_reference(side.max(8));
        let site = GridCoord::new(chip.array().dims().cols / 2, chip.array().dims().rows / 2);
        chip.program_single_cage(site)
            .expect("centre electrode exists");

        let cache = chip.field_cache();
        let dep = chip.dep_model();
        let pitch = chip.array().pitch().get();
        let center = chip.array().to_electrode_plane().electrode_center(site);
        let seed = labchip_units::Vec3::new(center.x, center.y, 1.2 * pitch);
        let chamber = chip.array().chamber_height().get();
        let analysis = TrapAnalysis::analyze(
            &cache,
            &dep,
            seed,
            pitch,
            (0.4 * pitch, chamber - 0.4 * pitch),
        );

        let drag = StokesDrag::new(chip.reference_particle(), chip.medium());
        Self {
            holding_force: analysis.holding_force,
            max_speed: drag.terminal_velocity(analysis.holding_force),
            pitch: chip.array().pitch(),
        }
    }

    /// The paper's reference envelope (20 µm pitch, 3.3 V, viable cell).
    pub fn date05_reference() -> Self {
        Self::from_reference_cage(16)
    }

    /// Whether a cage step at `speed` keeps the cell trapped.
    pub fn permits(&self, speed: MetersPerSecond) -> bool {
        speed <= self.max_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_physical() {
        let envelope = ForceEnvelope::date05_reference();
        // Tens of piconewtons of holding force, and a max speed comfortably
        // above the paper's 10–100 µm/s operating range.
        assert!(envelope.holding_force.get() > 1e-13);
        assert!(envelope.max_speed.as_micrometers_per_second() > 100.0);
        assert!(envelope.permits(MetersPerSecond::from_micrometers_per_second(50.0)));
        assert!(!envelope.permits(MetersPerSecond::new(1.0)));
    }
}
