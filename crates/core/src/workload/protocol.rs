//! Protocols as data: serde-round-trippable phase lists and the thin
//! runner that executes them.
//!
//! A [`Protocol`] is an ordered list of [`PhaseSpec`]s with per-phase knobs
//! — the declarative form of an assay. [`ProtocolRunner`] is deliberately
//! thin: it materialises each spec into its [`AssayPhase`], runs the phases
//! in order over one shared [`ChipState`], snapshots the time ledger around
//! each phase (so every [`PhaseReport`] carries exactly what that phase
//! cost), and assembles the final [`CycleReport`] from the accumulated
//! [`PhaseCtx`]. The canned cycle ([`Protocol::canned_cycle`]) is the
//! driver's standard `load → route → sense → recover → flush` sequence;
//! anything else — repeated sense/route rounds, merge assays, wash-free
//! cycles — is just a different list.
//!
//! ## Journal, checkpoint, resume
//!
//! [`ProtocolRunner::run_journaled`] attaches an event
//! [`Journal`] to the chip state, so every mutation
//! of the run is recorded and
//! [`replay`](labchip_manipulation::journal::replay) reconstructs the
//! final state bit-for-bit — the equivalence oracle that replaced the
//! retired legacy monolith. [`ProtocolRunner::run_with_fault`] arms a
//! seeded [`FaultPlan`] kill point on top; when it
//! trips, the run dies cooperatively and returns the [`Checkpoint`] taken
//! at the start of the interrupted phase (chip snapshot + ctx snapshot +
//! journal offset). [`ProtocolRunner::resume`] restores the checkpoint
//! and finishes the protocol; because every RNG stream is a pure function
//! of seeds and counters captured in the checkpoint, the resumed run
//! reaches a final state **bit-identical** to an uninterrupted execution
//! — the property scenario E14 sweeps across ≥50 kill points.

use super::envelope::ForceEnvelope;
use super::phases::{
    sort_capacity, AssayPhase, CtxSnapshot, Flush, Load, PhaseCtx, PhaseError, PhaseReport,
    Recover, Route, RouteTarget, Sense, StateView,
};
use super::{CycleReport, RecoveryPolicy, WorkloadConfig};
use labchip_array::addressing::ProgrammingInterface;
use labchip_manipulation::fleet::ShardedState;
use labchip_manipulation::journal::{FaultPlan, Journal};
use labchip_manipulation::protocol::TimeBreakdown;
use labchip_manipulation::sharding::{IncrementalRouter, RouterCache};
use labchip_manipulation::state::{ChipState, ChipStateSnapshot};
use labchip_sensing::array_scan::ArrayScanner;
use labchip_sensing::scan::ScanTiming;
use labchip_units::GridDims;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One declarative phase of a [`Protocol`], with its knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseSpec {
    /// Load a seeded batch (see [`Load`]).
    Load {
        /// Particles requested.
        particles: usize,
        /// Optional cap on placed particles.
        capacity_clamp: Option<usize>,
    },
    /// Route the population to a target (see [`Route`]).
    Route {
        /// Where to send the population.
        target: RouteTarget,
    },
    /// Scan the whole array (see [`Sense`]).
    Sense {
        /// Frames averaged (None = the workload's `detection_frames`).
        frames: Option<u32>,
    },
    /// Close the loop on detection/plan mismatches (see [`Recover`]).
    Recover {
        /// Policy override (None = the workload's configured policy).
        policy: Option<RecoveryPolicy>,
    },
    /// Flush the batch (see [`Flush`]).
    Flush,
}

impl PhaseSpec {
    /// Materialises the spec into its executable phase.
    pub fn build(&self) -> Box<dyn AssayPhase> {
        match self {
            PhaseSpec::Load {
                particles,
                capacity_clamp,
            } => Box::new(Load {
                particles: *particles,
                capacity_clamp: *capacity_clamp,
            }),
            PhaseSpec::Route { target } => Box::new(Route {
                target: target.clone(),
            }),
            PhaseSpec::Sense { frames } => Box::new(Sense { frames: *frames }),
            PhaseSpec::Recover { policy } => Box::new(Recover { policy: *policy }),
            PhaseSpec::Flush => Box::new(Flush),
        }
    }
}

/// A named, ordered, serde-round-trippable list of assay phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    /// Human-readable protocol name.
    pub name: String,
    /// The phases, executed in order.
    pub phases: Vec<PhaseSpec>,
}

impl Protocol {
    /// Creates an empty protocol.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            phases: Vec::new(),
        }
    }

    /// Appends a phase (builder style).
    pub fn with_phase(mut self, phase: PhaseSpec) -> Self {
        self.phases.push(phase);
        self
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` when the protocol has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The canned `load → route(sort) → sense → recover → flush` cycle the
    /// [`BatchDriver`](super::BatchDriver) has always run — now expressed
    /// as data. `dims`/`min_separation` fix the sort-capacity load clamp
    /// exactly as the monolithic driver clamped it.
    pub fn canned_cycle(dims: GridDims, min_separation: u32, particles: usize) -> Self {
        Self {
            name: "canned-cycle".into(),
            phases: vec![
                PhaseSpec::Load {
                    particles,
                    capacity_clamp: Some(sort_capacity(dims, min_separation)),
                },
                PhaseSpec::Route {
                    target: RouteTarget::SortSplit,
                },
                PhaseSpec::Sense { frames: None },
                PhaseSpec::Recover { policy: None },
                PhaseSpec::Flush,
            ],
        }
    }
}

/// The record of one executed protocol: the assembled cycle report, the
/// per-phase ledger, and the final chip state (for inspection and
/// invariant checks).
#[derive(Debug)]
pub struct ProtocolOutcome {
    /// The cycle-level report (same shape the monolithic driver produced).
    pub report: CycleReport,
    /// One report per executed phase, in order.
    pub phases: Vec<PhaseReport>,
    /// The chip state after the last phase.
    pub state: ChipState,
}

/// A resumable point in a protocol execution: everything needed to
/// continue from the start of phase `next_phase` — the durable chip state,
/// every [`PhaseCtx`] accumulator, the journal offset the run had reached,
/// and the reports of the phases already completed.
///
/// Serde-round-trippable: [`Checkpoint::to_json`] /
/// [`Checkpoint::from_json`] are the on-disk form a chip-farm worker
/// would persist between assays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The protocol being executed.
    pub protocol: Protocol,
    /// Zero-based cycle index of the run.
    pub cycle: usize,
    /// Index of the next phase to execute (the interrupted phase re-runs
    /// from its start — phase-internal determinism makes that exact).
    pub next_phase: usize,
    /// The durable chip state at the start of `next_phase`.
    pub state: ChipStateSnapshot,
    /// Every cycle accumulator at the start of `next_phase`.
    pub ctx: CtxSnapshot,
    /// Journal length when the checkpoint was taken: replaying the journal
    /// truncated to this offset reconstructs `state` exactly.
    pub journal_offset: usize,
    /// Reports of the phases completed before the checkpoint.
    pub completed: Vec<PhaseReport>,
}

impl Checkpoint {
    /// Serializes the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self)
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error for malformed input — including
    /// non-finite ledger floats, which the JSON writer encodes as `null`
    /// and the typed reader rejects rather than resurrecting as NaN.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// A run killed by an injected fault: the resume point, the journal up to
/// the kill, and what tripped.
#[derive(Debug)]
pub struct InterruptedRun {
    /// The checkpoint taken at the start of the interrupted phase.
    pub checkpoint: Checkpoint,
    /// The journal of everything executed before the kill (its prefix of
    /// length [`Checkpoint::journal_offset`] replays to the checkpoint
    /// state; the tail is the interrupted phase's partial work).
    pub journal: Journal,
    /// The error that stopped the run.
    pub error: PhaseError,
}

/// Cooperative control over a long-running protocol execution, polled at
/// every phase boundary by [`ProtocolRunner::run_controlled`] and
/// [`ProtocolRunner::resume_controlled`].
///
/// This is the hook a job service (the chip farm) hangs cancellation and
/// per-phase progress on: `should_stop` lets an external flag end the run
/// at the next boundary — with a [`Checkpoint`] in hand, so the job can be
/// resumed later or discarded — and the phase callbacks stream job-level
/// telemetry without the runner knowing who is listening.
pub trait RunControl {
    /// Polled at the start of every phase, before it runs. Returning
    /// `true` stops the run at this boundary; the [`StoppedRun`] carries
    /// the checkpoint taken there.
    fn should_stop(&self, next_phase: usize) -> bool;

    /// A phase is about to run.
    fn on_phase_started(&self, _index: usize, _name: &str) {}

    /// A phase completed, with its report.
    fn on_phase_finished(&self, _index: usize, _report: &PhaseReport) {}
}

/// A [`RunControl`] that never stops the run and ignores all telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverStop;

impl RunControl for NeverStop {
    fn should_stop(&self, _next_phase: usize) -> bool {
        false
    }
}

/// Why a controlled run stopped early.
#[derive(Debug)]
pub enum StopCause {
    /// [`RunControl::should_stop`] returned `true` at a phase boundary —
    /// a cooperative cancellation, not a failure.
    Cancelled {
        /// The phase that was about to run when the stop was requested.
        next_phase: usize,
    },
    /// A phase aborted mid-flight: an armed fault kill point tripped, or
    /// an internal invariant was violated.
    Phase(PhaseError),
}

impl StopCause {
    /// Whether the stop was a cooperative cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, StopCause::Cancelled { .. })
    }

    /// Whether the stop was an injected-fault kill (the resumable case).
    pub fn is_fault(&self) -> bool {
        matches!(self, StopCause::Phase(PhaseError::Interrupted { .. }))
    }
}

/// A controlled run that ended before its final phase: the resume point,
/// the journal of everything executed, and why it stopped.
///
/// The journal prefix of length [`Checkpoint::journal_offset`] replays to
/// the checkpoint state; the tail is the stopped phase's partial work,
/// which [`ProtocolRunner::resume_controlled`] re-executes from the phase
/// start.
#[derive(Debug)]
pub struct StoppedRun {
    /// The checkpoint taken at the boundary of the stopped phase.
    pub checkpoint: Checkpoint,
    /// The journal recorded up to the stop.
    pub journal: Journal,
    /// Why the run stopped.
    pub cause: StopCause,
}

/// Outcome of [`ProtocolRunner::execute`]: `Err` carries the interruption
/// point when a phase stopped early.
struct Interruption {
    cause: StopCause,
    checkpoint: Option<Box<Checkpoint>>,
}

impl Interruption {
    /// The phase error of a non-cancelled interruption; uncontrolled runs
    /// can only stop through a phase error.
    fn expect_phase_error(self) -> PhaseError {
        match self.cause {
            StopCause::Phase(error) => error,
            StopCause::Cancelled { .. } => {
                unreachable!("cancellation requires a RunControl, none was supplied")
            }
        }
    }
}

/// The thin executor: phases in, reports out.
///
/// Borrows the driver's shared resources; all per-cycle state lives in the
/// [`ChipState`] and [`PhaseCtx`] it creates per run.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolRunner<'a> {
    pub(super) config: &'a WorkloadConfig,
    pub(super) envelope: &'a ForceEnvelope,
    pub(super) router: &'a IncrementalRouter,
    pub(super) programming: &'a ProgrammingInterface,
    pub(super) scan: &'a ScanTiming,
    pub(super) scanner: &'a ArrayScanner,
    /// The driver's warm-start plan cache; `Some` iff
    /// [`WorkloadConfig::reuse_plans`] is set.
    pub(super) route_cache: Option<&'a Mutex<RouterCache>>,
}

impl<'a> ProtocolRunner<'a> {
    /// The cycle seed: a pure function of the base seed and the cycle
    /// index, unchanged across every driver generation so seeded runs stay
    /// bit-identical.
    fn cycle_seed(&self, cycle: usize) -> u64 {
        self.config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cycle as u64 + 1))
    }

    /// A fresh chip state for one run of this runner's configuration.
    fn fresh_state(&self) -> ChipState {
        let dims = GridDims::square(self.config.array_side);
        // A zero separation is physically meaningless (cages would merge)
        // and the cage grid rejects it; clamp like the routers do rather
        // than panic on a CLI-supplied `min_separation=0` override.
        let sep = self.config.min_separation.max(1);
        ChipState::with_separation(dims, sep)
    }

    /// A fresh cycle context over this runner's borrowed resources.
    fn fresh_ctx(&self, cycle: usize, cycle_seed: u64) -> PhaseCtx<'a> {
        PhaseCtx::new(
            self.config,
            self.envelope,
            self.router,
            self.programming,
            self.scan,
            self.scanner,
            self.route_cache,
            cycle,
            cycle_seed,
        )
    }

    /// The phase loop shared by every entry point: runs
    /// `protocol.phases[start_phase..]` over the given state and ctx,
    /// appending one report per completed phase. With `capture` on, a
    /// [`Checkpoint`] is taken at the start of every phase and the latest
    /// one rides along in the `Err` when a phase stops early. A `control`
    /// is polled at every phase boundary and may stop the run there.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        protocol: &Protocol,
        cycle: usize,
        start_phase: usize,
        state: &mut ChipState,
        ctx: &mut PhaseCtx<'_>,
        phases: &mut Vec<PhaseReport>,
        capture: bool,
        control: Option<&dyn RunControl>,
    ) -> Result<(), Interruption> {
        for (index, spec) in protocol.phases.iter().enumerate().skip(start_phase) {
            let checkpoint = capture.then(|| {
                Box::new(Checkpoint {
                    protocol: protocol.clone(),
                    cycle,
                    next_phase: index,
                    state: state.snapshot(),
                    ctx: ctx.snapshot(),
                    journal_offset: state.journal().map_or(0, Journal::len),
                    completed: phases.clone(),
                })
            });
            if let Some(control) = control {
                if control.should_stop(index) {
                    return Err(Interruption {
                        cause: StopCause::Cancelled { next_phase: index },
                        checkpoint,
                    });
                }
            }
            let phase = spec.build();
            if let Some(control) = control {
                control.on_phase_started(index, phase.name());
            }
            state.note_phase_started(index, phase.name());
            ctx.view.note_phase_started(index, phase.name());
            let ledger_before = *state.time();
            match phase.run(state, ctx) {
                Ok(mut report) => {
                    report.time = state.time().delta_since(&ledger_before);
                    state.note_phase_finished(index);
                    ctx.view.note_phase_finished(index);
                    if let Some(control) = control {
                        control.on_phase_finished(index, &report);
                    }
                    phases.push(report);
                }
                Err(error) => {
                    state.note_phase_aborted(index, &error.to_string());
                    ctx.view.note_phase_aborted(index, &error.to_string());
                    return Err(Interruption {
                        cause: StopCause::Phase(error),
                        checkpoint,
                    });
                }
            }
        }
        // A flush snapshots the finals itself (pre-clear); protocols that
        // end with the batch still on-chip are snapshotted here.
        if !matches!(protocol.phases.last(), Some(PhaseSpec::Flush)) {
            ctx.capture_finals(state);
        }
        Ok(())
    }

    /// Assembles the final outcome from the consumed per-run state.
    fn assemble(
        &self,
        cycle: usize,
        state: ChipState,
        ctx: PhaseCtx<'_>,
        phases: Vec<PhaseReport>,
    ) -> ProtocolOutcome {
        let finals = ctx.finals.unwrap_or_default();
        let report = CycleReport {
            cycle,
            requested: ctx.requested,
            routed: ctx.routed,
            makespan_steps: ctx.makespan_steps,
            total_moves: ctx.total_moves,
            planning: ctx.planning,
            time: *state.time(),
            moves_checked: ctx.moves_checked,
            infeasible_moves: ctx.infeasible_moves,
            occupancy_detected: finals.occupancy_detected,
            detection: ctx.detection,
            mismatches_initial: ctx.mismatches_initial.unwrap_or(0),
            mismatches_final: finals.mismatches_final,
            true_mismatches_final: finals.true_mismatches_final,
            recovery_rounds: ctx.recovery_rounds,
            recovery_moves: ctx.recovery_moves,
            budget: ctx.budget,
            conflict_free: ctx.conflict_free,
        };
        ProtocolOutcome {
            report,
            phases,
            state,
        }
    }

    /// The report row appended when a phase aborted: zero work, the abort
    /// reason as the detail.
    fn aborted_report(error: &PhaseError, state: &ChipState) -> PhaseReport {
        PhaseReport {
            phase: format!("aborted:{}", error.phase()),
            time: TimeBreakdown::default(),
            moves: 0,
            particles_after: state.particle_count(),
            detail: error.to_string(),
        }
    }

    /// Executes `protocol` as cycle number `cycle` (the cycle index fixes
    /// the batch seed and the scan-pass numbering, exactly as the driver's
    /// repeated cycles always did).
    ///
    /// A phase error (an internal invariant violation — impossible on the
    /// canned path) aborts the remaining phases and surfaces as an
    /// `aborted:` report row instead of a panic.
    pub fn run(&self, protocol: &Protocol, cycle: usize) -> ProtocolOutcome {
        let mut state = self.fresh_state();
        let mut ctx = self.fresh_ctx(cycle, self.cycle_seed(cycle));
        let mut phases = Vec::with_capacity(protocol.phases.len());
        if let Err(interruption) = self.execute(
            protocol,
            cycle,
            0,
            &mut state,
            &mut ctx,
            &mut phases,
            false,
            None,
        ) {
            phases.push(Self::aborted_report(
                &interruption.expect_phase_error(),
                &state,
            ));
        }
        self.assemble(cycle, state, ctx, phases)
    }

    /// Like [`run`](Self::run), with an event journal attached: every
    /// chip-state mutation of the run is recorded, and
    /// [`replay`](labchip_manipulation::journal::replay) of the returned
    /// journal reconstructs `outcome.state` bit-for-bit.
    pub fn run_journaled(&self, protocol: &Protocol, cycle: usize) -> (ProtocolOutcome, Journal) {
        let mut state = self.fresh_state();
        state.attach_journal();
        let mut ctx = self.fresh_ctx(cycle, self.cycle_seed(cycle));
        let mut phases = Vec::with_capacity(protocol.phases.len());
        if let Err(interruption) = self.execute(
            protocol,
            cycle,
            0,
            &mut state,
            &mut ctx,
            &mut phases,
            false,
            None,
        ) {
            phases.push(Self::aborted_report(
                &interruption.expect_phase_error(),
                &state,
            ));
        }
        let journal = state.take_journal().expect("journal attached above");
        (self.assemble(cycle, state, ctx, phases), journal)
    }

    /// Like [`run_journaled`](Self::run_journaled), with a sharded
    /// [`ShardedState`] fleet attached as an exact mirror of the global
    /// state: the phases run the identical algorithm over the global
    /// `ChipState` (so the returned journal is byte-identical to
    /// [`run_journaled`](Self::run_journaled) at the same seed), and every
    /// successful mutation is additionally routed into the owning shard —
    /// with typed handoff events journaled when a motion window carries a
    /// particle across a shard boundary, and per-shard routing windows
    /// warm-started through the fleet's router caches.
    ///
    /// The fleet is returned alongside the outcome for inspection
    /// ([`ShardedState::into_outcome`] yields the per-shard journals and
    /// handoff statistics) or reuse of its warm caches across cycles.
    pub fn run_sharded(
        &self,
        protocol: &Protocol,
        cycle: usize,
        fleet: ShardedState,
    ) -> (ProtocolOutcome, Journal, ShardedState) {
        let mut state = self.fresh_state();
        state.attach_journal();
        let mut ctx = self.fresh_ctx(cycle, self.cycle_seed(cycle));
        ctx.view = StateView::Sharded(Box::new(fleet));
        let mut phases = Vec::with_capacity(protocol.phases.len());
        if let Err(interruption) = self.execute(
            protocol,
            cycle,
            0,
            &mut state,
            &mut ctx,
            &mut phases,
            false,
            None,
        ) {
            phases.push(Self::aborted_report(
                &interruption.expect_phase_error(),
                &state,
            ));
        }
        let journal = state.take_journal().expect("journal attached above");
        let fleet = match ctx.view.take() {
            StateView::Sharded(fleet) => *fleet,
            StateView::Monolithic => unreachable!("fleet attached above"),
        };
        (self.assemble(cycle, state, ctx, phases), journal, fleet)
    }

    /// Runs `protocol` with a journal and an armed [`FaultPlan`] kill
    /// point. If the kill point lies beyond the run's event count the run
    /// completes normally (`Ok`); otherwise execution dies at the fault's
    /// poll point and the [`InterruptedRun`] carries the checkpoint to
    /// [`resume`](Self::resume) from.
    ///
    /// # Errors
    ///
    /// `Err` is the interrupted run — the expected outcome of a fault
    /// sweep, boxed because it carries the full resume state.
    pub fn run_with_fault(
        &self,
        protocol: &Protocol,
        cycle: usize,
        fault: FaultPlan,
    ) -> Result<(ProtocolOutcome, Journal), Box<InterruptedRun>> {
        let mut state = self.fresh_state();
        state.attach_journal_with_fault(fault);
        let mut ctx = self.fresh_ctx(cycle, self.cycle_seed(cycle));
        let mut phases = Vec::with_capacity(protocol.phases.len());
        match self.execute(
            protocol,
            cycle,
            0,
            &mut state,
            &mut ctx,
            &mut phases,
            true,
            None,
        ) {
            Ok(()) => {
                let journal = state.take_journal().expect("journal attached above");
                Ok((self.assemble(cycle, state, ctx, phases), journal))
            }
            Err(interruption) => {
                let journal = state.take_journal().expect("journal attached above");
                let Interruption { cause, checkpoint } = interruption;
                let checkpoint = checkpoint.expect("checkpoint capture enabled for fault runs");
                let error = match cause {
                    StopCause::Phase(error) => error,
                    StopCause::Cancelled { .. } => {
                        unreachable!("cancellation requires a RunControl, none was supplied")
                    }
                };
                Err(Box::new(InterruptedRun {
                    checkpoint: *checkpoint,
                    journal,
                    error,
                }))
            }
        }
    }

    /// Runs `protocol` journaled, with checkpoints captured at every phase
    /// boundary, an optional armed [`FaultPlan`] kill point, and a
    /// [`RunControl`] polled between phases — the execution mode a farm
    /// worker drives a job in.
    ///
    /// On success returns the outcome plus the full journal of the run.
    ///
    /// # Errors
    ///
    /// `Err` is the stopped run: either the control requested a stop at a
    /// phase boundary ([`StopCause::Cancelled`]) or a phase aborted
    /// mid-flight ([`StopCause::Phase`] — an injected kill, or an internal
    /// invariant violation). Both carry the checkpoint to
    /// [`resume_controlled`](Self::resume_controlled) from.
    pub fn run_controlled(
        &self,
        protocol: &Protocol,
        cycle: usize,
        fault: Option<FaultPlan>,
        control: &dyn RunControl,
    ) -> Result<(ProtocolOutcome, Journal), Box<StoppedRun>> {
        let mut state = self.fresh_state();
        match fault {
            Some(fault) => state.attach_journal_with_fault(fault),
            None => state.attach_journal(),
        }
        let mut ctx = self.fresh_ctx(cycle, self.cycle_seed(cycle));
        let mut phases = Vec::with_capacity(protocol.phases.len());
        let outcome = self.execute(
            protocol,
            cycle,
            0,
            &mut state,
            &mut ctx,
            &mut phases,
            true,
            Some(control),
        );
        self.finish_controlled(outcome, state, ctx, phases, cycle)
    }

    /// Continues a stopped controlled run from its [`Checkpoint`], with a
    /// fresh journal attached (its events are the continuation — appending
    /// them to the stopped run's committed prefix of length
    /// [`Checkpoint::journal_offset`] yields a journal identical to an
    /// uninterrupted run's) and the same boundary-polled [`RunControl`].
    ///
    /// # Errors
    ///
    /// As for [`run_controlled`](Self::run_controlled): the run may be
    /// stopped again, by the control or by a freshly armed `fault`.
    pub fn resume_controlled(
        &self,
        checkpoint: &Checkpoint,
        fault: Option<FaultPlan>,
        control: &dyn RunControl,
    ) -> Result<(ProtocolOutcome, Journal), Box<StoppedRun>> {
        let mut state = ChipState::from_snapshot(checkpoint.state.clone());
        match fault {
            Some(fault) => state.attach_journal_with_fault(fault),
            None => state.attach_journal(),
        }
        let mut ctx = self.fresh_ctx(checkpoint.cycle, checkpoint.ctx.cycle_seed);
        ctx.restore(&checkpoint.ctx);
        let mut phases = checkpoint.completed.clone();
        let outcome = self.execute(
            &checkpoint.protocol,
            checkpoint.cycle,
            checkpoint.next_phase,
            &mut state,
            &mut ctx,
            &mut phases,
            true,
            Some(control),
        );
        self.finish_controlled(outcome, state, ctx, phases, checkpoint.cycle)
    }

    /// Shared tail of the controlled entry points: detach the journal and
    /// assemble either the outcome or the [`StoppedRun`].
    fn finish_controlled(
        &self,
        outcome: Result<(), Interruption>,
        mut state: ChipState,
        ctx: PhaseCtx<'_>,
        phases: Vec<PhaseReport>,
        cycle: usize,
    ) -> Result<(ProtocolOutcome, Journal), Box<StoppedRun>> {
        let journal = state.take_journal().expect("journal attached above");
        match outcome {
            Ok(()) => Ok((self.assemble(cycle, state, ctx, phases), journal)),
            Err(interruption) => {
                let checkpoint = interruption
                    .checkpoint
                    .expect("checkpoint capture enabled for controlled runs");
                Err(Box::new(StoppedRun {
                    checkpoint: *checkpoint,
                    journal,
                    cause: interruption.cause,
                }))
            }
        }
    }

    /// Continues an interrupted protocol from a [`Checkpoint`]: restores
    /// the chip state and every ctx accumulator, then executes the
    /// remaining phases (the interrupted one re-runs from its start).
    /// Every RNG stream is a pure function of the captured seeds and
    /// counters, so the final state is bit-identical to an uninterrupted
    /// run of the same protocol — planner wall-clock aside, so is the
    /// report.
    pub fn resume(&self, checkpoint: &Checkpoint) -> ProtocolOutcome {
        let mut state = ChipState::from_snapshot(checkpoint.state.clone());
        let mut ctx = self.fresh_ctx(checkpoint.cycle, checkpoint.ctx.cycle_seed);
        ctx.restore(&checkpoint.ctx);
        let mut phases = checkpoint.completed.clone();
        if let Err(interruption) = self.execute(
            &checkpoint.protocol,
            checkpoint.cycle,
            checkpoint.next_phase,
            &mut state,
            &mut ctx,
            &mut phases,
            false,
            None,
        ) {
            phases.push(Self::aborted_report(
                &interruption.expect_phase_error(),
                &state,
            ));
        }
        self.assemble(checkpoint.cycle, state, ctx, phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json;

    #[test]
    fn protocols_round_trip_through_serde() {
        let protocol = Protocol::canned_cycle(GridDims::square(48), 2, 40)
            .with_phase(PhaseSpec::Sense { frames: Some(8) })
            .with_phase(PhaseSpec::Route {
                target: RouteTarget::MergePairs,
            })
            .with_phase(PhaseSpec::Recover {
                policy: Some(RecoveryPolicy::date05_reference()),
            });
        let value = serde_json::to_value(&protocol);
        let back: Protocol = serde_json::from_value(&value).expect("round trip");
        assert_eq!(back, protocol);
        assert_eq!(back.len(), 8);
        assert!(!back.is_empty());
    }

    #[test]
    fn fault_kill_and_resume_reach_the_uninterrupted_state() {
        // One mid-protocol kill point, end to end: the interrupted run's
        // journal prefix replays to the checkpoint state, and resume from
        // the checkpoint lands on the exact state (and report, modulo
        // planner wall-clock) of an uninterrupted run.
        use crate::workload::{BatchDriver, WorkloadConfig};
        use labchip_manipulation::journal::{replay, FaultPlan};

        let config = WorkloadConfig {
            array_side: 32,
            noise_scale: 1.0,
            detection_frames: 2,
            recovery: RecoveryPolicy::date05_reference(),
            ..WorkloadConfig::default()
        };
        let driver = BatchDriver::new(config);
        let dims = GridDims::square(config.array_side);
        let sep = config.min_separation.max(1);
        let protocol = Protocol::canned_cycle(dims, sep, 20);
        let (baseline, baseline_journal) = driver.runner().run_journaled(&protocol, 0);
        let total_events = baseline_journal.len() as u64;
        assert!(
            total_events > 10,
            "probe run journaled {total_events} events"
        );

        // A kill point mid-journal must interrupt...
        let interrupted = driver
            .runner()
            .run_with_fault(&protocol, 0, FaultPlan::after(total_events / 2))
            .expect_err("mid-journal kill point must interrupt the run");
        assert!(interrupted.journal.len() as u64 >= total_events / 2);
        let checkpoint = &interrupted.checkpoint;
        assert!(checkpoint.next_phase < protocol.len());

        // ...its journal-at-checkpoint prefix replays to the snapshot...
        let prefix = interrupted.journal.truncated(checkpoint.journal_offset);
        let replayed = replay(&prefix, dims, sep).expect("prefix replays cleanly");
        assert_eq!(
            replayed.state_hash(),
            ChipState::from_snapshot(checkpoint.state.clone()).state_hash()
        );

        // ...the checkpoint survives its JSON round trip...
        let restored = Checkpoint::from_json(&checkpoint.to_json()).expect("round trip");
        assert_eq!(&restored, checkpoint);

        // ...and resume finishes to the uninterrupted state and report.
        let resumed = driver.runner().resume(&restored);
        assert_eq!(resumed.state, baseline.state);
        assert_eq!(resumed.state.state_hash(), baseline.state.state_hash());
        let mut resumed_report = resumed.report.clone();
        resumed_report.planning = baseline.report.planning;
        assert_eq!(resumed_report, baseline.report);

        // A kill point past the end never fires: the run completes.
        let (outcome, _) = driver
            .runner()
            .run_with_fault(&protocol, 0, FaultPlan::after(total_events + 1))
            .expect("kill point past the journal end must not interrupt");
        assert_eq!(outcome.state, baseline.state);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_the_monolithic_run() {
        // The tentpole equivalence at the core layer: a sharded run's
        // global journal is byte-identical to the monolithic run at the
        // same seed, the fleet composes back to the exact global state,
        // every shard journal replays cleanly, and a multi-shard grid
        // actually exercises the handoff path.
        use crate::workload::{BatchDriver, WorkloadConfig};
        use labchip_manipulation::fleet::{FleetTopology, ShardedState};

        let config = WorkloadConfig {
            array_side: 32,
            noise_scale: 1.0,
            detection_frames: 2,
            recovery: RecoveryPolicy::date05_reference(),
            ..WorkloadConfig::default()
        };
        let driver = BatchDriver::new(config);
        let dims = GridDims::square(config.array_side);
        let sep = config.min_separation.max(1);
        let protocol = Protocol::canned_cycle(dims, sep, 24);
        let (baseline, baseline_journal) = driver.runner().run_journaled(&protocol, 0);

        for (gx, gy) in [(1u32, 1u32), (2, 1), (2, 2)] {
            let topology = FleetTopology::new(dims, sep, gx, gy);
            let fleet = ShardedState::new(topology);
            let (outcome, journal, fleet) = driver.runner().run_sharded(&protocol, 0, fleet);
            assert_eq!(
                journal.events(),
                baseline_journal.events(),
                "{gx}x{gy}: global journal must be byte-identical to monolithic"
            );
            assert_eq!(outcome.state, baseline.state);
            let composed = fleet.compose();
            assert_eq!(
                composed.state_hash(),
                baseline.state.state_hash(),
                "{gx}x{gy}: composed fleet must match the monolithic state hash"
            );
            let fleet_outcome = fleet.into_outcome();
            assert_eq!(
                fleet_outcome.replay_divergences(),
                0,
                "{gx}x{gy}: every shard journal must replay to its shard state"
            );
            if gx * gy > 1 {
                assert!(
                    fleet_outcome.handoffs() > 0,
                    "{gx}x{gy}: a multi-shard sort must hand particles across boundaries"
                );
            } else {
                assert_eq!(fleet_outcome.handoffs(), 0);
            }
        }
    }

    #[test]
    fn live_planned_sharded_run_is_bit_identical_too() {
        // The live parallel per-shard planner is advisory exactly like
        // the serial one: at the same seed, the global journal, final
        // state, composition and per-shard replays all match the
        // monolithic run — and the live path actually ran (live_windows
        // counted, seam messages on multi-shard grids).
        use crate::workload::{BatchDriver, WorkloadConfig};
        use labchip_manipulation::fleet::{FleetTopology, ShardedState};

        let config = WorkloadConfig {
            array_side: 32,
            noise_scale: 1.0,
            detection_frames: 2,
            recovery: RecoveryPolicy::date05_reference(),
            live_planning: true,
            ..WorkloadConfig::default()
        };
        let driver = BatchDriver::new(config);
        let dims = GridDims::square(config.array_side);
        let sep = config.min_separation.max(1);
        let protocol = Protocol::canned_cycle(dims, sep, 24);
        let (baseline, baseline_journal) = driver.runner().run_journaled(&protocol, 0);

        for (gx, gy) in [(1u32, 1u32), (2, 1), (2, 2)] {
            let topology = FleetTopology::new(dims, sep, gx, gy);
            let fleet = ShardedState::new(topology);
            let (outcome, journal, fleet) = driver.runner().run_sharded(&protocol, 0, fleet);
            assert_eq!(
                journal.events(),
                baseline_journal.events(),
                "{gx}x{gy}: live-planned global journal must be byte-identical"
            );
            assert_eq!(outcome.state, baseline.state);
            assert_eq!(fleet.compose().state_hash(), baseline.state.state_hash());
            let stats = fleet.stats();
            assert!(stats.live_windows > 0, "{gx}x{gy}: live planner never ran");
            if gx * gy > 1 {
                assert!(
                    stats.seam_messages > 0,
                    "{gx}x{gy}: seam traffic must cross the handoff channels"
                );
            } else {
                assert_eq!(stats.seam_messages, 0);
            }
            let fleet_outcome = fleet.into_outcome();
            assert_eq!(fleet_outcome.replay_divergences(), 0);
        }
    }

    #[test]
    fn canned_cycle_has_the_five_monolith_phases() {
        let protocol = Protocol::canned_cycle(GridDims::square(64), 2, 100);
        assert_eq!(protocol.len(), 5);
        assert!(matches!(
            protocol.phases[0],
            PhaseSpec::Load {
                particles: 100,
                capacity_clamp: Some(_)
            }
        ));
        assert!(matches!(
            protocol.phases[1],
            PhaseSpec::Route {
                target: RouteTarget::SortSplit
            }
        ));
        assert!(matches!(
            protocol.phases[2],
            PhaseSpec::Sense { frames: None }
        ));
        assert!(matches!(
            protocol.phases[3],
            PhaseSpec::Recover { policy: None }
        ));
        assert!(matches!(protocol.phases[4], PhaseSpec::Flush));
    }
}
