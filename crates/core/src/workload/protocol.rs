//! Protocols as data: serde-round-trippable phase lists and the thin
//! runner that executes them.
//!
//! A [`Protocol`] is an ordered list of [`PhaseSpec`]s with per-phase knobs
//! — the declarative form of an assay. [`ProtocolRunner`] is deliberately
//! thin: it materialises each spec into its [`AssayPhase`], runs the phases
//! in order over one shared [`ChipState`], snapshots the time ledger around
//! each phase (so every [`PhaseReport`] carries exactly what that phase
//! cost), and assembles the final [`CycleReport`] from the accumulated
//! [`PhaseCtx`]. The canned cycle ([`Protocol::canned_cycle`]) reproduces
//! the retired monolithic `run_cycle` bit for bit; anything else — repeated
//! sense/route rounds, merge assays, wash-free cycles — is just a different
//! list.

use super::envelope::ForceEnvelope;
use super::phases::{
    sort_capacity, AssayPhase, Flush, Load, PhaseCtx, PhaseReport, Recover, Route, RouteTarget,
    Sense,
};
use super::{CycleReport, RecoveryPolicy, WorkloadConfig};
use labchip_array::addressing::ProgrammingInterface;
use labchip_manipulation::sharding::IncrementalRouter;
use labchip_manipulation::state::ChipState;
use labchip_sensing::array_scan::ArrayScanner;
use labchip_sensing::scan::ScanTiming;
use labchip_units::GridDims;
use serde::{Deserialize, Serialize};

/// One declarative phase of a [`Protocol`], with its knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseSpec {
    /// Load a seeded batch (see [`Load`]).
    Load {
        /// Particles requested.
        particles: usize,
        /// Optional cap on placed particles.
        capacity_clamp: Option<usize>,
    },
    /// Route the population to a target (see [`Route`]).
    Route {
        /// Where to send the population.
        target: RouteTarget,
    },
    /// Scan the whole array (see [`Sense`]).
    Sense {
        /// Frames averaged (None = the workload's `detection_frames`).
        frames: Option<u32>,
    },
    /// Close the loop on detection/plan mismatches (see [`Recover`]).
    Recover {
        /// Policy override (None = the workload's configured policy).
        policy: Option<RecoveryPolicy>,
    },
    /// Flush the batch (see [`Flush`]).
    Flush,
}

impl PhaseSpec {
    /// Materialises the spec into its executable phase.
    pub fn build(&self) -> Box<dyn AssayPhase> {
        match self {
            PhaseSpec::Load {
                particles,
                capacity_clamp,
            } => Box::new(Load {
                particles: *particles,
                capacity_clamp: *capacity_clamp,
            }),
            PhaseSpec::Route { target } => Box::new(Route {
                target: target.clone(),
            }),
            PhaseSpec::Sense { frames } => Box::new(Sense { frames: *frames }),
            PhaseSpec::Recover { policy } => Box::new(Recover { policy: *policy }),
            PhaseSpec::Flush => Box::new(Flush),
        }
    }
}

/// A named, ordered, serde-round-trippable list of assay phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    /// Human-readable protocol name.
    pub name: String,
    /// The phases, executed in order.
    pub phases: Vec<PhaseSpec>,
}

impl Protocol {
    /// Creates an empty protocol.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            phases: Vec::new(),
        }
    }

    /// Appends a phase (builder style).
    pub fn with_phase(mut self, phase: PhaseSpec) -> Self {
        self.phases.push(phase);
        self
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` when the protocol has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The canned `load → route(sort) → sense → recover → flush` cycle the
    /// [`BatchDriver`](super::BatchDriver) has always run — now expressed
    /// as data. `dims`/`min_separation` fix the sort-capacity load clamp
    /// exactly as the monolithic driver clamped it.
    pub fn canned_cycle(dims: GridDims, min_separation: u32, particles: usize) -> Self {
        Self {
            name: "canned-cycle".into(),
            phases: vec![
                PhaseSpec::Load {
                    particles,
                    capacity_clamp: Some(sort_capacity(dims, min_separation)),
                },
                PhaseSpec::Route {
                    target: RouteTarget::SortSplit,
                },
                PhaseSpec::Sense { frames: None },
                PhaseSpec::Recover { policy: None },
                PhaseSpec::Flush,
            ],
        }
    }
}

/// The record of one executed protocol: the assembled cycle report, the
/// per-phase ledger, and the final chip state (for inspection and
/// invariant checks).
#[derive(Debug)]
pub struct ProtocolOutcome {
    /// The cycle-level report (same shape the monolithic driver produced).
    pub report: CycleReport,
    /// One report per executed phase, in order.
    pub phases: Vec<PhaseReport>,
    /// The chip state after the last phase.
    pub state: ChipState,
}

/// The thin executor: phases in, reports out.
///
/// Borrows the driver's shared resources; all per-cycle state lives in the
/// [`ChipState`] and [`PhaseCtx`] it creates per run.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolRunner<'a> {
    pub(super) config: &'a WorkloadConfig,
    pub(super) envelope: &'a ForceEnvelope,
    pub(super) router: &'a IncrementalRouter,
    pub(super) programming: &'a ProgrammingInterface,
    pub(super) scan: &'a ScanTiming,
    pub(super) scanner: &'a ArrayScanner,
}

impl ProtocolRunner<'_> {
    /// Executes `protocol` as cycle number `cycle` (the cycle index fixes
    /// the batch seed and the scan-pass numbering, exactly as the driver's
    /// repeated cycles always did).
    pub fn run(&self, protocol: &Protocol, cycle: usize) -> ProtocolOutcome {
        let dims = GridDims::square(self.config.array_side);
        // A zero separation is physically meaningless (cages would merge)
        // and the cage grid rejects it; clamp like the routers do rather
        // than panic on a CLI-supplied `min_separation=0` override.
        let sep = self.config.min_separation.max(1);
        let cycle_seed = self
            .config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cycle as u64 + 1));
        let mut state = ChipState::with_separation(dims, sep);
        let mut ctx = PhaseCtx::new(
            self.config,
            self.envelope,
            self.router,
            self.programming,
            self.scan,
            self.scanner,
            cycle,
            cycle_seed,
        );

        let mut phases = Vec::with_capacity(protocol.phases.len());
        for spec in &protocol.phases {
            let phase = spec.build();
            let ledger_before = *state.time();
            let mut report = phase.run(&mut state, &mut ctx);
            report.time = state.time().delta_since(&ledger_before);
            phases.push(report);
        }
        // A flush snapshots the finals itself (pre-clear); protocols that
        // end with the batch still on-chip are snapshotted here.
        if !matches!(protocol.phases.last(), Some(PhaseSpec::Flush)) {
            ctx.capture_finals(&mut state);
        }

        let finals = ctx.finals.unwrap_or_default();
        let report = CycleReport {
            cycle,
            requested: ctx.requested,
            routed: ctx.routed,
            makespan_steps: ctx.makespan_steps,
            total_moves: ctx.total_moves,
            planning: ctx.planning,
            time: *state.time(),
            moves_checked: ctx.moves_checked,
            infeasible_moves: ctx.infeasible_moves,
            occupancy_detected: finals.occupancy_detected,
            detection: ctx.detection,
            mismatches_initial: ctx.mismatches_initial.unwrap_or(0),
            mismatches_final: finals.mismatches_final,
            true_mismatches_final: finals.true_mismatches_final,
            recovery_rounds: ctx.recovery_rounds,
            recovery_moves: ctx.recovery_moves,
            budget: ctx.budget,
            conflict_free: ctx.conflict_free,
        };
        ProtocolOutcome {
            report,
            phases,
            state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json;

    #[test]
    fn protocols_round_trip_through_serde() {
        let protocol = Protocol::canned_cycle(GridDims::square(48), 2, 40)
            .with_phase(PhaseSpec::Sense { frames: Some(8) })
            .with_phase(PhaseSpec::Route {
                target: RouteTarget::MergePairs,
            })
            .with_phase(PhaseSpec::Recover {
                policy: Some(RecoveryPolicy::date05_reference()),
            });
        let value = serde_json::to_value(&protocol);
        let back: Protocol = serde_json::from_value(&value).expect("round trip");
        assert_eq!(back, protocol);
        assert_eq!(back.len(), 8);
        assert!(!back.is_empty());
    }

    #[test]
    fn canned_cycle_has_the_five_monolith_phases() {
        let protocol = Protocol::canned_cycle(GridDims::square(64), 2, 100);
        assert_eq!(protocol.len(), 5);
        assert!(matches!(
            protocol.phases[0],
            PhaseSpec::Load {
                particles: 100,
                capacity_clamp: Some(_)
            }
        ));
        assert!(matches!(
            protocol.phases[1],
            PhaseSpec::Route {
                target: RouteTarget::SortSplit
            }
        ));
        assert!(matches!(
            protocol.phases[2],
            PhaseSpec::Sense { frames: None }
        ));
        assert!(matches!(
            protocol.phases[3],
            PhaseSpec::Recover { policy: None }
        ));
        assert!(matches!(protocol.phases[4], PhaseSpec::Flush));
    }
}
