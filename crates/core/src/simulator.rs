//! Time-stepped full-chip simulation.
//!
//! The [`ChipSimulator`] carries a population of particles through the
//! chamber under the field of the currently programmed pattern: DEP,
//! gravity, drag and Brownian motion, with the pattern free to change between
//! steps (that is how cages — and the cells inside them — are dragged across
//! the chip).
//!
//! # Parallelism and determinism
//!
//! Particles do not interact, so [`ChipSimulator::run`] steps them in
//! parallel with rayon. Each particle owns an independent random stream
//! seeded deterministically from `config.seed` and the particle index, so a
//! run produces **bit-identical trajectories for any worker count** —
//! [`ChipSimulator::set_threads`] pins the count (0 = all cores), and the
//! integration-test suite asserts 1-thread/4-thread equality. The per-step
//! cost is dominated by one analytic `∇|E|²` kernel sweep per particle (see
//! [`labchip_physics::field::superposition`]); the [`ForceBalance`] and the
//! per-particle integrator are hoisted out of the step loop.

use crate::biochip::Biochip;
use crate::error::ChipError;
use labchip_manipulation::state::ChipState;
use labchip_physics::dynamics::{ForceBalance, OverdampedIntegrator, ParticleState};
use labchip_physics::field::superposition::SuperpositionField;
use labchip_physics::particle::Particle;
use labchip_sensing::detect::OccupancyMap;
use labchip_units::{GridCoord, Meters, Seconds, Vec3};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One batch of integration steps, as reported to a [`StepObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepInfo {
    /// Steps advanced by this [`ChipSimulator::run`] call.
    pub steps: usize,
    /// Total simulated time elapsed after the batch.
    pub elapsed: Seconds,
    /// Number of particles being stepped.
    pub particles: usize,
}

/// Observer of simulator progress, called once per [`ChipSimulator::run`]
/// batch (after the particle loop completes, so it never sits on the hot
/// per-step path). The scenario engine bridges this into its streaming
/// [`Progress`](crate::scenario::Progress) sink via
/// [`ScenarioContext::step_observer`](crate::scenario::ScenarioContext::step_observer).
pub trait StepObserver: Send + Sync {
    /// Receives one completed step batch.
    fn on_steps(&self, info: &StepInfo);
}

/// Configuration of the time-stepped simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Integration time step.
    pub dt: Seconds,
    /// Whether Brownian motion is included.
    pub brownian: bool,
    /// RNG seed (simulations are reproducible for a given seed).
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            dt: Seconds::from_millis(1.0),
            brownian: true,
            seed: 0,
        }
    }
}

/// One simulated particle and its trajectory state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedParticle {
    /// The particle model.
    pub particle: Particle,
    /// Its current dynamic state.
    pub state: ParticleState,
}

/// The time-stepped chip simulator.
pub struct ChipSimulator {
    chip: Biochip,
    config: SimulationConfig,
    particles: Vec<SimulatedParticle>,
    /// Per-particle random streams, index-aligned with `particles`. Derived
    /// from `config.seed` + particle index so trajectories are reproducible
    /// regardless of how the parallel step loop schedules work.
    rngs: Vec<ChaCha8Rng>,
    field: SuperpositionField,
    elapsed: Seconds,
    /// Worker threads for the particle loop (0 = all cores).
    threads: usize,
    /// Pool built once per `set_threads` call — `run` is the hot path and
    /// must not construct a pool per invocation. `None` for 0 (ambient pool)
    /// and 1 (plain serial loop, no parallel machinery at all).
    pool: Option<rayon::ThreadPool>,
    /// Optional progress hook, notified once per `run` batch.
    observer: Option<Arc<dyn StepObserver>>,
}

impl fmt::Debug for ChipSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChipSimulator")
            .field("config", &self.config)
            .field("particles", &self.particles.len())
            .field("elapsed", &self.elapsed)
            .field("threads", &self.threads)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl ChipSimulator {
    /// Creates a simulator over a chip (the current pattern is captured; call
    /// [`ChipSimulator::refresh_field`] after reprogramming).
    pub fn new(chip: Biochip, config: SimulationConfig) -> Self {
        let field = chip.field_model();
        Self {
            chip,
            config,
            particles: Vec::new(),
            rngs: Vec::new(),
            field,
            elapsed: Seconds::ZERO,
            threads: 0,
            pool: None,
            observer: None,
        }
    }

    /// Pins the number of worker threads used by [`ChipSimulator::run`]
    /// (0 = all cores).
    ///
    /// # Determinism
    ///
    /// The thread count is a pure performance knob: every particle owns an
    /// independent random stream seeded from `(config.seed, index)`, so
    /// trajectories are **bit-identical for any setting** — 1 worker, all
    /// cores, or anything in between (the integration suite asserts
    /// 1-thread/4-thread equality). This is the single implementation;
    /// [`ChipSimulator::with_threads`] delegates here.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
        self.pool = (threads > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction cannot fail")
        });
    }

    /// Builder-style variant of (and a pure delegate to)
    /// [`ChipSimulator::set_threads`] — the thread count only affects
    /// wall-clock speed, never the trajectories (see the determinism note
    /// there).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Installs a [`StepObserver`] notified once per [`ChipSimulator::run`]
    /// batch. Pass the bridge from
    /// [`ScenarioContext::step_observer`](crate::scenario::ScenarioContext::step_observer)
    /// to stream simulator liveness into a scenario progress sink.
    pub fn set_step_observer(&mut self, observer: Arc<dyn StepObserver>) {
        self.observer = Some(observer);
    }

    /// Removes the step observer.
    pub fn clear_step_observer(&mut self) {
        self.observer = None;
    }

    /// The deterministic random stream of particle `index`: the index is
    /// hashed with a SplitMix64 round and folded into the configured seed,
    /// giving well-separated ChaCha8 streams that are a pure function of
    /// `(config.seed, index)`. The mix is inlined (rather than taken from a
    /// rand helper) so it stays a stable part of this crate's reproducibility
    /// contract regardless of the rand version in use.
    fn stream_rng(seed: u64, index: usize) -> ChaCha8Rng {
        let mut z = (index as u64)
            .wrapping_add(1)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ChaCha8Rng::seed_from_u64(seed ^ z)
    }

    /// The chip under simulation.
    pub fn chip(&self) -> &Biochip {
        &self.chip
    }

    /// Mutable access to the chip (reprogram patterns between steps); call
    /// [`ChipSimulator::refresh_field`] afterwards.
    pub fn chip_mut(&mut self) -> &mut Biochip {
        &mut self.chip
    }

    /// Rebuilds the field model from the chip's current pattern.
    pub fn refresh_field(&mut self) {
        self.field = self.chip.field_model();
    }

    /// Simulated time elapsed so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// The simulated particles.
    pub fn particles(&self) -> &[SimulatedParticle] {
        &self.particles
    }

    /// Adds a particle at a position in chamber coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Configuration`] when the position lies outside
    /// the chamber.
    pub fn add_particle(&mut self, particle: Particle, position: Vec3) -> Result<usize, ChipError> {
        let plane = self.chip.array().to_electrode_plane();
        let h = self.chip.array().chamber_height().get();
        if position.x < 0.0
            || position.y < 0.0
            || position.x > plane.width()
            || position.y > plane.height()
            || position.z < 0.0
            || position.z > h
        {
            return Err(ChipError::Configuration {
                reason: format!("particle position {position:?} outside the chamber"),
            });
        }
        self.rngs
            .push(Self::stream_rng(self.config.seed, self.particles.len()));
        self.particles.push(SimulatedParticle {
            particle,
            state: ParticleState::at(position),
        });
        Ok(self.particles.len() - 1)
    }

    /// Adds the chip's reference particle levitated above an electrode.
    ///
    /// # Errors
    ///
    /// See [`ChipSimulator::add_particle`].
    pub fn add_reference_particle_at(&mut self, site: GridCoord) -> Result<usize, ChipError> {
        let center = self
            .chip
            .array()
            .to_electrode_plane()
            .electrode_center(site);
        let z = 1.2 * self.chip.array().pitch().get();
        let particle = *self.chip.reference_particle();
        self.add_particle(particle, Vec3::new(center.x, center.y, z))
    }

    /// Advances the simulation by `steps` integration steps, parallelised
    /// over particles. Results are bit-identical for any thread count (each
    /// particle owns its random stream; see the module docs).
    pub fn run(&mut self, steps: usize) {
        if steps == 0 {
            return;
        }
        let chamber_height = self.chip.array().chamber_height().get();
        // The force balance and the vertical clamp depend only on the
        // particle, so both are hoisted out of the step loop. Each particle
        // is clamped by its *own* radius (the seed applied one shared clamp
        // from the largest radius to every particle).
        let contexts: Vec<(OverdampedIntegrator, ForceBalance)> = self
            .particles
            .iter()
            .map(|simulated| {
                let radius = simulated.particle.radius.get();
                let floor = radius.min(0.5 * chamber_height);
                let integrator = OverdampedIntegrator::new(
                    self.config.dt,
                    Meters::new(floor),
                    Meters::new((chamber_height - radius).max(floor * (1.0 + 1e-12))),
                );
                let mut balance = ForceBalance::new(
                    &simulated.particle,
                    self.chip.medium(),
                    self.chip.drive_frequency(),
                );
                balance.brownian_enabled = self.config.brownian;
                (integrator, balance)
            })
            .collect();

        let field = &self.field;
        if self.threads == 1 {
            // Pinned serial: no parallel machinery at all on the hot path.
            for (index, (simulated, rng)) in self
                .particles
                .iter_mut()
                .zip(self.rngs.iter_mut())
                .enumerate()
            {
                let (integrator, balance) = &contexts[index];
                let mut state = simulated.state;
                for _ in 0..steps {
                    state = integrator.step(field, balance, &state, rng);
                }
                simulated.state = state;
            }
        } else {
            let mut work: Vec<(usize, (&mut SimulatedParticle, &mut ChaCha8Rng))> = self
                .particles
                .iter_mut()
                .zip(self.rngs.iter_mut())
                .enumerate()
                .collect();
            let step_all = |work: &mut [(usize, (&mut SimulatedParticle, &mut ChaCha8Rng))]| {
                work.par_iter_mut().for_each(|(index, (simulated, rng))| {
                    let (integrator, balance) = &contexts[*index];
                    let mut state = simulated.state;
                    for _ in 0..steps {
                        state = integrator.step(field, balance, &state, &mut **rng);
                    }
                    simulated.state = state;
                });
            };
            match &self.pool {
                // Pool cached by `set_threads` (threads > 1).
                Some(pool) => pool.install(|| step_all(&mut work)),
                // threads == 0: the ambient/global pool, no construction.
                None => step_all(&mut work),
            }
        }
        self.elapsed += Seconds::new(self.config.dt.get() * steps as f64);
        if let Some(observer) = &self.observer {
            observer.on_steps(&StepInfo {
                steps,
                elapsed: self.elapsed,
                particles: self.particles.len(),
            });
        }
    }

    /// Advances the simulation by a wall-clock duration.
    pub fn run_for(&mut self, duration: Seconds) {
        let steps = (duration.get() / self.config.dt.get()).ceil() as usize;
        self.run(steps);
    }

    /// The electrode each particle currently sits above (`None` when it has
    /// drifted off the array).
    pub fn particle_sites(&self) -> Vec<Option<GridCoord>> {
        let plane = self.chip.array().to_electrode_plane();
        self.particles
            .iter()
            .map(|p| plane.electrode_at(p.state.position.x, p.state.position.y))
            .collect()
    }

    /// Builds the ground-truth occupancy map from the particle positions —
    /// what a perfect sensor would report. Shares the one truth-map builder
    /// on [`ChipState`] with the cage-grid-backed workload path.
    pub fn true_occupancy(&self) -> OccupancyMap {
        ChipState::occupancy_from_sites(
            self.chip.array().dims(),
            self.particle_sites().into_iter().flatten(),
        )
    }

    /// Lateral distance of particle `index` from the centre of electrode
    /// `site`, in metres.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn lateral_distance_from(&self, index: usize, site: GridCoord) -> f64 {
        let center = self
            .chip
            .array()
            .to_electrode_plane()
            .electrode_center(site);
        (self.particles[index].state.position.xy() - center.xy()).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biochip::Biochip;

    fn simulator_with_cage() -> (ChipSimulator, GridCoord) {
        let mut chip = Biochip::small_reference(16);
        let site = GridCoord::new(8, 8);
        chip.program_single_cage(site).unwrap();
        let sim = ChipSimulator::new(
            chip,
            SimulationConfig {
                dt: Seconds::from_millis(0.5),
                brownian: true,
                seed: 42,
            },
        );
        (sim, site)
    }

    #[test]
    fn trapped_particle_stays_in_its_cage() {
        let (mut sim, site) = simulator_with_cage();
        let idx = sim.add_reference_particle_at(site).unwrap();
        sim.run_for(Seconds::new(1.0));
        let distance = sim.lateral_distance_from(idx, site);
        assert!(
            distance < 20e-6,
            "particle drifted {} um from its cage",
            distance * 1e6
        );
        assert!((sim.elapsed().get() - 1.0).abs() < 1e-3);
        // The occupancy map sees the particle at (or next to) the cage site.
        let occupancy = sim.true_occupancy();
        assert!(occupancy.occupied_count() >= 1);
    }

    #[test]
    fn cage_shift_drags_the_particle_along() {
        // The paper's C2 claim in miniature: shift the cage one electrode and
        // the trapped cell follows.
        let (mut sim, site) = simulator_with_cage();
        let idx = sim.add_reference_particle_at(site).unwrap();
        sim.run_for(Seconds::new(0.5));
        // Shift the cage one electrode in +x.
        let new_site = GridCoord::new(site.x + 1, site.y);
        sim.chip_mut().program_single_cage(new_site).unwrap();
        sim.refresh_field();
        sim.run_for(Seconds::new(1.5));
        let distance_new = sim.lateral_distance_from(idx, new_site);
        let distance_old = sim.lateral_distance_from(idx, site);
        assert!(
            distance_new < distance_old,
            "particle did not follow the cage: {} um from new site vs {} um from old",
            distance_new * 1e6,
            distance_old * 1e6
        );
        assert!(distance_new < 20e-6);
    }

    #[test]
    fn step_observer_sees_each_batch() {
        struct Recorder(std::sync::Mutex<Vec<StepInfo>>);
        impl StepObserver for Recorder {
            fn on_steps(&self, info: &StepInfo) {
                self.0.lock().unwrap().push(*info);
            }
        }
        let (mut sim, site) = simulator_with_cage();
        sim.add_reference_particle_at(site).unwrap();
        let recorder = Arc::new(Recorder(std::sync::Mutex::new(Vec::new())));
        sim.set_step_observer(recorder.clone());
        sim.run(10);
        sim.run(5);
        {
            let seen = recorder.0.lock().unwrap();
            assert_eq!(seen.len(), 2);
            assert_eq!(seen[0].steps, 10);
            assert_eq!(seen[1].steps, 5);
            assert_eq!(seen[1].particles, 1);
            assert!(seen[1].elapsed.get() > seen[0].elapsed.get());
        }
        sim.clear_step_observer();
        sim.run(1);
        assert_eq!(recorder.0.lock().unwrap().len(), 2);
    }

    #[test]
    fn particles_outside_the_chamber_are_rejected() {
        let (mut sim, _) = simulator_with_cage();
        let cell = *sim.chip().reference_particle();
        assert!(sim
            .add_particle(cell, Vec3::new(-1e-3, 0.0, 40e-6))
            .is_err());
        assert!(sim
            .add_particle(cell, Vec3::new(10e-6, 10e-6, 1e-3))
            .is_err());
    }

    #[test]
    fn untrapped_particle_sediments_without_brownian() {
        let mut chip = Biochip::small_reference(16);
        chip.array_mut().reset();
        let mut sim = ChipSimulator::new(
            chip,
            SimulationConfig {
                dt: Seconds::from_millis(0.5),
                brownian: false,
                seed: 1,
            },
        );
        let cell = *sim.chip().reference_particle();
        let idx = sim
            .add_particle(cell, Vec3::new(160e-6, 160e-6, 60e-6))
            .unwrap();
        sim.run_for(Seconds::new(2.0));
        assert!(sim.particles()[idx].state.position.z < 60e-6);
    }
}
