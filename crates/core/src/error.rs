//! Unified error type of the facade crate.

use std::fmt;

/// Errors surfaced by the `labchip` facade.
#[derive(Debug)]
pub enum ChipError {
    /// An error from the actuation-array layer.
    Array(labchip_array::ArrayError),
    /// An error from the physics layer.
    Physics(labchip_physics::PhysicsError),
    /// An error from the sensing layer.
    Sensing(labchip_sensing::SensingError),
    /// An error from the fluidics layer.
    Fluidics(labchip_fluidics::FluidicsError),
    /// An error from the manipulation layer.
    Manipulation(labchip_manipulation::ManipulationError),
    /// An error from the design-flow layer.
    DesignFlow(labchip_designflow::DesignFlowError),
    /// An inconsistency detected at the facade level.
    Configuration {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::Array(e) => write!(f, "array error: {e}"),
            ChipError::Physics(e) => write!(f, "physics error: {e}"),
            ChipError::Sensing(e) => write!(f, "sensing error: {e}"),
            ChipError::Fluidics(e) => write!(f, "fluidics error: {e}"),
            ChipError::Manipulation(e) => write!(f, "manipulation error: {e}"),
            ChipError::DesignFlow(e) => write!(f, "design-flow error: {e}"),
            ChipError::Configuration { reason } => write!(f, "configuration error: {reason}"),
        }
    }
}

impl std::error::Error for ChipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChipError::Array(e) => Some(e),
            ChipError::Physics(e) => Some(e),
            ChipError::Sensing(e) => Some(e),
            ChipError::Fluidics(e) => Some(e),
            ChipError::Manipulation(e) => Some(e),
            ChipError::DesignFlow(e) => Some(e),
            ChipError::Configuration { .. } => None,
        }
    }
}

impl From<labchip_array::ArrayError> for ChipError {
    fn from(e: labchip_array::ArrayError) -> Self {
        ChipError::Array(e)
    }
}

impl From<labchip_physics::PhysicsError> for ChipError {
    fn from(e: labchip_physics::PhysicsError) -> Self {
        ChipError::Physics(e)
    }
}

impl From<labchip_sensing::SensingError> for ChipError {
    fn from(e: labchip_sensing::SensingError) -> Self {
        ChipError::Sensing(e)
    }
}

impl From<labchip_fluidics::FluidicsError> for ChipError {
    fn from(e: labchip_fluidics::FluidicsError) -> Self {
        ChipError::Fluidics(e)
    }
}

impl From<labchip_manipulation::ManipulationError> for ChipError {
    fn from(e: labchip_manipulation::ManipulationError) -> Self {
        ChipError::Manipulation(e)
    }
}

impl From<labchip_designflow::DesignFlowError> for ChipError {
    fn from(e: labchip_designflow::DesignFlowError) -> Self {
        ChipError::DesignFlow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let e: ChipError = labchip_array::ArrayError::InvalidConfiguration {
            name: "clock",
            reason: "must be positive".into(),
        }
        .into();
        assert!(e.to_string().contains("array error"));
        assert!(e.source().is_some());

        let e = ChipError::Configuration {
            reason: "mismatched chamber".into(),
        };
        assert!(e.to_string().contains("mismatched chamber"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChipError>();
    }
}
