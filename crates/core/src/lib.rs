//! # labchip
//!
//! Facade crate of the `labchip` workspace: a digital twin of the CMOS
//! dielectrophoresis (DEP) biochip described in *"New Perspectives and
//! Opportunities From the Wild West of Microelectronic Biochips"* (Manaresi
//! et al., DATE 2005), together with the experiment harness that reproduces
//! every quantitative claim of that paper.
//!
//! The heavy lifting lives in the substrate crates —
//! [`labchip_physics`] (fields, DEP, particle dynamics),
//! [`labchip_array`] (the CMOS actuation array),
//! [`labchip_sensing`] (optical/capacitive readout),
//! [`labchip_fluidics`] (chambers, channels, fabrication, packaging),
//! [`labchip_manipulation`] (cage routing and assay protocols) and
//! [`labchip_designflow`] (Fig. 1 vs Fig. 2 flow comparison). This crate
//! composes them into a [`Biochip`](biochip::Biochip), a time-stepped
//! [`ChipSimulator`](simulator::ChipSimulator), the [`experiments`]
//! module (E1–E13), and the [`scenario`] engine — the unified
//! trait/registry/runner layer that makes every experiment enumerable,
//! parameterizable (serde-round-trippable configs, `key=value` overrides)
//! and runnable in bulk with streaming progress.
//!
//! ## Quickstart
//!
//! ```
//! use labchip::prelude::*;
//! use labchip_units::GridCoord;
//!
//! // The paper's reference chip: >100,000 electrodes, 0.35 µm CMOS.
//! let mut chip = Biochip::date05_reference();
//! assert!(chip.array().electrode_count() > 100_000);
//!
//! // Program a single cage and check that a viable cell is trapped there.
//! chip.program_single_cage(GridCoord::new(160, 160))?;
//! let summary = chip.cage_summary(GridCoord::new(160, 160))?;
//! assert!(summary.is_trap);
//! # Ok::<(), labchip::ChipError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod biochip;
pub mod error;
pub mod experiments;
pub mod scenario;
pub mod simulator;
pub mod workload;

/// Convenient re-exports of the most commonly used types across the whole
/// workspace.
pub mod prelude {
    pub use crate::biochip::{Biochip, BiochipBuilder, CageSummary};
    pub use crate::error::ChipError;
    pub use crate::experiments::{Experiment, ExperimentTable};
    pub use crate::scenario::{
        Progress, ProgressEvent, RunOutcome, Runner, Scenario, ScenarioContext, ScenarioError,
        ScenarioRegistry,
    };
    pub use crate::simulator::{
        ChipSimulator, SimulatedParticle, SimulationConfig, StepInfo, StepObserver,
    };
    pub use crate::workload::{
        AssayPhase, BatchDriver, CycleReport, ForceEnvelope, PhaseCtx, PhaseReport, PhaseSpec,
        ProtocolOutcome, ProtocolRunner, RecoveryPolicy, RouteTarget, WorkloadConfig,
    };
    pub use labchip_array::prelude::*;
    pub use labchip_designflow::prelude::*;
    pub use labchip_fluidics::prelude::*;
    pub use labchip_manipulation::prelude::*;
    pub use labchip_physics::prelude::*;
    pub use labchip_sensing::prelude::*;
}

pub use error::ChipError;
