//! The assembled biochip: array + chamber + packaging + medium + readout.

use crate::error::ChipError;
use labchip_array::addressing::ProgrammingInterface;
use labchip_array::chip::ActuatorArray;
use labchip_array::pattern::CagePattern;
use labchip_array::pixel::SensorSite;
use labchip_array::power::PowerModel;
use labchip_array::technology::TechnologyNode;
use labchip_fluidics::chamber::Microchamber;
use labchip_fluidics::packaging::PackagingStack;
use labchip_physics::dep::{DepForceModel, TrapAnalysis};
use labchip_physics::field::cache::FieldCache;
use labchip_physics::field::superposition::SuperpositionField;
use labchip_physics::field::{ElectrodePhase, FieldModel};
use labchip_physics::levitation::LevitationSolver;
use labchip_physics::medium::Medium;
use labchip_physics::particle::Particle;
use labchip_sensing::capacitive::CapacitiveSensor;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridCoord, GridDims, Hertz, Meters, Newtons, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

/// A fully assembled biochip system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Biochip {
    array: ActuatorArray,
    chamber: Microchamber,
    packaging: PackagingStack,
    medium: Medium,
    drive_frequency: Hertz,
    programming: ProgrammingInterface,
    scan_timing: ScanTiming,
    reference_particle: Particle,
}

/// Builder for a [`Biochip`].
#[derive(Debug, Clone)]
pub struct BiochipBuilder {
    dims: GridDims,
    technology: TechnologyNode,
    pitch: Option<Meters>,
    chamber: Microchamber,
    packaging: PackagingStack,
    medium: Medium,
    drive_frequency: Hertz,
    programming: ProgrammingInterface,
    scan_timing: ScanTiming,
    reference_particle: Particle,
    sensors: SensorSite,
    use_io_drivers: bool,
}

impl BiochipBuilder {
    /// Starts a builder with the DATE'05 reference defaults.
    pub fn new() -> Self {
        Self {
            dims: GridDims::new(320, 320),
            technology: TechnologyNode::cmos_350nm(),
            pitch: Some(Meters::from_micrometers(20.0)),
            chamber: Microchamber::date05_reference(),
            packaging: PackagingStack::date05_reference(),
            medium: Medium::physiological_low_conductivity(),
            drive_frequency: Hertz::from_kilohertz(10.0),
            programming: ProgrammingInterface::date05_reference(),
            scan_timing: ScanTiming::date05_reference(),
            reference_particle: Particle::viable_cell(Meters::from_micrometers(10.0)),
            sensors: SensorSite::Capacitive,
            use_io_drivers: false,
        }
    }

    /// Sets the array dimensions.
    pub fn dims(mut self, dims: GridDims) -> Self {
        self.dims = dims;
        self
    }

    /// Sets the technology node.
    pub fn technology(mut self, technology: TechnologyNode) -> Self {
        self.technology = technology;
        self
    }

    /// Sets an explicit electrode pitch (defaults to the node's cell-sized
    /// pitch).
    pub fn pitch(mut self, pitch: Meters) -> Self {
        self.pitch = Some(pitch);
        self
    }

    /// Sets the suspension medium.
    pub fn medium(mut self, medium: Medium) -> Self {
        self.medium = medium;
        self
    }

    /// Sets the DEP drive frequency.
    pub fn drive_frequency(mut self, frequency: Hertz) -> Self {
        self.drive_frequency = frequency;
        self
    }

    /// Sets the reference particle used by cage analyses.
    pub fn reference_particle(mut self, particle: Particle) -> Self {
        self.reference_particle = particle;
        self
    }

    /// Enables thick-oxide I/O drivers for the electrode drive.
    pub fn io_drivers(mut self, enabled: bool) -> Self {
        self.use_io_drivers = enabled;
        self
    }

    /// Sets the embedded sensor type.
    pub fn sensors(mut self, sensors: SensorSite) -> Self {
        self.sensors = sensors;
        self
    }

    /// Sets the microchamber.
    pub fn chamber(mut self, chamber: Microchamber) -> Self {
        self.chamber = chamber;
        self
    }

    /// Assembles the biochip.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Configuration`] when the packaging stack is
    /// inconsistent with the chamber, or [`ChipError::Fluidics`] when the
    /// stack itself is invalid.
    pub fn build(self) -> Result<Biochip, ChipError> {
        self.packaging.validate()?;
        let chamber_height = self.packaging.chamber_height();
        if (chamber_height.get() - self.chamber.height.get()).abs() > 1e-9 {
            return Err(ChipError::Configuration {
                reason: format!(
                    "packaging spacer ({:.0} um) and chamber height ({:.0} um) disagree",
                    chamber_height.as_micrometers(),
                    self.chamber.height.as_micrometers()
                ),
            });
        }
        let pitch = self.pitch.unwrap_or_else(|| {
            self.technology
                .electrode_pitch_for_cells(Meters::from_micrometers(25.0))
        });
        let mut array =
            ActuatorArray::with_geometry(self.dims, self.technology, pitch, chamber_height);
        array.install_sensors(self.sensors);
        array.set_io_drivers(self.use_io_drivers);
        Ok(Biochip {
            array,
            chamber: self.chamber,
            packaging: self.packaging,
            medium: self.medium,
            drive_frequency: self.drive_frequency,
            programming: self.programming,
            scan_timing: self.scan_timing,
            reference_particle: self.reference_particle,
        })
    }
}

impl Default for BiochipBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary of the trap programmed at one cage site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CageSummary {
    /// Whether the site is a genuine trap for the reference particle
    /// (negative DEP, positive stiffness, stable levitation).
    pub is_trap: bool,
    /// Lateral holding force of the cage.
    pub holding_force: Newtons,
    /// Lateral stiffness (N/m).
    pub lateral_stiffness: f64,
    /// Levitation height of the reference particle, if it levitates.
    pub levitation_height: Option<Meters>,
}

impl Biochip {
    /// The paper's reference system: 320×320 electrodes at 20 µm pitch in
    /// 0.35 µm CMOS, 80 µm chamber under an ITO glass lid, low-conductivity
    /// buffer, 10 kHz drive, capacitive sensors.
    pub fn date05_reference() -> Self {
        BiochipBuilder::new()
            .build()
            .expect("the reference configuration is always valid")
    }

    /// A small chip (used by examples and tests that do not need 100k
    /// electrodes): 32×32 electrodes, same technology and stack.
    pub fn small_reference(side: u32) -> Self {
        BiochipBuilder::new()
            .dims(GridDims::square(side))
            .build()
            .expect("the reference configuration is always valid")
    }

    /// The actuation array.
    pub fn array(&self) -> &ActuatorArray {
        &self.array
    }

    /// Mutable access to the actuation array.
    pub fn array_mut(&mut self) -> &mut ActuatorArray {
        &mut self.array
    }

    /// The microchamber.
    pub fn chamber(&self) -> &Microchamber {
        &self.chamber
    }

    /// The packaging stack.
    pub fn packaging(&self) -> &PackagingStack {
        &self.packaging
    }

    /// The suspension medium.
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// The DEP drive frequency.
    pub fn drive_frequency(&self) -> Hertz {
        self.drive_frequency
    }

    /// The programming interface.
    pub fn programming(&self) -> &ProgrammingInterface {
        &self.programming
    }

    /// The sensor scan timing.
    pub fn scan_timing(&self) -> &ScanTiming {
        &self.scan_timing
    }

    /// The reference particle used for cage analyses.
    pub fn reference_particle(&self) -> &Particle {
        &self.reference_particle
    }

    /// The electrode drive amplitude.
    pub fn drive_voltage(&self) -> Volts {
        self.array.drive_voltage()
    }

    /// The per-electrode capacitive sensing channel implied by the geometry.
    pub fn capacitive_sensor(&self) -> CapacitiveSensor {
        CapacitiveSensor {
            electrode_size: self.array.pitch(),
            chamber_height: self.array.chamber_height(),
            particle_radius: self.reference_particle.radius,
            ..CapacitiveSensor::date05_reference()
        }
    }

    /// Programs a cage pattern onto the array.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Array`] when the pattern does not fit the array.
    pub fn program_pattern(&mut self, pattern: &CagePattern) -> Result<(), ChipError> {
        pattern.apply_to(&mut self.array)?;
        Ok(())
    }

    /// Programs a single cage at the given electrode.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Array`] for an out-of-range coordinate.
    pub fn program_single_cage(&mut self, at: GridCoord) -> Result<(), ChipError> {
        self.array.reset();
        self.array.set_phase(at, ElectrodePhase::CounterPhase)?;
        Ok(())
    }

    /// Number of cages currently programmed.
    pub fn cage_count(&self) -> usize {
        self.array.counter_phase_count()
    }

    /// Builds the fast field model for the current array state.
    pub fn field_model(&self) -> SuperpositionField {
        SuperpositionField::new(self.array.to_electrode_plane())
    }

    /// Samples the current field onto a [`FieldCache`] lattice for bulk
    /// particle stepping. See the cache module docs for the direct-vs-cached
    /// trade-off; after reprogramming, use [`FieldCache::mark_dirty`] +
    /// [`FieldCache::refresh`] with a fresh [`Biochip::field_model`] rather
    /// than rebuilding.
    pub fn field_cache(&self) -> FieldCache {
        FieldCache::build(&self.field_model())
    }

    /// The DEP force model of the reference particle in this chip's medium
    /// and drive.
    pub fn dep_model(&self) -> DepForceModel {
        DepForceModel::new(&self.reference_particle, &self.medium, self.drive_frequency)
    }

    /// Time to reprogram the whole array once.
    pub fn frame_program_time(&self) -> Seconds {
        self.programming.full_frame_time(self.array.dims())
    }

    /// Time to scan the whole sensor array once.
    pub fn frame_scan_time(&self) -> Seconds {
        self.scan_timing.frame_time(self.array.dims())
    }

    /// Total chip power at the current drive frequency.
    pub fn total_power(&self) -> Watts {
        PowerModel::new(self.drive_frequency).total_power(&self.array)
    }

    /// Analyses the cage programmed at `site` for the reference particle.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Configuration`] when the site is not programmed
    /// as a cage, and [`ChipError::Array`] for out-of-range coordinates.
    pub fn cage_summary(&self, site: GridCoord) -> Result<CageSummary, ChipError> {
        if self.array.phase(site)? != ElectrodePhase::CounterPhase {
            return Err(ChipError::Configuration {
                reason: format!("electrode {site} is not programmed as a cage"),
            });
        }
        let field = self.field_model();
        let dep = self.dep_model();
        let pitch = self.array.pitch().get();
        let center = self.array.to_electrode_plane().electrode_center(site);
        let seed = labchip_units::Vec3::new(center.x, center.y, 1.2 * pitch);
        let chamber_height = self.array.chamber_height().get();
        let analysis = TrapAnalysis::analyze(
            &field,
            &dep,
            seed,
            pitch,
            (0.4 * pitch, chamber_height - 0.4 * pitch),
        );

        let levitation = LevitationSolver::new(
            &self.reference_particle,
            &self.medium,
            self.drive_frequency,
            Meters::new(self.reference_particle.radius.get() * 1.05),
            Meters::new(chamber_height - self.reference_particle.radius.get() * 1.05),
        )
        .solve(&field, (center.x, center.y));

        let is_trap = dep.is_negative_dep()
            && analysis.lateral_stiffness > 0.0
            && analysis.holding_force.get() > 0.0
            && levitation.is_some();

        Ok(CageSummary {
            is_trap,
            holding_force: analysis.holding_force,
            lateral_stiffness: analysis.lateral_stiffness,
            levitation_height: levitation.map(|p| p.height),
        })
    }

    /// Mean field magnitude |E| at mid-chamber height above the given
    /// electrode — a convenience probe used by examples and experiments.
    pub fn field_at_mid_height(&self, site: GridCoord) -> Result<f64, ChipError> {
        if !self.array.dims().contains(site) {
            return Err(ChipError::Array(labchip_array::ArrayError::OutOfBounds {
                coord: site,
                cols: self.array.dims().cols,
                rows: self.array.dims().rows,
            }));
        }
        let field = self.field_model();
        let center = self.array.to_electrode_plane().electrode_center(site);
        let probe =
            labchip_units::Vec3::new(center.x, center.y, 0.5 * self.array.chamber_height().get());
        Ok(field.e_squared(probe).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_chip_matches_paper_headline_numbers() {
        let chip = Biochip::date05_reference();
        assert!(chip.array().electrode_count() > 100_000);
        assert_eq!(chip.drive_voltage(), Volts::new(3.3));
        let vol = chip.chamber().volume().as_microliters();
        assert!(vol > 3.0 && vol < 5.0);
        assert!(chip.frame_program_time().as_millis() < 2.0);
        assert!(chip.total_power().as_milliwatts() < 200.0);
    }

    #[test]
    fn builder_rejects_inconsistent_chamber_and_packaging() {
        let chamber = Microchamber::new(
            Meters::from_millimeters(7.0),
            Meters::from_millimeters(7.0),
            Meters::from_micrometers(200.0),
        )
        .unwrap();
        let result = BiochipBuilder::new().chamber(chamber).build();
        assert!(matches!(result, Err(ChipError::Configuration { .. })));
    }

    #[test]
    fn single_cage_is_a_trap_for_a_viable_cell() {
        let mut chip = Biochip::small_reference(16);
        chip.program_single_cage(GridCoord::new(8, 8)).unwrap();
        assert_eq!(chip.cage_count(), 1);
        let summary = chip.cage_summary(GridCoord::new(8, 8)).unwrap();
        assert!(summary.is_trap);
        assert!(summary.holding_force.as_piconewtons() > 0.1);
        assert!(summary.lateral_stiffness > 0.0);
        let height = summary.levitation_height.expect("cell should levitate");
        assert!(height.as_micrometers() > 10.0 && height.as_micrometers() < 80.0);
    }

    #[test]
    fn cage_summary_requires_a_programmed_cage() {
        let chip = Biochip::small_reference(16);
        assert!(matches!(
            chip.cage_summary(GridCoord::new(8, 8)),
            Err(ChipError::Configuration { .. })
        ));
    }

    #[test]
    fn program_pattern_counts_cages() {
        use labchip_array::pattern::CagePattern;
        let mut chip = Biochip::small_reference(16);
        let pattern = CagePattern::standard_lattice(chip.array().dims()).unwrap();
        chip.program_pattern(&pattern).unwrap();
        assert_eq!(chip.cage_count(), pattern.cage_count());
    }

    #[test]
    fn io_drivers_change_drive_voltage() {
        let chip = BiochipBuilder::new()
            .dims(GridDims::square(16))
            .technology(TechnologyNode::cmos_180nm())
            .io_drivers(true)
            .build()
            .unwrap();
        assert_eq!(chip.drive_voltage(), Volts::new(3.3));
    }

    #[test]
    fn field_probe_is_positive_inside_the_array() {
        let mut chip = Biochip::small_reference(16);
        chip.program_single_cage(GridCoord::new(8, 8)).unwrap();
        let e = chip.field_at_mid_height(GridCoord::new(8, 8)).unwrap();
        assert!(e > 1e3, "field = {e} V/m");
        assert!(chip.field_at_mid_height(GridCoord::new(40, 0)).is_err());
    }
}
