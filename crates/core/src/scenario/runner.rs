//! Bulk execution of scenarios: subset selection, per-scenario seeds,
//! `key=value` overrides, wall-clock accounting and rayon parallelism.

use super::registry::{DynScenario, ScenarioRegistry};
use super::{
    apply_override, parse_override, Progress, ProgressEvent, ScenarioContext, ScenarioError,
};
use crate::experiments::ExperimentTable;
use serde_json::{Map, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The record of one completed scenario run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scenario identifier.
    pub id: String,
    /// Scenario description.
    pub description: String,
    /// The exact config the run used (defaults + seed + overrides),
    /// serialised.
    pub config: Value,
    /// The seed in effect: the derived per-scenario seed when the runner was
    /// given a base seed, otherwise the config's own `seed` field (0 for
    /// seedless scenarios).
    pub seed: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Rows streamed through the progress sink.
    pub rows_streamed: usize,
    /// The rendered report table.
    pub table: ExperimentTable,
    /// The scenario's full typed output, serialised.
    pub output: Value,
}

/// Executes registry scenarios in bulk.
///
/// ```
/// use labchip::scenario::{Runner, ScenarioRegistry};
///
/// let mut runner = Runner::new(ScenarioRegistry::all());
/// runner.set_override("spec_halfwidth_sigmas=2.5").unwrap();
/// let outcomes = runner.run(&["e8"]).unwrap();
/// assert_eq!(outcomes[0].config.as_object().unwrap()
///     .get("spec_halfwidth_sigmas").unwrap().as_f64(), Some(2.5));
/// ```
pub struct Runner {
    registry: ScenarioRegistry,
    parallel: bool,
    base_seed: Option<u64>,
    overrides: Vec<(String, Value)>,
    progress: Arc<dyn Progress>,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("registry", &self.registry)
            .field("parallel", &self.parallel)
            .field("base_seed", &self.base_seed)
            .field("overrides", &self.overrides)
            .finish_non_exhaustive()
    }
}

impl Runner {
    /// Creates a runner over a registry: parallel, unseeded, no overrides,
    /// silent progress.
    pub fn new(registry: ScenarioRegistry) -> Self {
        Self {
            registry,
            parallel: true,
            base_seed: None,
            overrides: Vec::new(),
            progress: Arc::new(super::NullProgress),
        }
    }

    /// The registry the runner executes from.
    pub fn registry(&self) -> &ScenarioRegistry {
        &self.registry
    }

    /// Chooses between rayon-parallel (default) and in-order serial
    /// execution. Outcome order and content are identical either way; serial
    /// keeps the progress stream un-interleaved.
    pub fn set_parallel(&mut self, parallel: bool) -> &mut Self {
        self.parallel = parallel;
        self
    }

    /// Sets a base seed: each scenario gets a distinct seed derived from it
    /// (stable per scenario id), injected into configs that carry a
    /// top-level `seed` field and exposed via
    /// [`ScenarioContext::seed`](super::ScenarioContext::seed). Explicit
    /// `seed=…` overrides still win.
    pub fn set_base_seed(&mut self, seed: u64) -> &mut Self {
        self.base_seed = Some(seed);
        self
    }

    /// Streams run telemetry into `progress`.
    pub fn set_progress(&mut self, progress: Arc<dyn Progress>) -> &mut Self {
        self.progress = progress;
        self
    }

    /// Adds a `key=value` config override (dot-separated paths reach nested
    /// fields). Values parse as JSON with a bare-string fallback; they are
    /// applied to every selected scenario whose config has the key, and the
    /// run fails if an override matches no selected scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Override`] on a malformed spec.
    pub fn set_override(&mut self, spec: &str) -> Result<&mut Self, ScenarioError> {
        let parsed = parse_override(spec)?;
        self.overrides.push(parsed);
        Ok(self)
    }

    /// Runs every registered scenario, in registration order.
    ///
    /// # Errors
    ///
    /// See [`Runner::run`].
    pub fn run_all(&self) -> Result<Vec<RunOutcome>, ScenarioError> {
        let ids: Vec<&'static str> = self.registry.ids();
        self.run(&ids)
    }

    /// Runs the identified subset, preserving the given order in the
    /// returned outcomes.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownScenario`] for an unmatched id,
    /// [`ScenarioError::Override`] when an override touches no selected
    /// scenario, [`ScenarioError::Config`] when an overridden config fails
    /// to decode onto the typed config.
    pub fn run<I: AsRef<str>>(&self, ids: &[I]) -> Result<Vec<RunOutcome>, ScenarioError> {
        let mut selected: Vec<Arc<dyn DynScenario>> = Vec::with_capacity(ids.len());
        for id in ids {
            let scenario =
                self.registry
                    .get(id.as_ref())
                    .ok_or_else(|| ScenarioError::UnknownScenario {
                        id: id.as_ref().trim().to_owned(),
                        expected: self.registry.id_range(),
                    })?;
            selected.push(Arc::clone(scenario));
        }

        // Prepare configs up front: defaults, then derived seeds, then
        // overrides (so an explicit `seed=…` override wins).
        let mut configs: Vec<Value> = Vec::with_capacity(selected.len());
        let mut seeds: Vec<u64> = Vec::with_capacity(selected.len());
        for scenario in &selected {
            let mut config = scenario.default_config();
            let seed = match self.base_seed {
                Some(base) => {
                    let derived = derive_seed(base, scenario.id());
                    if let Some(slot) = config.as_object_mut().and_then(|m| m.get_mut("seed")) {
                        *slot = Value::Number(serde_json::Number::from(derived));
                    }
                    derived
                }
                None => config
                    .as_object()
                    .and_then(|m| m.get("seed"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
            };
            seeds.push(seed);
            configs.push(config);
        }
        for (key, value) in &self.overrides {
            let mut applied = 0usize;
            for config in &mut configs {
                if apply_override(config, key, value) {
                    applied += 1;
                }
            }
            if applied == 0 {
                return Err(ScenarioError::Override {
                    message: format!("`{key}` matched no config field of the selected scenarios"),
                });
            }
        }
        // A `seed=…` override may have changed a config's seed after the
        // derivation above: re-read the effective value so the reported
        // seed always matches the config the scenario actually ran with.
        for (config, seed) in configs.iter().zip(&mut seeds) {
            if let Some(effective) = config
                .as_object()
                .and_then(|m| m.get("seed"))
                .and_then(Value::as_u64)
            {
                *seed = effective;
            }
        }

        let run_one = |index: usize| -> Result<RunOutcome, ScenarioError> {
            let scenario = &selected[index];
            let progress = Arc::clone(&self.progress);
            progress.on_event(&ProgressEvent::ScenarioStarted {
                scenario: scenario.id().to_owned(),
            });
            let mut ctx = ScenarioContext::new(scenario.id(), seeds[index], progress);
            let started = Instant::now();
            let run = scenario.run_value(&configs[index], &mut ctx)?;
            let wall = started.elapsed();
            self.progress.on_event(&ProgressEvent::ScenarioFinished {
                scenario: scenario.id().to_owned(),
                rows: ctx.rows_emitted(),
                wall_ms: wall.as_secs_f64() * 1e3,
            });
            Ok(RunOutcome {
                id: scenario.id().to_owned(),
                description: scenario.describe().to_owned(),
                config: configs[index].clone(),
                seed: seeds[index],
                wall,
                rows_streamed: ctx.rows_emitted(),
                table: run.table,
                output: run.output,
            })
        };

        let mut slots: Vec<Option<Result<RunOutcome, ScenarioError>>> =
            (0..selected.len()).map(|_| None).collect();
        if self.parallel && selected.len() > 1 {
            use rayon::prelude::*;
            slots
                .par_iter_mut()
                .enumerate()
                .for_each(|(index, slot)| *slot = Some(run_one(index)));
        } else {
            for (index, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_one(index));
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every slot was filled"))
            .collect()
    }
}

/// Derives a per-scenario seed from a base seed and the scenario id: the id
/// is FNV-hashed and the result diffused with a SplitMix64 round, matching
/// the simulator's philosophy of well-separated deterministic streams.
fn derive_seed(base: u64, id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = base ^ h;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Renders a set of outcomes as one JSON document — the payload of
/// `report run --json`.
pub fn outcomes_to_json(outcomes: &[RunOutcome]) -> Value {
    let scenarios: Vec<Value> = outcomes
        .iter()
        .map(|outcome| {
            let mut entry = Map::new();
            entry.insert("id", Value::String(outcome.id.clone()));
            entry.insert("description", Value::String(outcome.description.clone()));
            entry.insert("seed", serde_json::to_value(&outcome.seed));
            entry.insert(
                "wall_ms",
                serde_json::to_value(&(outcome.wall.as_secs_f64() * 1e3)),
            );
            entry.insert("config", outcome.config.clone());
            entry.insert("table", outcome.table.to_json());
            entry.insert("output", outcome.output.clone());
            Value::Object(entry)
        })
        .collect();
    let mut doc = Map::new();
    doc.insert(
        "source",
        Value::String(
            "Reproduction of Manaresi et al., \"New Perspectives and Opportunities From the \
             Wild West of Microelectronic Biochips\" (DATE 2005)"
                .to_owned(),
        ),
    );
    doc.insert("scenarios", Value::Array(scenarios));
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CollectingProgress;

    #[test]
    fn unknown_id_is_rejected() {
        let runner = Runner::new(ScenarioRegistry::all());
        let err = runner.run(&["e42"]).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::UnknownScenario {
                id: "e42".to_owned(),
                expected: ScenarioRegistry::all().id_range(),
            }
        );
        // The expected-range hint is derived from the registry, never
        // hardcoded, so it tracks new scenario registrations.
        assert!(err.to_string().contains("expected E1..E"));
    }

    #[test]
    fn override_matching_no_scenario_is_rejected() {
        let mut runner = Runner::new(ScenarioRegistry::all());
        runner.set_override("not_a_field=1").unwrap();
        let err = runner.run(&["e6"]).unwrap_err();
        assert!(matches!(err, ScenarioError::Override { .. }));
    }

    #[test]
    fn ill_typed_override_reports_the_scenario() {
        let mut runner = Runner::new(ScenarioRegistry::all());
        runner.set_override("batch_sizes=true").unwrap();
        let err = runner.run(&["e6"]).unwrap_err();
        match err {
            ScenarioError::Config { scenario, .. } => assert_eq!(scenario, "E6"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn overrides_round_trip_through_typed_configs() {
        let mut runner = Runner::new(ScenarioRegistry::all());
        runner.set_override("batch_sizes=[1,5]").unwrap();
        let outcomes = runner.run(&["e6"]).unwrap();
        let outcome = &outcomes[0];
        // 5 fixed columns + one per batch size (see e6_fabrication).
        assert_eq!(outcome.table.columns.len(), 7);
        assert_eq!(
            outcome
                .config
                .as_object()
                .unwrap()
                .get("batch_sizes")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn base_seed_derives_distinct_stable_per_scenario_seeds() {
        let mut runner = Runner::new(ScenarioRegistry::all());
        runner.set_base_seed(1234);
        let outcomes = runner.run(&["e6", "e8"]).unwrap();
        assert_ne!(outcomes[0].seed, outcomes[1].seed);
        // E8's config carries a seed field: the derived seed must land in it.
        assert_eq!(
            outcomes[1]
                .config
                .as_object()
                .unwrap()
                .get("seed")
                .unwrap()
                .as_u64(),
            Some(outcomes[1].seed)
        );
        let again = runner.run(&["e6", "e8"]).unwrap();
        assert_eq!(outcomes[1].seed, again[1].seed);
    }

    #[test]
    fn explicit_seed_override_wins_and_is_reported() {
        let mut runner = Runner::new(ScenarioRegistry::all());
        runner.set_base_seed(7);
        runner.set_override("seed=42").unwrap();
        let outcomes = runner.run(&["e8"]).unwrap();
        assert_eq!(outcomes[0].seed, 42, "reported seed must match the config");
        assert_eq!(
            outcomes[0]
                .config
                .as_object()
                .unwrap()
                .get("seed")
                .unwrap()
                .as_u64(),
            Some(42)
        );
    }

    #[test]
    fn progress_streams_rows_and_lifecycle() {
        let progress = Arc::new(CollectingProgress::new());
        let mut runner = Runner::new(ScenarioRegistry::all());
        runner.set_parallel(false);
        runner.set_progress(progress.clone());
        let outcomes = runner.run(&["e6"]).unwrap();
        let events = progress.events_for("E6");
        assert!(matches!(
            events.first(),
            Some(ProgressEvent::ScenarioStarted { .. })
        ));
        assert!(matches!(
            events.last(),
            Some(ProgressEvent::ScenarioFinished { .. })
        ));
        let rows = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::Row { .. }))
            .count();
        assert_eq!(rows, outcomes[0].table.row_count());
        assert_eq!(rows, outcomes[0].rows_streamed);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let ids = ["e6", "e8", "e2"];
        let mut serial = Runner::new(ScenarioRegistry::all());
        serial.set_parallel(false);
        let serial_outcomes = serial.run(&ids).unwrap();
        let parallel_outcomes = Runner::new(ScenarioRegistry::all()).run(&ids).unwrap();
        for (s, p) in serial_outcomes.iter().zip(&parallel_outcomes) {
            assert_eq!(s.id, p.id);
            assert_eq!(s.table, p.table);
            assert_eq!(s.output, p.output);
        }
    }
}
