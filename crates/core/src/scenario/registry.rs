//! Type-erased scenario handles and the registry that enumerates them.

use super::{Scenario, ScenarioContext, ScenarioError};
use crate::experiments::ExperimentTable;
use serde_json::Value;
use std::sync::Arc;

/// The result of one type-erased scenario run: the rendered table plus the
/// full typed output as a `serde_json` value (what `--json` emits).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// The rendered report table.
    pub table: ExperimentTable,
    /// The scenario's typed output, serialised.
    pub output: Value,
}

/// Object-safe face of [`Scenario`]: configs and outputs cross the `dyn`
/// boundary as `serde_json` [`Value`]s, decoded onto the typed config inside
/// [`DynScenario::run_value`].
pub trait DynScenario: Send + Sync {
    /// Stable identifier (`"E1"` … `"E9"`).
    fn id(&self) -> &'static str;

    /// One-line human description.
    fn describe(&self) -> &'static str;

    /// The default (paper-scenario) config, serialised.
    fn default_config(&self) -> Value;

    /// Decodes `config` onto the typed config and runs the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Config`] when `config` does not decode.
    fn run_value(
        &self,
        config: &Value,
        ctx: &mut ScenarioContext,
    ) -> Result<ScenarioRun, ScenarioError>;
}

impl dyn DynScenario + '_ {
    /// Runs the scenario with its default config and a silent context.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioError::Config`]; with a well-formed
    /// implementation the default config always decodes.
    pub fn run_default(&self) -> Result<ScenarioRun, ScenarioError> {
        let mut ctx = ScenarioContext::silent(self.id());
        self.run_value(&self.default_config(), &mut ctx)
    }
}

/// Adapter implementing [`DynScenario`] for any typed [`Scenario`].
struct Erased<S: Scenario>(S);

impl<S: Scenario> DynScenario for Erased<S> {
    fn id(&self) -> &'static str {
        self.0.id()
    }

    fn describe(&self) -> &'static str {
        self.0.describe()
    }

    fn default_config(&self) -> Value {
        serde_json::to_value(&S::Config::default())
    }

    fn run_value(
        &self,
        config: &Value,
        ctx: &mut ScenarioContext,
    ) -> Result<ScenarioRun, ScenarioError> {
        let config: S::Config =
            serde_json::from_value(config).map_err(|err| ScenarioError::Config {
                scenario: self.0.id().to_owned(),
                message: err.to_string(),
            })?;
        let output = self.0.run(&config, ctx);
        let output_value = serde_json::to_value(&output);
        Ok(ScenarioRun {
            table: output.into(),
            output: output_value,
        })
    }
}

/// An ordered collection of scenarios, addressable by identifier
/// (case-insensitively).
#[derive(Clone, Default)]
pub struct ScenarioRegistry {
    entries: Vec<Arc<dyn DynScenario>>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("ids", &self.ids())
            .finish()
    }
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Every registered scenario: the paper experiments E1 through E9 in
    /// paper order, followed by the full-array pipeline scenarios E10
    /// (concurrent sort), E11 (sustained throughput), E12 (closed-loop
    /// assay under sensor noise), E13 (programmable protocols) and E14
    /// (fault-injection sweep over the event-sourced pipeline).
    pub fn all() -> Self {
        use crate::experiments::*;
        let mut registry = Self::empty();
        registry.register(e1_scale::ScaleScenario);
        registry.register(e2_technology::TechnologyScenario);
        registry.register(e3_motion::MotionScenario);
        registry.register(e4_sensing::SensingScenario);
        registry.register(e5_designflow::DesignFlowScenario);
        registry.register(e6_fabrication::FabricationScenario);
        registry.register(e7_routing::RoutingScenario);
        registry.register(e8_centering::CenteringScenario);
        registry.register(e9_assay::AssayScenario);
        registry.register(e10_fullarray::FullArrayScenario);
        registry.register(e11_throughput::ThroughputScenario);
        registry.register(e12_closedloop::ClosedLoopScenario);
        registry.register(e13_protocols::ProtocolsScenario);
        registry.register(e14_faults::FaultsScenario);
        registry
    }

    /// Registers a typed scenario behind a trait object.
    ///
    /// # Panics
    ///
    /// Panics if a scenario with the same identifier (case-insensitively) is
    /// already registered — duplicate ids are a programming error.
    pub fn register<S: Scenario>(&mut self, scenario: S) {
        assert!(
            self.get(scenario.id()).is_none(),
            "duplicate scenario id `{}`",
            scenario.id()
        );
        self.entries.push(Arc::new(Erased(scenario)));
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn DynScenario>> {
        self.entries.iter()
    }

    /// Looks a scenario up by identifier, ignoring case and surrounding
    /// whitespace (`"e3"`, `"E3"`, `" e3 "` all match E3).
    pub fn get(&self, id: &str) -> Option<&Arc<dyn DynScenario>> {
        let id = id.trim();
        self.entries
            .iter()
            .find(|s| s.id().eq_ignore_ascii_case(id))
    }

    /// All identifiers in registration order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.id()).collect()
    }

    /// The registry's identifier span, rendered `"E1..E14"` — derived
    /// from the actual registrations so user-facing messages can never
    /// drift when a new scenario lands.
    pub fn id_range(&self) -> String {
        match (self.entries.first(), self.entries.last()) {
            (Some(first), Some(last)) if first.id() != last.id() => {
                format!("{}..{}", first.id(), last.id())
            }
            (Some(only), _) => only.id().to_owned(),
            _ => "none registered".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_enumerates_all_scenarios_in_order() {
        let registry = ScenarioRegistry::all();
        assert_eq!(
            registry.ids(),
            [
                "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
                "E14"
            ]
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let registry = ScenarioRegistry::all();
        assert_eq!(registry.get("e7").map(|s| s.id()), Some("E7"));
        assert_eq!(registry.get(" E7 ").map(|s| s.id()), Some("E7"));
        assert!(registry.get("E42").is_none());
    }

    #[test]
    fn default_configs_decode_and_run() {
        // E6 is the cheapest scenario; the full sweep lives in the
        // integration suite.
        let registry = ScenarioRegistry::all();
        let run = registry.get("E6").unwrap().run_default().unwrap();
        assert!(run.table.row_count() >= 1);
        assert!(!run.output.is_null());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario id")]
    fn duplicate_ids_panic() {
        let mut registry = ScenarioRegistry::all();
        registry.register(crate::experiments::e6_fabrication::FabricationScenario);
    }
}
