//! Streaming telemetry for scenario runs.
//!
//! A [`Progress`] sink receives structured [`ProgressEvent`]s while
//! scenarios execute: scenario start/finish from the
//! [`Runner`](crate::scenario::Runner), one row-level event per result row
//! from [`ScenarioContext::emit_row`](crate::scenario::ScenarioContext), and
//! simulator step batches bridged from the
//! [`ChipSimulator`](crate::simulator::ChipSimulator) step-observer hook.
//! Sinks must be `Send + Sync`: parallel runs deliver events from worker
//! threads, interleaved across scenarios.

use crate::simulator::{StepInfo, StepObserver};
use std::sync::{Arc, Mutex};

/// A telemetry event streamed during a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A scenario began executing.
    ScenarioStarted {
        /// Scenario identifier.
        scenario: String,
    },
    /// One result row was produced.
    Row {
        /// Scenario identifier.
        scenario: String,
        /// Zero-based row index within the run.
        index: usize,
        /// Short human-readable digest of the row.
        summary: String,
    },
    /// The chip simulator advanced a batch of integration steps.
    SimSteps {
        /// Scenario identifier.
        scenario: String,
        /// Steps advanced in this batch.
        steps: usize,
        /// Simulated time elapsed so far, seconds.
        elapsed_s: f64,
        /// Particles being stepped.
        particles: usize,
    },
    /// A scenario finished.
    ScenarioFinished {
        /// Scenario identifier.
        scenario: String,
        /// Rows streamed during the run.
        rows: usize,
        /// Wall-clock duration, milliseconds.
        wall_ms: f64,
    },
}

impl ProgressEvent {
    /// The identifier of the scenario the event belongs to.
    pub fn scenario(&self) -> &str {
        match self {
            ProgressEvent::ScenarioStarted { scenario }
            | ProgressEvent::Row { scenario, .. }
            | ProgressEvent::SimSteps { scenario, .. }
            | ProgressEvent::ScenarioFinished { scenario, .. } => scenario,
        }
    }
}

/// A sink for [`ProgressEvent`]s.
pub trait Progress: Send + Sync {
    /// Receives one event. Called from whichever thread runs the scenario.
    fn on_event(&self, event: &ProgressEvent);
}

/// A sink that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl Progress for NullProgress {
    fn on_event(&self, _event: &ProgressEvent) {}
}

/// A sink that records every event — for tests and for callers that want to
/// post-process the stream.
#[derive(Debug, Default)]
pub struct CollectingProgress {
    events: Mutex<Vec<ProgressEvent>>,
}

impl CollectingProgress {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events received so far.
    pub fn events(&self) -> Vec<ProgressEvent> {
        self.events.lock().expect("collector lock").clone()
    }

    /// Events belonging to one scenario.
    pub fn events_for(&self, scenario: &str) -> Vec<ProgressEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.scenario() == scenario)
            .collect()
    }
}

impl Progress for CollectingProgress {
    fn on_event(&self, event: &ProgressEvent) {
        self.events
            .lock()
            .expect("collector lock")
            .push(event.clone());
    }
}

/// Bridges the simulator's step-observer hook into a [`Progress`] sink.
pub(crate) struct ProgressStepObserver {
    scenario: String,
    progress: Arc<dyn Progress>,
}

impl ProgressStepObserver {
    pub(crate) fn new(scenario: String, progress: Arc<dyn Progress>) -> Self {
        Self { scenario, progress }
    }
}

impl StepObserver for ProgressStepObserver {
    fn on_steps(&self, info: &StepInfo) {
        self.progress.on_event(&ProgressEvent::SimSteps {
            scenario: self.scenario.clone(),
            steps: info.steps,
            elapsed_s: info.elapsed.get(),
            particles: info.particles,
        });
    }
}
