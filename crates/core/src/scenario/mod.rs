//! The unified scenario engine: one trait, a registry, and a streaming
//! runner for the E1–E14 scenarios.
//!
//! The experiment modules under [`crate::experiments`] each expose a
//! typed `Config` and a typed result; this module gives them one shared
//! contract so that callers — the `report` binary, benches, examples and
//! bulk sweeps — no longer re-plumb each experiment by hand:
//!
//! * [`Scenario`] is the typed contract: a `Config` (serde round-trippable,
//!   with paper-scenario defaults) and an `Output` that renders into an
//!   [`ExperimentTable`], plus `id`/`describe` metadata and a
//!   [`Scenario::run`] entry point that receives a [`ScenarioContext`];
//! * [`ScenarioRegistry`] enumerates every experiment behind type-erased
//!   trait objects, with `serde_json` [`Value`]s carrying configs and
//!   outputs across the `dyn` boundary;
//! * [`Runner`] executes any subset — in parallel via rayon, with
//!   per-scenario seeds, wall-clock accounting and `key=value` config
//!   overrides parsed onto the typed configs;
//! * [`ScenarioContext`] carries the seed and a [`Progress`] sink so long
//!   runs stream row-level telemetry instead of going dark; its
//!   [`ScenarioContext::step_observer`] bridges the
//!   [`ChipSimulator`](crate::simulator::ChipSimulator) step-observer hook
//!   into the same sink.
//!
//! ```
//! use labchip::scenario::{Runner, ScenarioRegistry};
//!
//! let registry = ScenarioRegistry::all();
//! assert_eq!(registry.len(), 14);
//!
//! let mut runner = Runner::new(ScenarioRegistry::all());
//! runner.set_override("batch_sizes=[1,5]").unwrap();
//! let outcomes = runner.run(&["e6"]).unwrap();
//! assert_eq!(outcomes[0].id, "E6");
//! assert_eq!(outcomes[0].table.columns.len(), 5 + 2);
//! ```

mod progress;
mod registry;
mod runner;

pub use progress::{CollectingProgress, NullProgress, Progress, ProgressEvent};
pub use registry::{DynScenario, ScenarioRegistry, ScenarioRun};
pub use runner::{outcomes_to_json, RunOutcome, Runner};

use crate::experiments::ExperimentTable;
use crate::simulator::StepObserver;
use serde::de::DeserializeOwned;
use serde::Serialize;
use serde_json::Value;
use std::fmt;
use std::sync::Arc;

/// One experiment of the reproduction, as a first-class, enumerable,
/// parameterizable unit.
///
/// Implementations are zero-sized handles (e.g.
/// [`crate::experiments::e6_fabrication::FabricationScenario`]); the state
/// lives in the typed `Config`. The engine talks to scenarios through
/// [`DynScenario`], which erases the associated types via `serde_json`
/// values, so anything implementing this trait can be dropped into the
/// [`ScenarioRegistry`] and driven by the [`Runner`].
pub trait Scenario: Send + Sync + 'static {
    /// The typed configuration; `Default` must be the paper's scenario.
    type Config: Serialize + DeserializeOwned + Default + Clone + Send;

    /// The typed result; must render into an [`ExperimentTable`] and
    /// serialise for `--json` output.
    type Output: Into<ExperimentTable> + Serialize;

    /// Stable identifier (`"E1"` … `"E9"` for the paper experiments).
    fn id(&self) -> &'static str;

    /// One-line human description of what the scenario measures.
    fn describe(&self) -> &'static str;

    /// Runs the scenario. Implementations should stream one
    /// [`ScenarioContext::emit_row`] per result row as it is produced.
    fn run(&self, config: &Self::Config, ctx: &mut ScenarioContext) -> Self::Output;
}

/// Per-run state handed to [`Scenario::run`]: the derived seed, the
/// scenario's identifier and the [`Progress`] sink rows are streamed into.
pub struct ScenarioContext {
    scenario_id: String,
    seed: u64,
    progress: Arc<dyn Progress>,
    rows: usize,
}

impl fmt::Debug for ScenarioContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioContext")
            .field("scenario_id", &self.scenario_id)
            .field("seed", &self.seed)
            .field("rows", &self.rows)
            .finish_non_exhaustive()
    }
}

impl ScenarioContext {
    /// Creates a context streaming into `progress`.
    pub fn new(scenario_id: impl Into<String>, seed: u64, progress: Arc<dyn Progress>) -> Self {
        Self {
            scenario_id: scenario_id.into(),
            seed,
            progress,
            rows: 0,
        }
    }

    /// A context that discards all telemetry — what the legacy
    /// `run(&Config)` shims use.
    pub fn silent(scenario_id: impl Into<String>) -> Self {
        Self::new(scenario_id, 0, Arc::new(NullProgress))
    }

    /// The seed the runner derived for this scenario run. Scenarios whose
    /// config carries its own `seed` field have that field already updated;
    /// seedless scenarios may use this directly.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The running scenario's identifier.
    pub fn scenario_id(&self) -> &str {
        &self.scenario_id
    }

    /// Number of rows streamed so far.
    pub fn rows_emitted(&self) -> usize {
        self.rows
    }

    /// Streams one row-level telemetry event. `summary` is a short
    /// human-readable digest of the row (not the rendered table cells).
    pub fn emit_row(&mut self, summary: impl Into<String>) {
        let event = ProgressEvent::Row {
            scenario: self.scenario_id.clone(),
            index: self.rows,
            summary: summary.into(),
        };
        self.rows += 1;
        self.progress.on_event(&event);
    }

    /// A [`StepObserver`] forwarding simulator step batches into this
    /// context's progress sink — plug it into
    /// [`ChipSimulator::set_step_observer`](crate::simulator::ChipSimulator::set_step_observer)
    /// so long particle runs report liveness.
    pub fn step_observer(&self) -> Arc<dyn StepObserver> {
        Arc::new(progress::ProgressStepObserver::new(
            self.scenario_id.clone(),
            Arc::clone(&self.progress),
        ))
    }

    /// The progress sink itself (to share with sub-components).
    pub fn progress(&self) -> Arc<dyn Progress> {
        Arc::clone(&self.progress)
    }
}

/// Errors produced by the scenario engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// An identifier did not match any registered scenario.
    UnknownScenario {
        /// The offending identifier.
        id: String,
        /// The registry's identifier span (e.g. `"E1..E14"`), derived
        /// from the live registrations.
        expected: String,
    },
    /// A config value failed to decode onto the scenario's typed config.
    Config {
        /// The scenario whose config was rejected.
        scenario: String,
        /// Decoder message.
        message: String,
    },
    /// A `key=value` override was malformed or matched no selected scenario.
    Override {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownScenario { id, expected } => {
                write!(f, "unknown scenario id `{id}` (expected {expected})")
            }
            ScenarioError::Config { scenario, message } => {
                write!(f, "invalid config for {scenario}: {message}")
            }
            ScenarioError::Override { message } => write!(f, "bad override: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parses one `key=value` override: the value text is parsed as JSON when it
/// is valid JSON and falls back to a bare string otherwise, so
/// `threads=2`, `use_io_drivers=true`, `sides=[64,320]` and `label=foo` all
/// work without quoting gymnastics.
pub(crate) fn parse_override(spec: &str) -> Result<(String, Value), ScenarioError> {
    let (key, text) = spec
        .split_once('=')
        .ok_or_else(|| ScenarioError::Override {
            message: format!("`{spec}` is not of the form key=value"),
        })?;
    let key = key.trim();
    if key.is_empty() {
        return Err(ScenarioError::Override {
            message: format!("`{spec}` has an empty key"),
        });
    }
    let text = text.trim();
    let value =
        serde_json::from_str::<Value>(text).unwrap_or_else(|_| Value::String(text.to_owned()));
    Ok((key.to_owned(), value))
}

/// Applies an override to a config tree if the (dot-separated) path already
/// exists, returning whether it was applied. Only existing keys are
/// replaced — inventing new keys would silently miss the typed config.
pub(crate) fn apply_override(config: &mut Value, path: &str, value: &Value) -> bool {
    let mut cursor = config;
    let mut segments = path.split('.').peekable();
    while let Some(segment) = segments.next() {
        let Some(object) = cursor.as_object_mut() else {
            return false;
        };
        let Some(slot) = object.get_mut(segment) else {
            return false;
        };
        if segments.peek().is_none() {
            *slot = value.clone();
            return true;
        }
        cursor = slot;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_parsing_covers_json_and_bare_strings() {
        let (k, v) = parse_override("threads=2").unwrap();
        assert_eq!(k, "threads");
        assert_eq!(v.as_u64(), Some(2));
        let (_, v) = parse_override("sides=[1,2]").unwrap();
        assert_eq!(v.as_array().map(Vec::len), Some(2));
        let (_, v) = parse_override("label=hello world").unwrap();
        assert_eq!(v.as_str(), Some("hello world"));
        assert!(parse_override("no-equals").is_err());
        assert!(parse_override("=5").is_err());
    }

    #[test]
    fn override_application_respects_existing_paths() {
        let mut config: Value = serde_json::from_str(r#"{"a":{"b":1},"c":2}"#).unwrap();
        assert!(apply_override(&mut config, "a.b", &Value::Bool(true)));
        assert!(apply_override(&mut config, "c", &Value::Null));
        assert!(!apply_override(&mut config, "a.missing", &Value::Null));
        assert!(!apply_override(&mut config, "missing", &Value::Null));
        assert_eq!(
            serde_json::to_string(&config),
            r#"{"a":{"b":true},"c":null}"#
        );
    }
}
