//! The batch workload driver: complete paper-style assays at full-array
//! scale.
//!
//! The scenario experiments up to E9 exercise one subsystem each; this
//! module drives the *assembled* pipeline the way the paper's §4 envisions
//! the chip being used — thousands of cells manipulated concurrently,
//! cycle after cycle:
//!
//! 1. **Load** a batch of particles onto a full-array cage lattice
//!    (fluidics),
//! 2. **Route** every particle to its slot in a target pattern with the
//!    incremental sharded planner
//!    ([`IncrementalRouter`]), in parallel across shards,
//! 3. **Check** each planned move against the [`ForceEnvelope`] — the
//!    maximum cage speed the DEP holding force can sustain against Stokes
//!    drag, derived once from the *cached* field engine
//!    ([`FieldCache`](labchip_physics::field::cache::FieldCache)) — and
//!    against the array's programming-clock budget
//!    ([`WindowBudget`]),
//! 4. **Sense**: synthesize a full-array detection scan through the real
//!    sensor chain ([`ArrayScanner`]: per-site noise streams, frame
//!    averaging, offset calibration, threshold classification) and compare
//!    the *detected* occupancy against the plan,
//! 5. **Recover**: when detection disagrees with the plan, run a bounded
//!    sense→decide→act sub-loop — re-scan suspect sites with more frames,
//!    then re-route particles whose detected position is off the plan with
//!    the incremental router — charging the time to the `recovery` phase of
//!    the [`TimeBreakdown`],
//! 6. **Flush** the batch out (fluidics) and start over.
//!
//! Every cycle reports a [`CycleReport`] with a per-phase
//! [`TimeBreakdown`]; the running [`SustainedThroughput`] splits *chip time*
//! from *planner wall-clock* — the moves/sec figure of experiment E11.
//!
//! ## The sense phase is no longer an oracle
//!
//! Earlier revisions charged scan *time* but then reported ground truth
//! (`occupancy_detected` was literally the grid's particle count), so the
//! assay loop could never show a detection error and never needed to react
//! to one. The sense phase now goes through [`ArrayScanner`]: what the
//! driver reports — and what the recovery loop acts on — is the classifier's
//! decision per site, with real false positives and false negatives at the
//! configured [`WorkloadConfig::noise_scale`]. A zero noise scale reproduces
//! the old oracle numbers bit-for-bit (locked in by tests); the reference
//! noise model at the default 16-frame averaging has a per-site error
//! probability around 1e-11, so defaults stay quiet while the loop stays
//! honest. Scenario E12 sweeps the knob and closes the loop with recovery.

use crate::biochip::Biochip;
use labchip_array::addressing::ProgrammingInterface;
use labchip_array::timing::WindowBudget;
use labchip_manipulation::cage::CageGrid;
use labchip_manipulation::cage::ParticleId;
use labchip_manipulation::metrics::SustainedThroughput;
use labchip_manipulation::protocol::TimeBreakdown;
use labchip_manipulation::routing::{RoutingOutcome, RoutingProblem, RoutingRequest};
use labchip_manipulation::sharding::{IncrementalRouter, ShardConfig};
use labchip_physics::dep::TrapAnalysis;
use labchip_physics::drag::StokesDrag;
use labchip_sensing::array_scan::ArrayScanner;
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::detect::{DetectionStats, Occupancy, OccupancyMap};
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridCoord, GridDims, MetersPerSecond, Newtons, Seconds};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// The force-feasibility envelope of cage motion: how fast a cage may be
/// stepped before the trapped cell falls out of the moving potential well.
///
/// Derived once per workload from the cached field engine: the DEP holding
/// force of a reference cage (sampled on a
/// [`FieldCache`](labchip_physics::field::cache::FieldCache) lattice)
/// balanced against Stokes drag gives the maximum speed at which the cell
/// still follows; every planned move is then a cheap comparison against the
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForceEnvelope {
    /// Maximum lateral restoring force of the reference cage.
    pub holding_force: Newtons,
    /// Maximum cage speed the holding force can drag a cell at.
    pub max_speed: MetersPerSecond,
    /// Electrode pitch of the array the envelope was derived for — one
    /// cage move covers exactly this distance.
    pub pitch: labchip_units::Meters,
}

impl ForceEnvelope {
    /// Builds the envelope for a chip's reference particle, medium and
    /// drive, probing a single cage at the centre of a small replica array
    /// through the cached field engine.
    pub fn from_reference_cage(side: u32) -> Self {
        let mut chip = Biochip::small_reference(side.max(8));
        let site = GridCoord::new(chip.array().dims().cols / 2, chip.array().dims().rows / 2);
        chip.program_single_cage(site)
            .expect("centre electrode exists");

        let cache = chip.field_cache();
        let dep = chip.dep_model();
        let pitch = chip.array().pitch().get();
        let center = chip.array().to_electrode_plane().electrode_center(site);
        let seed = labchip_units::Vec3::new(center.x, center.y, 1.2 * pitch);
        let chamber = chip.array().chamber_height().get();
        let analysis = TrapAnalysis::analyze(
            &cache,
            &dep,
            seed,
            pitch,
            (0.4 * pitch, chamber - 0.4 * pitch),
        );

        let drag = StokesDrag::new(chip.reference_particle(), chip.medium());
        Self {
            holding_force: analysis.holding_force,
            max_speed: drag.terminal_velocity(analysis.holding_force),
            pitch: chip.array().pitch(),
        }
    }

    /// The paper's reference envelope (20 µm pitch, 3.3 V, viable cell).
    pub fn date05_reference() -> Self {
        Self::from_reference_cage(16)
    }

    /// Whether a cage step at `speed` keeps the cell trapped.
    pub fn permits(&self, speed: MetersPerSecond) -> bool {
        speed <= self.max_speed
    }
}

/// The bounded closed-loop recovery policy: what the driver does when the
/// detected occupancy disagrees with the plan.
///
/// Each round re-scans every suspect site with
/// `detection_frames × rescan_factor` frames (detection errors mostly
/// dissolve under the extra averaging), then pairs each *confirmed* stray —
/// a detected particle off the plan — with the nearest unfilled plan slot
/// and re-routes it there with the incremental router. `max_rounds == 0`
/// disables recovery (the pre-closed-loop behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Maximum sense→decide→act rounds per cycle (0 disables recovery).
    pub max_rounds: u32,
    /// Suspect sites are re-scanned with `detection_frames × rescan_factor`
    /// frames (clamped to at least 1×).
    pub rescan_factor: u32,
}

impl RecoveryPolicy {
    /// Recovery off: detection mismatches are reported but not acted on.
    pub fn disabled() -> Self {
        Self {
            max_rounds: 0,
            rescan_factor: 4,
        }
    }

    /// The reference closed-loop policy: two rounds, 4× re-scan averaging.
    pub fn date05_reference() -> Self {
        Self {
            max_rounds: 2,
            rescan_factor: 4,
        }
    }

    /// Whether recovery runs at all.
    pub fn is_enabled(&self) -> bool {
        self.max_rounds > 0
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        // Off by default: the closed loop is opt-in so the long-standing
        // E10/E11 baseline numbers stay untouched; E12 turns it on.
        Self::disabled()
    }
}

/// Configuration of the batch workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Sharding/windowing of the incremental router.
    pub shards: ShardConfig,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Scale applied to every sensor noise term (1 = the reference channel,
    /// 0 = ideal electronics; the detected map then equals truth exactly).
    pub noise_scale: f64,
    /// Closed-loop recovery policy for detection/plan mismatches.
    pub recovery: RecoveryPolicy,
    /// Fluidic handling time to load one batch.
    pub load_time: Seconds,
    /// Fluidic handling time to flush one batch.
    pub flush_time: Seconds,
    /// Base RNG seed for batch placement.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            array_side: 128,
            shards: ShardConfig::default(),
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 16,
            noise_scale: 1.0,
            recovery: RecoveryPolicy::disabled(),
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            seed: 2005,
        }
    }
}

/// The record of one load→route→sense→flush cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Particles loaded.
    pub requested: usize,
    /// Particles routed to their target slots.
    pub routed: usize,
    /// Steps until the last routed particle arrived.
    pub makespan_steps: usize,
    /// Individual cage moves across the batch.
    pub total_moves: usize,
    /// Planner wall-clock.
    pub planning: Seconds,
    /// Simulated chip time by phase.
    pub time: TimeBreakdown,
    /// Planned moves checked against the force envelope.
    pub moves_checked: usize,
    /// Moves the envelope rejected (0 for a feasible step period).
    pub infeasible_moves: usize,
    /// Occupied cages the detection scan *decided* it saw after routing —
    /// the classifier's count, not the ground truth.
    pub occupancy_detected: usize,
    /// Confusion counts of the full-array detection scan against truth.
    pub detection: DetectionStats,
    /// Sites where the initial scan disagreed with the planned pattern.
    pub mismatches_initial: usize,
    /// Sites where the final detected map still disagrees with the plan
    /// after recovery (equals `mismatches_initial` when recovery is off).
    pub mismatches_final: usize,
    /// Sites where the *true* occupancy disagrees with the plan at cycle
    /// end — the ground-truth placement error the assay actually suffers.
    pub true_mismatches_final: usize,
    /// Recovery rounds executed.
    pub recovery_rounds: usize,
    /// Corrective cage moves commanded by the recovery loop.
    pub recovery_moves: usize,
    /// Programming-clock budget of the executed motion.
    pub budget: WindowBudget,
    /// Whether the plan passed the separation invariant.
    pub conflict_free: bool,
}

impl CycleReport {
    /// Fraction of the batch routed.
    pub fn success_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.routed as f64 / self.requested as f64
        }
    }

    /// Observed per-site detection error rate of the full-array scan.
    pub fn detection_error_rate(&self) -> f64 {
        self.detection.error_rate()
    }
}

/// Generates the full-array sort workload: particles start on a seeded
/// random subset of a whole-array loading lattice (spacing
/// `min_separation + 1`, the densest loadable packing) and are sorted into
/// two target patterns — even-indexed particles to a lattice in the left
/// third, odd-indexed to the right third. Target lattices use spacing
/// `min_separation + 2`, which keeps them *traversable while occupied*, so
/// any arrival order works.
pub fn sort_problem(
    dims: GridDims,
    particles: usize,
    min_separation: u32,
    seed: u64,
) -> RoutingProblem {
    let load_spacing = min_separation + 1;
    let target_spacing = min_separation + 2;
    let lattice = |x_lo: u32, x_hi: u32, spacing: u32| -> Vec<GridCoord> {
        let mut slots = Vec::new();
        let mut y = 1;
        while y < dims.rows - 1 {
            let mut x = x_lo;
            while x < x_hi {
                slots.push(GridCoord::new(x, y));
                x += spacing;
            }
            y += spacing;
        }
        slots
    };

    let left = lattice(1, dims.cols / 3, target_spacing);
    let right = lattice(2 * dims.cols / 3, dims.cols - 1, target_spacing);
    let capacity = left.len() + right.len();

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ particles as u64);
    let mut starts = lattice(1, dims.cols - 1, load_spacing);
    starts.shuffle(&mut rng);
    starts.truncate(particles.min(capacity));
    starts.sort_unstable_by_key(|c| (c.y, c.x));

    let mut requests = Vec::with_capacity(starts.len());
    let (mut li, mut ri) = (0usize, 0usize);
    for (i, start) in starts.iter().enumerate() {
        let goal = if i % 2 == 0 && li < left.len() {
            li += 1;
            left[li - 1]
        } else if ri < right.len() {
            ri += 1;
            right[ri - 1]
        } else {
            li += 1;
            left[li - 1]
        };
        requests.push(RoutingRequest {
            id: ParticleId(i as u64),
            start: *start,
            goal,
        });
    }
    let mut problem = RoutingProblem::new(dims, requests);
    problem.min_separation = min_separation;
    problem
}

/// Executes repeated full-array assay cycles and accumulates throughput.
#[derive(Debug)]
pub struct BatchDriver {
    config: WorkloadConfig,
    envelope: ForceEnvelope,
    router: IncrementalRouter,
    programming: ProgrammingInterface,
    scan: ScanTiming,
    scanner: ArrayScanner,
    totals: SustainedThroughput,
    cycles_run: usize,
}

/// Stream-salt separating the sensor synthesis from batch placement.
const SCANNER_SEED_SALT: u64 = 0x5EE5_0A11_D07E_C70F;

impl BatchDriver {
    /// Creates a driver; the force envelope is derived once from the cached
    /// field engine.
    pub fn new(config: WorkloadConfig) -> Self {
        Self::with_envelope(config, ForceEnvelope::date05_reference())
    }

    /// Creates a driver reusing an already-derived force envelope — sweeps
    /// that build many drivers (E12 runs one per sweep point) share the
    /// cached-field-engine probe instead of repeating it.
    pub fn with_envelope(mut config: WorkloadConfig, envelope: ForceEnvelope) -> Self {
        // Sanitize the CLI-reachable sensing knobs the way `run_cycle`
        // clamps `min_separation`: a `--set` override should degrade, not
        // panic deep in the sensing stack. NaN noise clamps to ideal
        // electronics, infinity to a saturating (coin-flip) channel, and a
        // zero frame count reads one frame.
        config.noise_scale = if config.noise_scale.is_nan() {
            0.0
        } else {
            config.noise_scale.clamp(0.0, 1e12)
        };
        config.detection_frames = config.detection_frames.max(1);
        Self {
            envelope,
            router: IncrementalRouter::new(config.shards),
            programming: ProgrammingInterface::date05_reference(),
            scan: ScanTiming::date05_reference(),
            scanner: ArrayScanner::date05_reference(
                GridDims::square(config.array_side),
                config.noise_scale,
                config.seed ^ SCANNER_SEED_SALT,
            ),
            totals: SustainedThroughput::default(),
            cycles_run: 0,
            config,
        }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The force-feasibility envelope in effect.
    pub fn envelope(&self) -> &ForceEnvelope {
        &self.envelope
    }

    /// Running totals across the cycles executed so far.
    pub fn totals(&self) -> &SustainedThroughput {
        &self.totals
    }

    /// Runs one load→route→sense→flush cycle with `particles` particles
    /// (clamped to the array's pattern capacity).
    pub fn run_cycle(&mut self, particles: usize) -> CycleReport {
        let cycle = self.cycles_run;
        self.cycles_run += 1;
        let dims = GridDims::square(self.config.array_side);
        // A zero separation is physically meaningless (cages would merge)
        // and the cage grid rejects it; clamp like the routers do rather
        // than panic on a CLI-supplied `min_separation=0` override.
        let sep = self.config.min_separation.max(1);
        let cycle_seed = self
            .config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cycle as u64 + 1));
        let problem = sort_problem(dims, particles, sep, cycle_seed);
        let requested = problem.requests.len();

        let mut time = TimeBreakdown::default();

        // Load: place the batch on the loading lattice.
        let mut grid = CageGrid::with_separation(dims, sep);
        for request in &problem.requests {
            grid.place(request.id, request.start)
                .expect("loading lattice sites are mutually separated");
        }
        time.fluidics += self.config.load_time;

        // Route with the incremental sharded planner.
        let started = Instant::now();
        let outcome = self
            .router
            .solve(&problem)
            .expect("generated problems are always well-formed");
        let planning = Seconds::new(started.elapsed().as_secs_f64());
        let conflict_free = outcome.is_conflict_free(sep);

        // Force-feasibility and programming-budget checks on every planned
        // move. The cage speed is one pitch per step period for every move
        // of the plan; each changed electrode pair feeds the row-update
        // budget of its step.
        let speed = self.envelope.pitch / self.config.step_period;
        let feasible = self.envelope.permits(speed);
        let mut moves_checked = 0usize;
        let mut infeasible_moves = 0usize;
        let mut budget = WindowBudget::default();
        self.check_planned_moves(
            &outcome,
            dims,
            feasible,
            &mut budget,
            &mut moves_checked,
            &mut infeasible_moves,
        );
        time.motion += self.config.step_period * outcome.makespan as f64;

        // Execute: routed particles end on their targets, stranded ones
        // wherever their best-effort trajectory stopped. Lift every moved
        // particle first, then set the finals — applying moves one at a
        // time would trip the separation check against particles that have
        // not been moved yet.
        let moved = || outcome.paths.iter().chain(outcome.stranded.iter());
        for path in moved() {
            grid.remove(path.id).expect("loaded particle");
        }
        for path in moved() {
            let last = *path.positions.last().expect("paths are never empty");
            grid.place(path.id, last)
                .expect("final configurations are conflict-free");
        }

        // Sense: full-array detection scan with averaging — the *physical*
        // readout path. Every site is synthesized from the true occupancy
        // through the noisy sensor chain and thresholded; the cycle reports
        // (and the recovery loop acts on) those decisions, not the truth.
        let scan_time = self
            .scan
            .averaged_scan_time(dims, &FrameAverager::new(self.config.detection_frames));
        time.sensing += scan_time;
        let mut pass = (cycle as u64) << 16;
        let scan = self
            .scanner
            .scan(&occupancy_of(&grid), self.config.detection_frames, pass);
        pass += 1;
        let detection = scan.stats;
        let mut detected = scan.map;

        // The intended end state: every requested goal occupied. Stranded
        // particles (and detection errors) show up as mismatches against it.
        let mut plan = OccupancyMap::new(dims);
        for request in &problem.requests {
            plan.set(request.goal, Occupancy::Occupied);
        }
        let mismatches_initial = detected
            .diff_count(&plan)
            .expect("plan and detected maps share the array dims");

        // Recover: bounded sense→decide→act sub-loop closing the loop on
        // detection/plan mismatches.
        let policy = self.config.recovery;
        let rescan_frames = self
            .config
            .detection_frames
            .saturating_mul(policy.rescan_factor.max(1));
        let mut recovery_rounds = 0usize;
        let mut recovery_moves = 0usize;
        for _ in 0..policy.max_rounds {
            let suspects: Vec<GridCoord> = dims
                .iter()
                .filter(|c| detected.get(*c) != plan.get(*c))
                .collect();
            if suspects.is_empty() {
                break;
            }
            recovery_rounds += 1;

            // Re-scan every suspect with heavier averaging; most detection
            // errors dissolve here. Charge the rows actually re-read.
            let truth = occupancy_of(&grid);
            let rows: HashSet<u32> = suspects.iter().map(|c| c.y).collect();
            time.recovery +=
                self.scan.row_time(dims.cols) * (rows.len() as f64 * rescan_frames as f64);
            for &site in &suspects {
                detected.set(
                    site,
                    self.scanner
                        .sense_site(truth.get(site), site, rescan_frames, pass),
                );
            }
            pass += 1;

            // Decide: confirmed strays are detected particles off the plan;
            // vacancies are plan slots the readout still reports empty.
            let strays: Vec<GridCoord> = suspects
                .iter()
                .copied()
                .filter(|c| {
                    detected.get(*c) == Occupancy::Occupied && plan.get(*c) == Occupancy::Empty
                })
                .collect();
            let vacancies: Vec<GridCoord> = suspects
                .iter()
                .copied()
                .filter(|c| {
                    detected.get(*c) == Occupancy::Empty && plan.get(*c) == Occupancy::Occupied
                })
                .collect();
            if strays.is_empty() || vacancies.is_empty() {
                // Nothing actionable; the re-scan may already have cleared
                // the suspects — the next round re-checks and exits.
                continue;
            }

            // Act: pair each stray with the nearest vacancy and re-route.
            // Every other site the scanner reports occupied — particles on
            // plan *and* strays left unpaired when strays outnumber the
            // vacancies — enters the problem as a stationary request, so
            // corrective paths are planned around every known particle, not
            // just the ones being moved.
            let pairs = pair_nearest(&strays, &vacancies);
            let movers = pairs.len();
            let mut requests: Vec<RoutingRequest> = pairs
                .iter()
                .enumerate()
                .map(|(k, &(from, to))| RoutingRequest {
                    id: ParticleId(k as u64),
                    start: from,
                    goal: to,
                })
                .collect();
            let moving: HashSet<GridCoord> = pairs.iter().map(|&(from, _)| from).collect();
            for site in dims.iter() {
                if detected.get(site) == Occupancy::Occupied && !moving.contains(&site) {
                    requests.push(RoutingRequest {
                        id: ParticleId(requests.len() as u64),
                        start: site,
                        goal: site,
                    });
                }
            }
            let mut recovery_problem = RoutingProblem::new(dims, requests);
            recovery_problem.min_separation = sep;
            if recovery_problem.validate().is_err() {
                // A surviving false positive sits too close to a real
                // particle: no conflict-free plan exists for this reading.
                break;
            }
            let Ok(recovery_outcome) = self.router.solve(&recovery_problem) else {
                break;
            };
            self.check_planned_moves(
                &recovery_outcome,
                dims,
                feasible,
                &mut budget,
                &mut moves_checked,
                &mut infeasible_moves,
            );
            time.recovery += self.config.step_period * recovery_outcome.makespan as f64;
            recovery_moves += recovery_outcome.total_moves;

            // Execute on the particles actually present. A commanded move of
            // a phantom detection drags an empty cage — time passes, nothing
            // relocates, and the next verification scan still flags it.
            let occupant: HashMap<GridCoord, ParticleId> = grid
                .particles()
                .into_iter()
                .map(|(id, c)| (c, id))
                .collect();
            let mut touched: Vec<GridCoord> = Vec::new();
            let mut moved: Vec<(ParticleId, GridCoord, GridCoord)> = Vec::new();
            for path in recovery_outcome
                .paths
                .iter()
                .chain(recovery_outcome.stranded.iter())
            {
                if path.id.0 >= movers as u64 {
                    continue; // stationary on-plan particle
                }
                let from = path.positions[0];
                let to = *path.positions.last().expect("paths are never empty");
                touched.push(from);
                touched.push(to);
                if from == to {
                    continue;
                }
                if let Some(&id) = occupant.get(&from) {
                    moved.push((id, from, to));
                }
            }
            for &(id, _, _) in &moved {
                grid.remove(id).expect("tracked particle");
            }
            for &(id, from, to) in &moved {
                if grid.place(id, to).is_err() {
                    // An undetected particle blocks the slot; the cell stays
                    // where it was (its own cage is still free).
                    if grid.place(id, from).is_err() {
                        grid.place_merged(id, from);
                    }
                }
            }

            // Verify the sites the moves touched so the loop (and the final
            // report) sees the post-move readout, not a stale map.
            let truth = occupancy_of(&grid);
            let rows: HashSet<u32> = touched.iter().map(|c| c.y).collect();
            time.recovery +=
                self.scan.row_time(dims.cols) * (rows.len() as f64 * rescan_frames as f64);
            for &site in &touched {
                detected.set(
                    site,
                    self.scanner
                        .sense_site(truth.get(site), site, rescan_frames, pass),
                );
            }
            pass += 1;
        }

        let mismatches_final = detected
            .diff_count(&plan)
            .expect("plan and detected maps share the array dims");
        let true_mismatches_final = occupancy_of(&grid)
            .diff_count(&plan)
            .expect("plan and truth maps share the array dims");
        let occupancy_detected = detected.occupied_count();

        // Flush the batch.
        let ids: Vec<ParticleId> = grid.particles().iter().map(|(id, _)| *id).collect();
        for id in ids {
            grid.remove(id).expect("flushing tracked particles");
        }
        time.fluidics += self.config.flush_time;

        let report = CycleReport {
            cycle,
            requested,
            routed: outcome.paths.len(),
            makespan_steps: outcome.makespan,
            total_moves: outcome.total_moves,
            planning,
            time,
            moves_checked,
            infeasible_moves,
            occupancy_detected,
            detection,
            mismatches_initial,
            mismatches_final,
            true_mismatches_final,
            recovery_rounds,
            recovery_moves,
            budget,
            conflict_free,
        };
        // Recovery moves are executed on-chip and their time is in the
        // recorded total, so they belong in the throughput numerator too.
        self.totals.record(
            requested,
            report.routed,
            report.total_moves + report.recovery_moves,
            report.time.total(),
            planning,
        );
        report
    }

    /// Checks every move of a plan against the force envelope and feeds the
    /// changed electrode pairs into the row-update budget — shared by the
    /// main plan and the recovery plans.
    fn check_planned_moves(
        &self,
        outcome: &RoutingOutcome,
        dims: GridDims,
        feasible: bool,
        budget: &mut WindowBudget,
        moves_checked: &mut usize,
        infeasible_moves: &mut usize,
    ) {
        let all_paths = || outcome.paths.iter().chain(outcome.stranded.iter());
        let horizon = all_paths().map(|p| p.arrival_step()).max().unwrap_or(0);
        let mut changed: Vec<GridCoord> = Vec::new();
        for t in 1..=horizon {
            changed.clear();
            for path in all_paths() {
                let prev = path.position_at(t - 1);
                let cur = path.position_at(t);
                if prev != cur {
                    *moves_checked += 1;
                    if !feasible {
                        *infeasible_moves += 1;
                    }
                    changed.push(prev);
                    changed.push(cur);
                }
            }
            if !changed.is_empty() {
                budget.record(&self.programming.plan_update(dims, &changed));
            }
        }
    }

    /// The outcome of routing one generated batch without executing it —
    /// used by benchmarks probing the planner alone.
    pub fn plan_only(&self, particles: usize, cycle_seed: u64) -> RoutingOutcome {
        let dims = GridDims::square(self.config.array_side);
        let problem = sort_problem(dims, particles, self.config.min_separation, cycle_seed);
        self.router
            .solve(&problem)
            .expect("generated problems are always well-formed")
    }
}

/// The true occupancy map of a cage grid.
fn occupancy_of(grid: &CageGrid) -> OccupancyMap {
    let mut map = OccupancyMap::new(grid.dims());
    for (_, coord) in grid.particles() {
        map.set(coord, Occupancy::Occupied);
    }
    map
}

/// Greedily pairs each stray with its nearest (Chebyshev) unused vacancy;
/// leftover strays or vacancies stay unpaired for a later round.
fn pair_nearest(strays: &[GridCoord], vacancies: &[GridCoord]) -> Vec<(GridCoord, GridCoord)> {
    let mut used = vec![false; vacancies.len()];
    let mut pairs = Vec::with_capacity(strays.len().min(vacancies.len()));
    for &from in strays {
        let mut best: Option<(u32, usize)> = None;
        for (j, &slot) in vacancies.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d = from.chebyshev(slot);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, j));
            }
        }
        let Some((_, j)) = best else { break };
        used[j] = true;
        pairs.push((from, vacancies[j]));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_physical() {
        let envelope = ForceEnvelope::date05_reference();
        // Tens of piconewtons of holding force, and a max speed comfortably
        // above the paper's 10–100 µm/s operating range.
        assert!(envelope.holding_force.get() > 1e-13);
        assert!(envelope.max_speed.as_micrometers_per_second() > 100.0);
        assert!(envelope.permits(MetersPerSecond::from_micrometers_per_second(50.0)));
        assert!(!envelope.permits(MetersPerSecond::new(1.0)));
    }

    #[test]
    fn sort_problem_is_valid_and_splits_classes() {
        let dims = GridDims::square(64);
        let problem = sort_problem(dims, 60, 2, 7);
        assert!(problem.validate().is_ok());
        assert_eq!(problem.requests.len(), 60);
        let left_goals = problem
            .requests
            .iter()
            .filter(|r| r.goal.x < dims.cols / 3)
            .count();
        let right_goals = problem
            .requests
            .iter()
            .filter(|r| r.goal.x >= 2 * dims.cols / 3)
            .count();
        assert_eq!(left_goals + right_goals, 60);
        assert!(left_goals >= 25 && right_goals >= 25);
    }

    #[test]
    fn sort_problem_clamps_to_capacity() {
        let dims = GridDims::square(32);
        let problem = sort_problem(dims, 100_000, 2, 7);
        assert!(problem.requests.len() < 100_000);
        assert!(problem.validate().is_ok());
    }

    #[test]
    fn one_small_cycle_end_to_end() {
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            ..WorkloadConfig::default()
        });
        let report = driver.run_cycle(40);
        assert_eq!(report.cycle, 0);
        assert_eq!(report.requested, 40);
        assert!(report.conflict_free);
        assert!(report.success_rate() > 0.85, "routed {}", report.routed);
        assert_eq!(report.occupancy_detected, 40);
        assert_eq!(report.infeasible_moves, 0);
        assert!(report.moves_checked >= report.total_moves);
        assert!(report.budget.fits_within(driver.config().step_period));
        assert!(report.time.fluidics > report.time.sensing);
        // The planner is far faster than the chip.
        assert!(driver.totals().planner_headroom() > 1.0);
    }

    #[test]
    fn zero_noise_sense_reproduces_the_oracle_exactly() {
        // The lock-in for the old "sense = oracle" behaviour: with ideal
        // electronics the detected map equals the truth bit-for-bit, no
        // recovery fires, and no recovery time is charged — so the numbers
        // E9/E11 publish cannot drift at noise_scale 0.
        let config = WorkloadConfig {
            array_side: 48,
            noise_scale: 0.0,
            recovery: RecoveryPolicy::date05_reference(),
            ..WorkloadConfig::default()
        };
        let report = BatchDriver::new(config).run_cycle(40);
        assert_eq!(report.occupancy_detected, 40);
        assert_eq!(report.detection.error_rate(), 0.0);
        assert_eq!(report.detection.false_positives, 0);
        assert_eq!(report.detection.false_negatives, 0);
        // Detection mismatches against the plan can only be real stranding,
        // which this light batch does not produce.
        assert_eq!(report.mismatches_initial, 0);
        assert_eq!(report.mismatches_final, 0);
        assert_eq!(report.true_mismatches_final, 0);
        assert_eq!(report.recovery_rounds, 0);
        assert_eq!(report.recovery_moves, 0);
        assert_eq!(report.time.recovery, Seconds::new(0.0));

        // Bit-identical to the oracle baseline: the same cycle with
        // recovery entirely disabled produces the exact same report
        // (modulo planner wall-clock, which is not simulated time).
        let mut baseline = BatchDriver::new(WorkloadConfig {
            recovery: RecoveryPolicy::disabled(),
            ..config
        })
        .run_cycle(40);
        baseline.planning = report.planning;
        assert_eq!(report, baseline);
    }

    #[test]
    fn noisy_detection_errors_are_flagged_and_rescan_clears_them() {
        // Loud electronics: the single scan misreads sites, so the cycle
        // reports detection errors (impossible under the old oracle). The
        // recovery re-scan at 4x frames then clears essentially all of
        // them — detection errors are not real placement errors.
        let noisy = WorkloadConfig {
            array_side: 48,
            noise_scale: 8.0,
            detection_frames: 2,
            recovery: RecoveryPolicy::disabled(),
            ..WorkloadConfig::default()
        };
        let open_loop = BatchDriver::new(noisy).run_cycle(30);
        assert!(
            open_loop.detection.error_rate() > 0.0,
            "a loud channel must show detection errors"
        );
        assert!(open_loop.mismatches_initial > 0);
        assert_eq!(open_loop.mismatches_final, open_loop.mismatches_initial);
        // The chip never misplaced anything — the errors are in the eyes.
        assert_eq!(open_loop.true_mismatches_final, 0);

        let closed_loop = BatchDriver::new(WorkloadConfig {
            recovery: RecoveryPolicy::date05_reference(),
            ..noisy
        })
        .run_cycle(30);
        // Same seed, same pass numbering: the initial scan is identical.
        assert_eq!(closed_loop.detection, open_loop.detection);
        assert_eq!(closed_loop.mismatches_initial, open_loop.mismatches_initial);
        assert!(
            closed_loop.mismatches_final < open_loop.mismatches_final,
            "recovery must reduce the final mismatch count: {} vs {}",
            closed_loop.mismatches_final,
            open_loop.mismatches_final
        );
        assert!(closed_loop.recovery_rounds >= 1);
        assert!(closed_loop.time.recovery.get() > 0.0);
    }

    #[test]
    fn recovery_reroutes_stranded_particles_to_their_slots() {
        // A dense batch on a small array strands some particles short of
        // their goals. With ideal sensing the mismatches are all real, and
        // the closed loop routes the strays home: the ground-truth
        // placement error strictly drops versus the open-loop run.
        let config = WorkloadConfig {
            array_side: 48,
            noise_scale: 0.0,
            recovery: RecoveryPolicy::disabled(),
            ..WorkloadConfig::default()
        };
        let mut open_report = None;
        // Find a seed whose batch strands at least one particle.
        for seed in 0..64 {
            let candidate = WorkloadConfig { seed, ..config };
            let report = BatchDriver::new(candidate).run_cycle(90);
            if report.true_mismatches_final > 0 {
                open_report = Some((candidate, report));
                break;
            }
        }
        let (config, open_loop) = open_report.expect("some dense batch strands a particle");
        assert!(open_loop.routed < open_loop.requested);

        let closed_loop = BatchDriver::new(WorkloadConfig {
            recovery: RecoveryPolicy::date05_reference(),
            ..config
        })
        .run_cycle(90);
        assert!(closed_loop.recovery_moves > 0);
        assert!(
            closed_loop.true_mismatches_final < open_loop.true_mismatches_final,
            "recovery must strictly improve true placement: {} vs {}",
            closed_loop.true_mismatches_final,
            open_loop.true_mismatches_final
        );
        assert!(closed_loop.time.recovery.get() > 0.0);
        // Recovery work is visible in the totals the envelope checks saw.
        assert!(closed_loop.moves_checked > open_loop.moves_checked);
    }

    #[test]
    fn hostile_sensing_overrides_degrade_instead_of_panicking() {
        // CLI `--set` overrides can deliver any value; like the
        // `min_separation=0` clamp, bad sensing knobs must degrade rather
        // than panic deep in the sensing stack.
        let envelope = ForceEnvelope::date05_reference();
        let base = WorkloadConfig {
            array_side: 16,
            ..WorkloadConfig::default()
        };
        let negative = BatchDriver::with_envelope(
            WorkloadConfig {
                noise_scale: -3.0,
                detection_frames: 0,
                ..base
            },
            envelope,
        );
        assert_eq!(negative.config().noise_scale, 0.0);
        assert_eq!(negative.config().detection_frames, 1);
        let nan = BatchDriver::with_envelope(
            WorkloadConfig {
                noise_scale: f64::NAN,
                ..base
            },
            envelope,
        );
        assert_eq!(nan.config().noise_scale, 0.0);
        let infinite = BatchDriver::with_envelope(
            WorkloadConfig {
                noise_scale: f64::INFINITY,
                ..base
            },
            envelope,
        );
        assert!(infinite.config().noise_scale.is_finite());
    }

    #[test]
    fn pair_nearest_matches_each_stray_to_its_closest_slot() {
        let strays = [GridCoord::new(0, 0), GridCoord::new(10, 10)];
        let vacancies = [GridCoord::new(9, 9), GridCoord::new(1, 1)];
        let pairs = pair_nearest(&strays, &vacancies);
        assert_eq!(
            pairs,
            vec![
                (GridCoord::new(0, 0), GridCoord::new(1, 1)),
                (GridCoord::new(10, 10), GridCoord::new(9, 9)),
            ]
        );
        // Leftovers stay unpaired.
        assert_eq!(pair_nearest(&strays, &vacancies[..1]).len(), 1);
        assert_eq!(pair_nearest(&[], &vacancies).len(), 0);
    }

    #[test]
    fn cycles_accumulate_into_totals() {
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            ..WorkloadConfig::default()
        });
        driver.run_cycle(20);
        driver.run_cycle(20);
        let totals = driver.totals();
        assert_eq!(totals.cycles, 2);
        assert_eq!(totals.requested, 40);
        assert!(totals.moves_per_planning_second() > 0.0);
    }
}
