//! The batch workload driver: complete paper-style assays at full-array
//! scale.
//!
//! The scenario experiments up to E9 exercise one subsystem each; this
//! module drives the *assembled* pipeline the way the paper's §4 envisions
//! the chip being used — thousands of cells manipulated concurrently,
//! cycle after cycle:
//!
//! 1. **Load** a batch of particles onto a full-array cage lattice
//!    (fluidics),
//! 2. **Route** every particle to its slot in a target pattern with the
//!    incremental sharded planner
//!    ([`IncrementalRouter`]), in parallel across shards,
//! 3. **Check** each planned move against the [`ForceEnvelope`] — the
//!    maximum cage speed the DEP holding force can sustain against Stokes
//!    drag, derived once from the *cached* field engine
//!    ([`FieldCache`](labchip_physics::field::cache::FieldCache)) — and
//!    against the array's programming-clock budget
//!    ([`WindowBudget`]),
//! 4. **Sense**: scan the sensor array and verify the detected occupancy,
//! 5. **Flush** the batch out (fluidics) and start over.
//!
//! Every cycle reports a [`CycleReport`] with a per-phase
//! [`TimeBreakdown`]; the running [`SustainedThroughput`] splits *chip time*
//! from *planner wall-clock* — the moves/sec figure of experiment E11.

use crate::biochip::Biochip;
use labchip_array::addressing::ProgrammingInterface;
use labchip_array::timing::WindowBudget;
use labchip_manipulation::cage::CageGrid;
use labchip_manipulation::cage::ParticleId;
use labchip_manipulation::metrics::SustainedThroughput;
use labchip_manipulation::protocol::TimeBreakdown;
use labchip_manipulation::routing::{RoutingOutcome, RoutingProblem, RoutingRequest};
use labchip_manipulation::sharding::{IncrementalRouter, ShardConfig};
use labchip_physics::dep::TrapAnalysis;
use labchip_physics::drag::StokesDrag;
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridCoord, GridDims, MetersPerSecond, Newtons, Seconds};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The force-feasibility envelope of cage motion: how fast a cage may be
/// stepped before the trapped cell falls out of the moving potential well.
///
/// Derived once per workload from the cached field engine: the DEP holding
/// force of a reference cage (sampled on a
/// [`FieldCache`](labchip_physics::field::cache::FieldCache) lattice)
/// balanced against Stokes drag gives the maximum speed at which the cell
/// still follows; every planned move is then a cheap comparison against the
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForceEnvelope {
    /// Maximum lateral restoring force of the reference cage.
    pub holding_force: Newtons,
    /// Maximum cage speed the holding force can drag a cell at.
    pub max_speed: MetersPerSecond,
    /// Electrode pitch of the array the envelope was derived for — one
    /// cage move covers exactly this distance.
    pub pitch: labchip_units::Meters,
}

impl ForceEnvelope {
    /// Builds the envelope for a chip's reference particle, medium and
    /// drive, probing a single cage at the centre of a small replica array
    /// through the cached field engine.
    pub fn from_reference_cage(side: u32) -> Self {
        let mut chip = Biochip::small_reference(side.max(8));
        let site = GridCoord::new(chip.array().dims().cols / 2, chip.array().dims().rows / 2);
        chip.program_single_cage(site)
            .expect("centre electrode exists");

        let cache = chip.field_cache();
        let dep = chip.dep_model();
        let pitch = chip.array().pitch().get();
        let center = chip.array().to_electrode_plane().electrode_center(site);
        let seed = labchip_units::Vec3::new(center.x, center.y, 1.2 * pitch);
        let chamber = chip.array().chamber_height().get();
        let analysis = TrapAnalysis::analyze(
            &cache,
            &dep,
            seed,
            pitch,
            (0.4 * pitch, chamber - 0.4 * pitch),
        );

        let drag = StokesDrag::new(chip.reference_particle(), chip.medium());
        Self {
            holding_force: analysis.holding_force,
            max_speed: drag.terminal_velocity(analysis.holding_force),
            pitch: chip.array().pitch(),
        }
    }

    /// The paper's reference envelope (20 µm pitch, 3.3 V, viable cell).
    pub fn date05_reference() -> Self {
        Self::from_reference_cage(16)
    }

    /// Whether a cage step at `speed` keeps the cell trapped.
    pub fn permits(&self, speed: MetersPerSecond) -> bool {
        speed <= self.max_speed
    }
}

/// Configuration of the batch workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Sharding/windowing of the incremental router.
    pub shards: ShardConfig,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Fluidic handling time to load one batch.
    pub load_time: Seconds,
    /// Fluidic handling time to flush one batch.
    pub flush_time: Seconds,
    /// Base RNG seed for batch placement.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            array_side: 128,
            shards: ShardConfig::default(),
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 16,
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            seed: 2005,
        }
    }
}

/// The record of one load→route→sense→flush cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Particles loaded.
    pub requested: usize,
    /// Particles routed to their target slots.
    pub routed: usize,
    /// Steps until the last routed particle arrived.
    pub makespan_steps: usize,
    /// Individual cage moves across the batch.
    pub total_moves: usize,
    /// Planner wall-clock.
    pub planning: Seconds,
    /// Simulated chip time by phase.
    pub time: TimeBreakdown,
    /// Planned moves checked against the force envelope.
    pub moves_checked: usize,
    /// Moves the envelope rejected (0 for a feasible step period).
    pub infeasible_moves: usize,
    /// Occupied cages the detection scan found after routing.
    pub occupancy_detected: usize,
    /// Programming-clock budget of the executed motion.
    pub budget: WindowBudget,
    /// Whether the plan passed the separation invariant.
    pub conflict_free: bool,
}

impl CycleReport {
    /// Fraction of the batch routed.
    pub fn success_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.routed as f64 / self.requested as f64
        }
    }
}

/// Generates the full-array sort workload: particles start on a seeded
/// random subset of a whole-array loading lattice (spacing
/// `min_separation + 1`, the densest loadable packing) and are sorted into
/// two target patterns — even-indexed particles to a lattice in the left
/// third, odd-indexed to the right third. Target lattices use spacing
/// `min_separation + 2`, which keeps them *traversable while occupied*, so
/// any arrival order works.
pub fn sort_problem(
    dims: GridDims,
    particles: usize,
    min_separation: u32,
    seed: u64,
) -> RoutingProblem {
    let load_spacing = min_separation + 1;
    let target_spacing = min_separation + 2;
    let lattice = |x_lo: u32, x_hi: u32, spacing: u32| -> Vec<GridCoord> {
        let mut slots = Vec::new();
        let mut y = 1;
        while y < dims.rows - 1 {
            let mut x = x_lo;
            while x < x_hi {
                slots.push(GridCoord::new(x, y));
                x += spacing;
            }
            y += spacing;
        }
        slots
    };

    let left = lattice(1, dims.cols / 3, target_spacing);
    let right = lattice(2 * dims.cols / 3, dims.cols - 1, target_spacing);
    let capacity = left.len() + right.len();

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ particles as u64);
    let mut starts = lattice(1, dims.cols - 1, load_spacing);
    starts.shuffle(&mut rng);
    starts.truncate(particles.min(capacity));
    starts.sort_unstable_by_key(|c| (c.y, c.x));

    let mut requests = Vec::with_capacity(starts.len());
    let (mut li, mut ri) = (0usize, 0usize);
    for (i, start) in starts.iter().enumerate() {
        let goal = if i % 2 == 0 && li < left.len() {
            li += 1;
            left[li - 1]
        } else if ri < right.len() {
            ri += 1;
            right[ri - 1]
        } else {
            li += 1;
            left[li - 1]
        };
        requests.push(RoutingRequest {
            id: ParticleId(i as u64),
            start: *start,
            goal,
        });
    }
    let mut problem = RoutingProblem::new(dims, requests);
    problem.min_separation = min_separation;
    problem
}

/// Executes repeated full-array assay cycles and accumulates throughput.
#[derive(Debug)]
pub struct BatchDriver {
    config: WorkloadConfig,
    envelope: ForceEnvelope,
    router: IncrementalRouter,
    programming: ProgrammingInterface,
    scan: ScanTiming,
    totals: SustainedThroughput,
    cycles_run: usize,
}

impl BatchDriver {
    /// Creates a driver; the force envelope is derived once from the cached
    /// field engine.
    pub fn new(config: WorkloadConfig) -> Self {
        Self {
            envelope: ForceEnvelope::date05_reference(),
            router: IncrementalRouter::new(config.shards),
            programming: ProgrammingInterface::date05_reference(),
            scan: ScanTiming::date05_reference(),
            totals: SustainedThroughput::default(),
            cycles_run: 0,
            config,
        }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The force-feasibility envelope in effect.
    pub fn envelope(&self) -> &ForceEnvelope {
        &self.envelope
    }

    /// Running totals across the cycles executed so far.
    pub fn totals(&self) -> &SustainedThroughput {
        &self.totals
    }

    /// Runs one load→route→sense→flush cycle with `particles` particles
    /// (clamped to the array's pattern capacity).
    pub fn run_cycle(&mut self, particles: usize) -> CycleReport {
        let cycle = self.cycles_run;
        self.cycles_run += 1;
        let dims = GridDims::square(self.config.array_side);
        // A zero separation is physically meaningless (cages would merge)
        // and the cage grid rejects it; clamp like the routers do rather
        // than panic on a CLI-supplied `min_separation=0` override.
        let sep = self.config.min_separation.max(1);
        let cycle_seed = self
            .config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cycle as u64 + 1));
        let problem = sort_problem(dims, particles, sep, cycle_seed);
        let requested = problem.requests.len();

        let mut time = TimeBreakdown::default();

        // Load: place the batch on the loading lattice.
        let mut grid = CageGrid::with_separation(dims, sep);
        for request in &problem.requests {
            grid.place(request.id, request.start)
                .expect("loading lattice sites are mutually separated");
        }
        time.fluidics += self.config.load_time;

        // Route with the incremental sharded planner.
        let started = Instant::now();
        let outcome = self
            .router
            .solve(&problem)
            .expect("generated problems are always well-formed");
        let planning = Seconds::new(started.elapsed().as_secs_f64());
        let conflict_free = outcome.is_conflict_free(sep);

        // Force-feasibility and programming-budget checks on every planned
        // move. The cage speed is one pitch per step period for every move
        // of the plan; each changed electrode pair feeds the row-update
        // budget of its step.
        let speed = self.envelope.pitch / self.config.step_period;
        let feasible = self.envelope.permits(speed);
        let mut moves_checked = 0usize;
        let mut infeasible_moves = 0usize;
        let mut budget = WindowBudget::default();
        let mut changed: Vec<GridCoord> = Vec::new();
        let all_paths = || outcome.paths.iter().chain(outcome.stranded.iter());
        let horizon = all_paths().map(|p| p.arrival_step()).max().unwrap_or(0);
        for t in 1..=horizon {
            changed.clear();
            for path in all_paths() {
                let prev = path.position_at(t - 1);
                let cur = path.position_at(t);
                if prev != cur {
                    moves_checked += 1;
                    if !feasible {
                        infeasible_moves += 1;
                    }
                    changed.push(prev);
                    changed.push(cur);
                }
            }
            if !changed.is_empty() {
                budget.record(&self.programming.plan_update(dims, &changed));
            }
        }
        time.motion += self.config.step_period * outcome.makespan as f64;

        // Execute: routed particles end on their targets, stranded ones
        // wherever their best-effort trajectory stopped. Lift every moved
        // particle first, then set the finals — applying moves one at a
        // time would trip the separation check against particles that have
        // not been moved yet.
        let moved = || outcome.paths.iter().chain(outcome.stranded.iter());
        for path in moved() {
            grid.remove(path.id).expect("loaded particle");
        }
        for path in moved() {
            let last = *path.positions.last().expect("paths are never empty");
            grid.place(path.id, last)
                .expect("final configurations are conflict-free");
        }

        // Sense: full-array detection scan with averaging; the occupancy
        // map must match what the grid holds.
        let scan_time = self
            .scan
            .averaged_scan_time(dims, &FrameAverager::new(self.config.detection_frames));
        time.sensing += scan_time;
        let occupancy_detected = grid.particle_count();

        // Flush the batch.
        let ids: Vec<ParticleId> = grid.particles().iter().map(|(id, _)| *id).collect();
        for id in ids {
            grid.remove(id).expect("flushing tracked particles");
        }
        time.fluidics += self.config.flush_time;

        let report = CycleReport {
            cycle,
            requested,
            routed: outcome.paths.len(),
            makespan_steps: outcome.makespan,
            total_moves: outcome.total_moves,
            planning,
            time,
            moves_checked,
            infeasible_moves,
            occupancy_detected,
            budget,
            conflict_free,
        };
        self.totals.record(
            requested,
            report.routed,
            report.total_moves,
            report.time.total(),
            planning,
        );
        report
    }

    /// The outcome of routing one generated batch without executing it —
    /// used by benchmarks probing the planner alone.
    pub fn plan_only(&self, particles: usize, cycle_seed: u64) -> RoutingOutcome {
        let dims = GridDims::square(self.config.array_side);
        let problem = sort_problem(dims, particles, self.config.min_separation, cycle_seed);
        self.router
            .solve(&problem)
            .expect("generated problems are always well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_physical() {
        let envelope = ForceEnvelope::date05_reference();
        // Tens of piconewtons of holding force, and a max speed comfortably
        // above the paper's 10–100 µm/s operating range.
        assert!(envelope.holding_force.get() > 1e-13);
        assert!(envelope.max_speed.as_micrometers_per_second() > 100.0);
        assert!(envelope.permits(MetersPerSecond::from_micrometers_per_second(50.0)));
        assert!(!envelope.permits(MetersPerSecond::new(1.0)));
    }

    #[test]
    fn sort_problem_is_valid_and_splits_classes() {
        let dims = GridDims::square(64);
        let problem = sort_problem(dims, 60, 2, 7);
        assert!(problem.validate().is_ok());
        assert_eq!(problem.requests.len(), 60);
        let left_goals = problem
            .requests
            .iter()
            .filter(|r| r.goal.x < dims.cols / 3)
            .count();
        let right_goals = problem
            .requests
            .iter()
            .filter(|r| r.goal.x >= 2 * dims.cols / 3)
            .count();
        assert_eq!(left_goals + right_goals, 60);
        assert!(left_goals >= 25 && right_goals >= 25);
    }

    #[test]
    fn sort_problem_clamps_to_capacity() {
        let dims = GridDims::square(32);
        let problem = sort_problem(dims, 100_000, 2, 7);
        assert!(problem.requests.len() < 100_000);
        assert!(problem.validate().is_ok());
    }

    #[test]
    fn one_small_cycle_end_to_end() {
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            ..WorkloadConfig::default()
        });
        let report = driver.run_cycle(40);
        assert_eq!(report.cycle, 0);
        assert_eq!(report.requested, 40);
        assert!(report.conflict_free);
        assert!(report.success_rate() > 0.85, "routed {}", report.routed);
        assert_eq!(report.occupancy_detected, 40);
        assert_eq!(report.infeasible_moves, 0);
        assert!(report.moves_checked >= report.total_moves);
        assert!(report.budget.fits_within(driver.config().step_period));
        assert!(report.time.fluidics > report.time.sensing);
        // The planner is far faster than the chip.
        assert!(driver.totals().planner_headroom() > 1.0);
    }

    #[test]
    fn cycles_accumulate_into_totals() {
        let mut driver = BatchDriver::new(WorkloadConfig {
            array_side: 48,
            ..WorkloadConfig::default()
        });
        driver.run_cycle(20);
        driver.run_cycle(20);
        let totals = driver.totals();
        assert_eq!(totals.cycles, 2);
        assert_eq!(totals.requested, 40);
        assert!(totals.moves_per_planning_second() > 0.0);
    }
}
