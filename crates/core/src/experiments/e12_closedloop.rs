//! E12 — closed-loop assay under sensor noise: the full
//! load→route→sense→recover→flush cycle with a *physical* detection path.
//!
//! The paper's architecture only works because every cage is *sensed*, not
//! assumed; this scenario quantifies what that costs and buys. For a sweep
//! of sensor noise scales and frames-per-scan it runs the [`BatchDriver`]
//! cycle twice at the same seed — open loop (detection reported, nothing
//! done about it) and closed loop (the bounded re-scan + re-route recovery
//! of [`RecoveryPolicy`]) — and reports the observed detection error rate,
//! the detected-vs-plan mismatches left by each mode, the corrective moves
//! spent, and the simulated-time penalty versus an oracle baseline with
//! ideal electronics.
//!
//! The headline behaviours the table shows:
//!
//! * detection error rate rises monotonically with the noise knob and falls
//!   with frames averaged (E4's trade, now measured in the assembled loop);
//! * the closed loop's final mismatch count stays well below the open
//!   loop's at every noisy operating point — re-scanning dissolves the
//!   phantom errors and re-routing fixes the real ones;
//! * a zero-noise sweep point reproduces the oracle numbers exactly: no
//!   detection errors, no recovery, no extra time.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use crate::workload::{BatchDriver, CycleReport, ForceEnvelope, RecoveryPolicy, WorkloadConfig};
use labchip_manipulation::sharding::ShardConfig;
use labchip_units::Seconds;
use serde::{Deserialize, Serialize};

/// Configuration of the closed-loop assay sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particles loaded per cycle (clamped to the pattern capacity).
    pub particles: usize,
    /// Sensor noise scales swept (1 = the reference channel, 0 = ideal).
    pub noise_scales: Vec<f64>,
    /// Frames-per-scan values swept.
    pub frame_counts: Vec<u32>,
    /// Suspect sites are re-scanned with `frames × rescan_factor` frames.
    pub rescan_factor: u32,
    /// Maximum recovery rounds per cycle (the closed-loop runs).
    pub max_recovery_rounds: u32,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Fluidic handling time per batch load.
    pub load_time: Seconds,
    /// Fluidic handling time per batch flush.
    pub flush_time: Seconds,
    /// Shard tile side of the incremental router.
    pub shard_side: u32,
    /// Steps per planning window.
    pub window: u32,
    /// Worker threads for the sharded planner (0 = all cores).
    pub threads: usize,
    /// Reuse per-shard plans across cycles (bit-identical output either way).
    pub reuse_plans: bool,
    /// Base RNG seed (batch placement and sensor noise).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 96,
            particles: 140,
            noise_scales: vec![0.0, 2.0, 4.0],
            frame_counts: vec![4, 16],
            rescan_factor: 4,
            max_recovery_rounds: 2,
            min_separation: 2,
            step_period: Seconds::new(0.4),
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            shard_side: 32,
            window: 8,
            threads: 0,
            reuse_plans: false,
            seed: 2005,
        }
    }
}

/// One sweep point: an open-loop and a closed-loop cycle at the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Sensor noise scale of this point.
    pub noise_scale: f64,
    /// Frames averaged per full-array scan.
    pub frames: u32,
    /// Observed per-site detection error rate of the initial scan.
    pub detection_error_rate: f64,
    /// False positives of the initial scan (empty sites read occupied).
    pub false_positives: u64,
    /// False negatives of the initial scan (particles missed).
    pub false_negatives: u64,
    /// Detected-vs-plan mismatches left by the open-loop run.
    pub mismatches_open: usize,
    /// Detected-vs-plan mismatches left after closed-loop recovery.
    pub mismatches_closed: usize,
    /// Ground-truth placement errors of the open-loop run.
    pub true_mismatches_open: usize,
    /// Ground-truth placement errors after closed-loop recovery.
    pub true_mismatches_closed: usize,
    /// Recovery rounds the closed loop executed.
    pub recovery_rounds: usize,
    /// Corrective cage moves the closed loop commanded.
    pub recovery_moves: usize,
    /// Simulated-time overhead of the closed loop versus the oracle
    /// baseline at the same frame count, in percent.
    pub time_penalty_pct: f64,
}

/// Result of the closed-loop sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per (noise scale, frames) sweep point.
    pub rows: Vec<SweepRow>,
    /// Simulated oracle cycle time per swept frame count, seconds.
    pub oracle_cycle_s: Vec<f64>,
    /// Particles requested per cycle after capacity clamping.
    pub particles: usize,
}

impl Results {
    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E12",
            "Closed-loop assay under sensor noise: detect, recover, re-route",
            vec![
                "noise".into(),
                "frames".into(),
                "err rate".into(),
                "FP".into(),
                "FN".into(),
                "mismatch (open)".into(),
                "mismatch (closed)".into(),
                "true err (open)".into(),
                "true err (closed)".into(),
                "recovery moves".into(),
                "time penalty".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.1}x", r.noise_scale),
                        r.frames.to_string(),
                        format!("{:.2e}", r.detection_error_rate),
                        r.false_positives.to_string(),
                        r.false_negatives.to_string(),
                        r.mismatches_open.to_string(),
                        r.mismatches_closed.to_string(),
                        r.true_mismatches_open.to_string(),
                        r.true_mismatches_closed.to_string(),
                        r.recovery_moves.to_string(),
                        format!("{:.2}%", r.time_penalty_pct),
                    ]
                })
                .collect(),
        )
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn workload(
    config: &Config,
    noise_scale: f64,
    frames: u32,
    recovery: RecoveryPolicy,
) -> WorkloadConfig {
    WorkloadConfig {
        array_side: config.array_side,
        shards: ShardConfig {
            shard_side: config.shard_side,
            window: config.window,
            ..ShardConfig::default()
        },
        min_separation: config.min_separation,
        step_period: config.step_period,
        detection_frames: frames,
        noise_scale,
        recovery,
        load_time: config.load_time,
        flush_time: config.flush_time,
        reuse_plans: config.reuse_plans,
        live_planning: false,
        seed: config.seed,
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("thread pool construction is infallible");
    let envelope = ForceEnvelope::date05_reference();
    let closed_policy = RecoveryPolicy {
        max_rounds: config.max_recovery_rounds,
        rescan_factor: config.rescan_factor,
    };
    let cycle = |noise_scale: f64, frames: u32, recovery: RecoveryPolicy| -> CycleReport {
        let mut driver =
            BatchDriver::with_envelope(workload(config, noise_scale, frames, recovery), envelope);
        pool.install(|| driver.run_cycle(config.particles))
    };

    let mut rows = Vec::with_capacity(config.noise_scales.len() * config.frame_counts.len());
    let mut oracle_cycle_s = Vec::with_capacity(config.frame_counts.len());
    let mut particles = config.particles;
    for &frames in &config.frame_counts {
        // The oracle baseline: ideal electronics, open loop — the numbers
        // the driver used to report unconditionally.
        let oracle = cycle(0.0, frames, RecoveryPolicy::disabled());
        let oracle_time = oracle.time.total();
        oracle_cycle_s.push(oracle_time.get());
        particles = oracle.requested;

        for &noise_scale in &config.noise_scales {
            // The zero-noise open-loop run *is* the oracle (same config,
            // same seed, bit-identical by the determinism contract) — skip
            // the redundant cycle.
            let open = if noise_scale == 0.0 {
                oracle.clone()
            } else {
                cycle(noise_scale, frames, RecoveryPolicy::disabled())
            };
            let closed = cycle(noise_scale, frames, closed_policy);
            let row = SweepRow {
                noise_scale,
                frames,
                detection_error_rate: open.detection_error_rate(),
                false_positives: open.detection.false_positives,
                false_negatives: open.detection.false_negatives,
                mismatches_open: open.mismatches_final,
                mismatches_closed: closed.mismatches_final,
                true_mismatches_open: open.true_mismatches_final,
                true_mismatches_closed: closed.true_mismatches_final,
                recovery_rounds: closed.recovery_rounds,
                recovery_moves: closed.recovery_moves,
                time_penalty_pct: if oracle_time.get() > 0.0 {
                    100.0 * (closed.time.total().get() / oracle_time.get() - 1.0)
                } else {
                    0.0
                },
            };
            ctx.emit_row(format!(
                "noise {:.1}x / {} frames: err {:.2e}, mismatch {} -> {}, {} recovery moves, +{:.2}%",
                row.noise_scale,
                row.frames,
                row.detection_error_rate,
                row.mismatches_open,
                row.mismatches_closed,
                row.recovery_moves,
                row.time_penalty_pct,
            ));
            rows.push(row);
        }
    }
    Results {
        rows,
        oracle_cycle_s,
        particles,
    }
}

/// The closed-loop assay sweep as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosedLoopScenario;

impl Scenario for ClosedLoopScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E12"
    }

    fn describe(&self) -> &'static str {
        "Closed-loop assay under sensor noise: detect, recover, re-route"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E12"))
    }

    fn quick_config() -> Config {
        Config {
            array_side: 48,
            particles: 40,
            noise_scales: vec![0.0, 3.0, 8.0],
            frame_counts: vec![2],
            threads: 1,
            ..Config::default()
        }
    }

    #[test]
    fn detection_error_rate_responds_monotonically_to_the_noise_knob() {
        let results = run(&quick_config());
        let rates: Vec<f64> = results
            .rows
            .iter()
            .map(|r| r.detection_error_rate)
            .collect();
        for pair in rates.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "error rate must not fall with noise: {rates:?}"
            );
        }
        assert!(
            rates.last().unwrap() > rates.first().unwrap(),
            "the knob must move the rate: {rates:?}"
        );
        assert_eq!(rates[0], 0.0, "ideal electronics make no mistakes");
    }

    #[test]
    fn zero_noise_point_matches_the_oracle_baseline() {
        let results = run(&quick_config());
        let quiet = &results.rows[0];
        assert_eq!(quiet.noise_scale, 0.0);
        assert_eq!(quiet.false_positives, 0);
        assert_eq!(quiet.false_negatives, 0);
        assert_eq!(quiet.recovery_moves, 0);
        assert_eq!(quiet.time_penalty_pct, 0.0);
    }

    #[test]
    fn closing_the_loop_reduces_final_mismatches_at_every_noisy_point() {
        let results = run(&quick_config());
        let mut any_errors = false;
        for row in &results.rows {
            if row.mismatches_open == 0 {
                continue;
            }
            any_errors = true;
            assert!(
                row.mismatches_closed < row.mismatches_open,
                "recovery must strictly reduce mismatches: {row:?}"
            );
        }
        assert!(
            any_errors,
            "the noisy sweep points must produce detection errors"
        );
    }

    #[test]
    fn table_covers_every_sweep_point() {
        let results = run(&quick_config());
        assert_eq!(results.rows.len(), 3);
        assert_eq!(results.oracle_cycle_s.len(), 1);
        let table = results.to_table();
        assert_eq!(table.columns.len(), 11);
        assert_eq!(table.row_count(), 3);
    }
}
