//! The experiment harness: one module per claim/figure of the paper.
//!
//! The DATE'05 paper is a position paper without numbered tables, so the
//! reproduction defines one experiment per quantitative claim or figure (see
//! `DESIGN.md` and `EXPERIMENTS.md` at the repository root):
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | E1 | >100,000 electrodes, tens of thousands of cages | [`e1_scale`] |
//! | E2 | DEP force ∝ V²: older nodes win | [`e2_technology`] |
//! | E3 | cells move at 10–100 µm/s; electronics has huge slack | [`e3_motion`] |
//! | E4 | averaging sensor output buys SNR with spare time | [`e4_sensing`] |
//! | E5 | prototyping beats simulation for fluidics (Fig. 1 vs 2) | [`e5_designflow`] |
//! | E6 | dry-film resist: days and euros per iteration | [`e6_fabrication`] |
//! | E7 | pattern-shift manipulation at scale (router vs baseline) | [`e7_routing`] |
//! | E8 | design centering buys yield (Fig. 1 dashed loop) | [`e8_centering`] |
//! | E9 | the assembled device runs a full assay (Fig. 3) | [`e9_assay`] |
//!
//! Every experiment exposes a `Config` (with defaults matching the paper's
//! scenario), a typed result, and a conversion into a generic
//! [`ExperimentTable`] that the `report` binary prints and `EXPERIMENTS.md`
//! quotes.

pub mod e1_scale;
pub mod e2_technology;
pub mod e3_motion;
pub mod e4_sensing;
pub mod e5_designflow;
pub mod e6_fabrication;
pub mod e7_routing;
pub mod e8_centering;
pub mod e9_assay;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered experiment result: an identifier, a caption and a plain table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Experiment identifier (`"E1"` … `"E9"`).
    pub id: String,
    /// One-line caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows, one `Vec<String>` per row, same arity as `columns`.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table, checking that every row has the right arity.
    ///
    /// # Panics
    ///
    /// Panics if a row's length differs from the number of columns — that is
    /// a bug in the experiment code, not a runtime condition.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<String>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        let columns_len = columns.len();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                columns_len,
                "row {i} has {} cells but the table has {columns_len} columns",
                row.len()
            );
        }
        Self {
            id: id.into(),
            title: title.into(),
            columns,
            rows,
        }
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// A uniform handle over every experiment, used by the `report` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Experiment {
    /// E1 — array scale.
    E1Scale,
    /// E2 — technology/voltage sweep.
    E2Technology,
    /// E3 — motion timescales.
    E3Motion,
    /// E4 — sensor averaging.
    E4Sensing,
    /// E5 — design-flow comparison.
    E5DesignFlow,
    /// E6 — fabrication cost/turnaround.
    E6Fabrication,
    /// E7 — parallel routing.
    E7Routing,
    /// E8 — design centering.
    E8Centering,
    /// E9 — end-to-end assay.
    E9Assay,
}

impl Experiment {
    /// All experiments in order.
    pub fn all() -> [Experiment; 9] {
        [
            Experiment::E1Scale,
            Experiment::E2Technology,
            Experiment::E3Motion,
            Experiment::E4Sensing,
            Experiment::E5DesignFlow,
            Experiment::E6Fabrication,
            Experiment::E7Routing,
            Experiment::E8Centering,
            Experiment::E9Assay,
        ]
    }

    /// The experiment identifier (`"E1"` … `"E9"`).
    pub fn id(&self) -> &'static str {
        match self {
            Experiment::E1Scale => "E1",
            Experiment::E2Technology => "E2",
            Experiment::E3Motion => "E3",
            Experiment::E4Sensing => "E4",
            Experiment::E5DesignFlow => "E5",
            Experiment::E6Fabrication => "E6",
            Experiment::E7Routing => "E7",
            Experiment::E8Centering => "E8",
            Experiment::E9Assay => "E9",
        }
    }

    /// Runs the experiment with its default (paper-scenario) configuration
    /// and returns the rendered table.
    pub fn run_default(&self) -> ExperimentTable {
        match self {
            Experiment::E1Scale => e1_scale::run(&e1_scale::Config::default()).to_table(),
            Experiment::E2Technology => {
                e2_technology::run(&e2_technology::Config::default()).to_table()
            }
            Experiment::E3Motion => e3_motion::run(&e3_motion::Config::default()).to_table(),
            Experiment::E4Sensing => e4_sensing::run(&e4_sensing::Config::default()).to_table(),
            Experiment::E5DesignFlow => {
                e5_designflow::run(&e5_designflow::Config::default()).to_table()
            }
            Experiment::E6Fabrication => {
                e6_fabrication::run(&e6_fabrication::Config::default()).to_table()
            }
            Experiment::E7Routing => e7_routing::run(&e7_routing::Config::default()).to_table(),
            Experiment::E8Centering => {
                e8_centering::run(&e8_centering::Config::default()).to_table()
            }
            Experiment::E9Assay => e9_assay::run(&e9_assay::Config::default()).to_table(),
        }
    }

    /// Parses an identifier like `"e3"` or `"E3"`.
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::all()
            .into_iter()
            .find(|e| e.id().eq_ignore_ascii_case(id.trim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_includes_all_cells() {
        let table = ExperimentTable::new(
            "E0",
            "demo",
            vec!["a".into(), "b".into()],
            vec![vec!["1".into(), "2".into()], vec!["30".into(), "40".into()]],
        );
        let rendered = table.to_string();
        assert!(rendered.contains("E0"));
        assert!(rendered.contains("| 1 "));
        assert!(rendered.contains("40"));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_arity_panics() {
        let _ = ExperimentTable::new(
            "E0",
            "demo",
            vec!["a".into(), "b".into()],
            vec![vec!["1".into()]],
        );
    }

    #[test]
    fn experiment_ids_round_trip() {
        for e in Experiment::all() {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
            assert_eq!(Experiment::from_id(&e.id().to_lowercase()), Some(e));
        }
        assert_eq!(Experiment::from_id("E42"), None);
    }
}
