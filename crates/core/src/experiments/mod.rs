//! The experiment harness: one module per claim/figure of the paper.
//!
//! The DATE'05 paper is a position paper without numbered tables, so the
//! reproduction defines one experiment per quantitative claim or figure (see
//! `DESIGN.md` and `EXPERIMENTS.md` at the repository root):
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | E1 | >100,000 electrodes, tens of thousands of cages | [`e1_scale`] |
//! | E2 | DEP force ∝ V²: older nodes win | [`e2_technology`] |
//! | E3 | cells move at 10–100 µm/s; electronics has huge slack | [`e3_motion`] |
//! | E4 | averaging sensor output buys SNR with spare time | [`e4_sensing`] |
//! | E5 | prototyping beats simulation for fluidics (Fig. 1 vs 2) | [`e5_designflow`] |
//! | E6 | dry-film resist: days and euros per iteration | [`e6_fabrication`] |
//! | E7 | pattern-shift manipulation at scale (router vs baseline) | [`e7_routing`] |
//! | E8 | design centering buys yield (Fig. 1 dashed loop) | [`e8_centering`] |
//! | E9 | the assembled device runs a full assay (Fig. 3) | [`e9_assay`] |
//! | E10 | full-array concurrent sort, thousands of cages | [`e10_fullarray`] |
//! | E11 | sustained route→sense→flush assay throughput | [`e11_throughput`] |
//! | E12 | closed-loop assay under sensor noise | [`e12_closedloop`] |
//! | E13 | programmable protocols composed from assay phases | [`e13_protocols`] |
//! | E14 | fault-injection sweep: replay + checkpoint/resume equivalence | [`e14_faults`] |
//! | E15 | multi-tenant chip-farm fleet benchmark | `labchip_farm::scenario` (sits above this crate) |
//!
//! E10–E14 go beyond the paper's individual claims: they exercise the
//! *assembled* pipeline at the scale §4 envisions — comparing the
//! incremental sharded planner against the E7 planners, measuring sustained
//! assay throughput, closing the sense→decide→act loop against a
//! physically noisy detection path, running arbitrary protocols composed
//! from the phase pipeline, and proving the event-sourced pipeline
//! crash-safe under a seeded kill-point sweep.
//!
//! Every experiment exposes a `Config` (with defaults matching the paper's
//! scenario), a typed result, and a conversion into a generic
//! [`ExperimentTable`] that the `report` binary prints and `EXPERIMENTS.md`
//! quotes.
//!
//! ## Entry point: the scenario engine
//!
//! All experiments run through
//! [`ScenarioRegistry`](crate::scenario::ScenarioRegistry) and
//! [`Runner`](crate::scenario::Runner), which add typed config overrides,
//! seeds, progress streaming and JSON output. The pre-engine free
//! `run(&Config)` shims (every module, E1–E13) are **deleted** — callers
//! construct the module's `Scenario` handle (e.g.
//! [`e1_scale::ScaleScenario`]) and call
//! [`Scenario::run`](crate::scenario::Scenario::run) with a
//! [`ScenarioContext`](crate::scenario::ScenarioContext).
//! [`Experiment`] (which delegates to the registry) deliberately still
//! covers only the paper's E1–E9.

pub mod e10_fullarray;
pub mod e11_throughput;
pub mod e12_closedloop;
pub mod e13_protocols;
pub mod e14_faults;
pub mod e1_scale;
pub mod e2_technology;
pub mod e3_motion;
pub mod e4_sensing;
pub mod e5_designflow;
pub mod e6_fabrication;
pub mod e7_routing;
pub mod e8_centering;
pub mod e9_assay;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered experiment result: an identifier, a caption and a plain table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Experiment identifier (`"E1"` … `"E9"`).
    pub id: String,
    /// One-line caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows, one `Vec<String>` per row, same arity as `columns`.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table, checking that every row has the right arity.
    ///
    /// # Panics
    ///
    /// Panics if a row's length differs from the number of columns — that is
    /// a bug in the experiment code, not a runtime condition.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<String>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        let columns_len = columns.len();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                columns_len,
                "row {i} has {} cells but the table has {columns_len} columns",
                row.len()
            );
        }
        Self {
            id: id.into(),
            title: title.into(),
            columns,
            rows,
        }
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as a `serde_json` value — the payload embedded by
    /// `report run --json`. The same table feeds
    /// [`ExperimentTable::to_markdown`], so the JSON output and the
    /// `EXPERIMENTS.md` tables always come from one source.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self)
    }

    /// Renders the table as the markdown block quoted in `EXPERIMENTS.md`
    /// (identical to the `Display` rendering).
    pub fn to_markdown(&self) -> String {
        self.to_string()
    }

    /// Parses a table back from its [`ExperimentTable::to_markdown`]
    /// rendering (cell padding is not preserved — cells are trimmed).
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not a rendered table.
    pub fn from_markdown(text: &str) -> Result<ExperimentTable, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty input")?;
        let header = header
            .strip_prefix("## ")
            .ok_or("missing `## id — title` header line")?;
        let (id, title) = header
            .split_once(" — ")
            .ok_or("header line has no ` — ` separator")?;

        let parse_row = |line: &str| -> Result<Vec<String>, String> {
            let trimmed = line.trim();
            let inner = trimmed
                .strip_prefix('|')
                .and_then(|l| l.strip_suffix('|'))
                .ok_or_else(|| format!("table line not `|`-delimited: `{trimmed}`"))?;
            Ok(inner
                .split('|')
                .map(|cell| cell.trim().to_owned())
                .collect())
        };

        let columns = parse_row(lines.next().ok_or("missing column header row")?)?;
        let rule = lines.next().ok_or("missing header rule row")?;
        if !rule
            .trim()
            .chars()
            .all(|c| c == '|' || c == '-' || c == ' ')
        {
            return Err(format!("malformed header rule `{rule}`"));
        }
        let mut rows = Vec::new();
        for line in lines {
            let row = parse_row(line)?;
            if row.len() != columns.len() {
                return Err(format!(
                    "row has {} cells but the table has {} columns",
                    row.len(),
                    columns.len()
                ));
            }
            rows.push(row);
        }
        Ok(ExperimentTable {
            id: id.trim().to_owned(),
            title: title.trim().to_owned(),
            columns,
            rows,
        })
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// A uniform handle over every experiment, used by the `report` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Experiment {
    /// E1 — array scale.
    E1Scale,
    /// E2 — technology/voltage sweep.
    E2Technology,
    /// E3 — motion timescales.
    E3Motion,
    /// E4 — sensor averaging.
    E4Sensing,
    /// E5 — design-flow comparison.
    E5DesignFlow,
    /// E6 — fabrication cost/turnaround.
    E6Fabrication,
    /// E7 — parallel routing.
    E7Routing,
    /// E8 — design centering.
    E8Centering,
    /// E9 — end-to-end assay.
    E9Assay,
}

impl Experiment {
    /// All experiments in order.
    pub fn all() -> [Experiment; 9] {
        [
            Experiment::E1Scale,
            Experiment::E2Technology,
            Experiment::E3Motion,
            Experiment::E4Sensing,
            Experiment::E5DesignFlow,
            Experiment::E6Fabrication,
            Experiment::E7Routing,
            Experiment::E8Centering,
            Experiment::E9Assay,
        ]
    }

    /// The experiment identifier (`"E1"` … `"E9"`).
    pub fn id(&self) -> &'static str {
        match self {
            Experiment::E1Scale => "E1",
            Experiment::E2Technology => "E2",
            Experiment::E3Motion => "E3",
            Experiment::E4Sensing => "E4",
            Experiment::E5DesignFlow => "E5",
            Experiment::E6Fabrication => "E6",
            Experiment::E7Routing => "E7",
            Experiment::E8Centering => "E8",
            Experiment::E9Assay => "E9",
        }
    }

    /// Runs the experiment with its default (paper-scenario) configuration
    /// and returns the rendered table.
    ///
    /// This enum predates the scenario engine and now delegates to it; new
    /// code should use
    /// [`ScenarioRegistry`](crate::scenario::ScenarioRegistry) and
    /// [`Runner`](crate::scenario::Runner) directly.
    pub fn run_default(&self) -> ExperimentTable {
        crate::scenario::ScenarioRegistry::all()
            .get(self.id())
            .expect("the registry covers E1..E9")
            .run_default()
            .expect("default configs always decode")
            .table
    }

    /// Parses an identifier like `"e3"` or `"E3"`.
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::all()
            .into_iter()
            .find(|e| e.id().eq_ignore_ascii_case(id.trim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_includes_all_cells() {
        let table = ExperimentTable::new(
            "E0",
            "demo",
            vec!["a".into(), "b".into()],
            vec![vec!["1".into(), "2".into()], vec!["30".into(), "40".into()]],
        );
        let rendered = table.to_string();
        assert!(rendered.contains("E0"));
        assert!(rendered.contains("| 1 "));
        assert!(rendered.contains("40"));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_arity_panics() {
        let _ = ExperimentTable::new(
            "E0",
            "demo",
            vec!["a".into(), "b".into()],
            vec![vec!["1".into()]],
        );
    }

    #[test]
    fn markdown_round_trips() {
        let table = ExperimentTable::new(
            "E6",
            "Fabrication processes: turnaround, mask cost",
            vec!["process".into(), "EUR/device @10".into()],
            vec![
                vec!["dry film resist".into(), "12".into()],
                vec!["CMOS".into(), "84000".into()],
            ],
        );
        let parsed = ExperimentTable::from_markdown(&table.to_markdown()).unwrap();
        assert_eq!(parsed, table);
        // And the re-rendering is byte-identical.
        assert_eq!(parsed.to_markdown(), table.to_markdown());
    }

    #[test]
    fn malformed_markdown_is_rejected() {
        assert!(ExperimentTable::from_markdown("").is_err());
        assert!(ExperimentTable::from_markdown("no header").is_err());
        assert!(ExperimentTable::from_markdown("## E1 no separator\n| a |\n|---|").is_err());
        assert!(
            ExperimentTable::from_markdown("## E1 — t\n| a | b |\n|---|---|\n| 1 |").is_err(),
            "arity mismatch must be rejected"
        );
    }

    #[test]
    fn json_and_markdown_come_from_the_same_table() {
        let table = ExperimentTable::new("E0", "demo", vec!["a".into()], vec![vec!["1".into()]]);
        let json = table.to_json();
        let object = json.as_object().unwrap();
        assert_eq!(object.get("id").unwrap().as_str(), Some("E0"));
        let back: ExperimentTable = serde_json::from_value(&json).unwrap();
        assert_eq!(back.to_markdown(), table.to_markdown());
    }

    #[test]
    fn experiment_ids_round_trip() {
        for e in Experiment::all() {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
            assert_eq!(Experiment::from_id(&e.id().to_lowercase()), Some(e));
        }
        assert_eq!(Experiment::from_id("E42"), None);
    }
}
