//! E4 — sensor averaging: "trade time of execution for quality of the
//! results, e.g. averaging sensors output for thermal noise reduction".
//!
//! For a sweep of frame counts `N`, the experiment reports the effective
//! noise, the detection SNR, the theoretical and simulated occupancy-error
//! rates, the total scan time of the full array, and whether that scan still
//! fits inside one cage step at the reference 50 µm/s motion — i.e. whether
//! the quality is indeed free.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::capacitive::CapacitiveSensor;
use labchip_sensing::detect::Detector;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridDims, Seconds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the averaging sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Frame counts to sweep.
    pub frame_counts: Vec<u32>,
    /// Sensing channel model.
    pub sensor: CapacitiveSensor,
    /// Readout timing.
    pub scan: ScanTiming,
    /// Array size scanned.
    pub dims: GridDims,
    /// Simulated detection trials per state per point.
    pub trials: u32,
    /// Cage-step period the scan must fit into (reference motion), seconds.
    pub step_period: Seconds,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            frame_counts: vec![1, 2, 4, 8, 16, 32, 64, 128],
            sensor: CapacitiveSensor::date05_reference(),
            scan: ScanTiming::date05_reference(),
            dims: GridDims::new(320, 320),
            trials: 4_000,
            step_period: Seconds::new(0.4),
            seed: 11,
        }
    }
}

/// One row of the averaging sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AveragingRow {
    /// Number of frames averaged.
    pub frames: u32,
    /// Effective RMS noise after averaging (volts).
    pub effective_noise: f64,
    /// Detection SNR (signal separation over effective noise).
    pub snr: f64,
    /// Theoretical error probability.
    pub theoretical_error: f64,
    /// Simulated error rate.
    pub simulated_error: f64,
    /// Total scan time of the full array, milliseconds.
    pub scan_time_ms: f64,
    /// Whether the scan fits inside one cage step.
    pub fits_in_step: bool,
}

/// Result of the averaging sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per frame count.
    pub rows: Vec<AveragingRow>,
}

/// The averaging sweep as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct SensingScenario;

impl Scenario for SensingScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E4"
    }

    fn describe(&self) -> &'static str {
        "Sensor frame averaging: SNR and detection error vs scan time"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let sensor = &config.sensor;
    let detector = Detector::new(
        0.0,
        sensor
            .signal_for(labchip_sensing::detect::Occupancy::Occupied)
            .get(),
    )
    .expect("occupied and empty levels always differ");

    let mut rows = Vec::with_capacity(config.frame_counts.len());
    for &frames in &config.frame_counts {
        let averager = FrameAverager::new(frames);
        let effective_noise = averager.effective_noise(&sensor.noise);
        let snr = detector.separation() / effective_noise;
        let theoretical_error = detector.error_probability(effective_noise);
        let simulated_error =
            averager.detection_error_rate(&detector, &sensor.noise, config.trials, &mut rng);
        let scan_time = config.scan.averaged_scan_time(config.dims, &averager);
        let row = AveragingRow {
            frames,
            effective_noise,
            snr,
            theoretical_error,
            simulated_error,
            scan_time_ms: scan_time.as_millis(),
            fits_in_step: scan_time <= config.step_period,
        };
        ctx.emit_row(format!(
            "{frames} frames: SNR {:.1}, scan {:.1} ms",
            row.snr, row.scan_time_ms
        ));
        rows.push(row);
    }
    Results { rows }
}

impl Results {
    /// The largest frame count whose scan still fits in one cage step.
    pub fn max_frames_in_step(&self) -> Option<u32> {
        self.rows
            .iter()
            .filter(|r| r.fits_in_step)
            .map(|r| r.frames)
            .max()
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E4",
            "Sensor frame averaging: SNR and detection error vs scan time",
            vec![
                "frames".into(),
                "noise [mV]".into(),
                "SNR".into(),
                "error (theory)".into(),
                "error (sim)".into(),
                "scan time [ms]".into(),
                "fits in step".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.frames.to_string(),
                        format!("{:.3}", r.effective_noise * 1e3),
                        format!("{:.1}", r.snr),
                        format!("{:.2e}", r.theoretical_error),
                        format!("{:.2e}", r.simulated_error),
                        format!("{:.1}", r.scan_time_ms),
                        if r.fits_in_step {
                            "yes".into()
                        } else {
                            "no".into()
                        },
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E4"))
    }

    fn quick_config() -> Config {
        Config {
            frame_counts: vec![1, 4, 16, 64],
            trials: 2_000,
            ..Config::default()
        }
    }

    #[test]
    fn snr_grows_and_error_falls_with_averaging() {
        let results = run(&quick_config());
        for pair in results.rows.windows(2) {
            assert!(pair[1].snr > pair[0].snr);
            assert!(pair[1].effective_noise < pair[0].effective_noise);
            assert!(pair[1].theoretical_error <= pair[0].theoretical_error);
            assert!(pair[1].scan_time_ms > pair[0].scan_time_ms);
        }
        // SNR improves roughly as sqrt(N) until the flicker floor bites:
        // from 1 to 16 frames the gain should be close to 4x.
        let gain = results.rows[2].snr / results.rows[0].snr;
        assert!(gain > 2.5 && gain < 4.5, "gain = {gain}");
    }

    #[test]
    fn simulation_matches_theory() {
        let results = run(&quick_config());
        for row in &results.rows {
            let tolerance = 0.03 + 3.0 * row.theoretical_error;
            assert!(
                (row.simulated_error - row.theoretical_error).abs() < tolerance,
                "N={}: simulated {} vs theoretical {}",
                row.frames,
                row.simulated_error,
                row.theoretical_error
            );
        }
    }

    #[test]
    fn heavy_averaging_still_fits_in_a_cage_step() {
        // The paper's point: the quality is essentially free because the
        // mechanics is so slow. At 50 µm/s (0.4 s per step) dozens of frames
        // fit.
        let results = run(&quick_config());
        assert!(results.max_frames_in_step().unwrap_or(0) >= 64);
    }

    #[test]
    fn table_shape() {
        let table = run(&quick_config()).to_table();
        assert_eq!(table.row_count(), 4);
        assert_eq!(table.columns.len(), 7);
    }
}
