//! E13 — programmable protocols: assays as data through the phase pipeline.
//!
//! Every driver scenario before this one ran the *same* hard-coded
//! load→route→sense→flush cycle; the chip's actual value proposition is
//! that one device runs **arbitrary** assay protocols. This scenario
//! executes a [`Protocol`] — a serde-round-trippable ordered list of
//! [`PhaseSpec`]s with per-phase knobs — through the
//! [`ProtocolRunner`](crate::workload::ProtocolRunner): the default is a
//! two-population merge assay
//! (`load → route(sort) → sense → route(merge pairs) → sense → flush`)
//! that the retired monolithic `run_cycle` literally could not express,
//! and any other phase list can be injected straight from the CLI
//! (`report run e13 --set 'protocol={...}'`).
//!
//! Per phase the table reports the simulated time by ledger
//! (fluidics/sensing/motion/recovery), the cage moves commanded and the
//! particle population — the per-phase cost breakdown of a programmable
//! assay — plus a totals row with the cycle-level outcome (routed counts,
//! detected occupancy, final plan mismatches).

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use crate::workload::{
    BatchDriver, PhaseSpec, Protocol, RecoveryPolicy, RouteTarget, WorkloadConfig,
};
use labchip_manipulation::sharding::ShardConfig;
use labchip_units::Seconds;
use serde::{Deserialize, Serialize};

/// Configuration of the programmable-protocol scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particles loaded by the *default* protocol (ignored when an explicit
    /// `protocol` is supplied — that protocol's own load phases rule).
    pub particles: usize,
    /// The protocol to execute; `None` runs the default two-population
    /// merge assay built from `particles`.
    pub protocol: Option<Protocol>,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Scale applied to every sensor noise term (1 = reference channel).
    pub noise_scale: f64,
    /// Recovery policy for `Recover` phases that do not override it.
    pub recovery: RecoveryPolicy,
    /// Fluidic handling time per batch load.
    pub load_time: Seconds,
    /// Fluidic handling time per batch flush.
    pub flush_time: Seconds,
    /// Shard tile side of the incremental router.
    pub shard_side: u32,
    /// Steps per planning window.
    pub window: u32,
    /// Worker threads for the sharded planner (0 = all cores).
    pub threads: usize,
    /// Base RNG seed (batch placement and sensor noise).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 96,
            particles: 120,
            protocol: None,
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 8,
            noise_scale: 1.0,
            recovery: RecoveryPolicy::disabled(),
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            shard_side: 32,
            window: 8,
            threads: 0,
            seed: 2005,
        }
    }
}

/// The default two-population merge assay: sort the batch into two
/// populations, verify, bring consecutive pairs together at minimum
/// separation in the centre, verify again, flush.
pub fn default_protocol(particles: usize) -> Protocol {
    Protocol::new("two-population-merge")
        .with_phase(PhaseSpec::Load {
            particles,
            capacity_clamp: None,
        })
        .with_phase(PhaseSpec::Route {
            target: RouteTarget::SortSplit,
        })
        .with_phase(PhaseSpec::Sense { frames: None })
        .with_phase(PhaseSpec::Route {
            target: RouteTarget::MergePairs,
        })
        .with_phase(PhaseSpec::Sense { frames: None })
        .with_phase(PhaseSpec::Flush)
}

/// One executed phase, rendered for the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Zero-based phase index.
    pub index: usize,
    /// Phase name (with target annotation).
    pub phase: String,
    /// Cage moves this phase commanded.
    pub moves: usize,
    /// Particles on the grid after the phase.
    pub particles_after: usize,
    /// Fluidic time charged, seconds.
    pub fluidics_s: f64,
    /// Sensing time charged, seconds.
    pub sensing_s: f64,
    /// Motion time charged, seconds.
    pub motion_s: f64,
    /// Recovery time charged, seconds.
    pub recovery_s: f64,
    /// One-line phase summary.
    pub detail: String,
}

/// Result of the programmable-protocol run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Name of the executed protocol.
    pub protocol_name: String,
    /// One row per executed phase.
    pub rows: Vec<PhaseRow>,
    /// Particles loaded across all load phases.
    pub requested: usize,
    /// Requests delivered across all route phases.
    pub routed: usize,
    /// Occupied cages the final detection map reports.
    pub occupancy_detected: usize,
    /// Detected-vs-plan mismatches at protocol end.
    pub mismatches_final: usize,
    /// Ground-truth placement errors at protocol end.
    pub true_mismatches_final: usize,
    /// Total simulated chip time, seconds.
    pub total_time_s: f64,
    /// Whether every routed plan passed the separation invariant.
    pub conflict_free: bool,
}

impl Results {
    /// Renders the result as a report table (phase rows plus a totals row).
    pub fn to_table(&self) -> ExperimentTable {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.index.to_string(),
                    r.phase.clone(),
                    r.moves.to_string(),
                    r.particles_after.to_string(),
                    format!("{:.1}", r.fluidics_s),
                    format!("{:.2}", r.sensing_s),
                    format!("{:.1}", r.motion_s),
                    format!("{:.1}", r.recovery_s),
                    r.detail.clone(),
                ]
            })
            .collect();
        rows.push(vec![
            "total".into(),
            self.protocol_name.clone(),
            self.routed.to_string(),
            self.occupancy_detected.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!(
                "{} mismatches ({} true) after {:.0} s",
                self.mismatches_final, self.true_mismatches_final, self.total_time_s
            ),
        ]);
        ExperimentTable::new(
            "E13",
            "Programmable protocols: assays composed from phases, executed as data",
            vec![
                "phase".into(),
                "name".into(),
                "moves".into(),
                "particles".into(),
                "fluidics [s]".into(),
                "sense [s]".into(),
                "motion [s]".into(),
                "recovery [s]".into(),
                "detail".into(),
            ],
            rows,
        )
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let workload = WorkloadConfig {
        array_side: config.array_side,
        shards: ShardConfig {
            shard_side: config.shard_side,
            window: config.window,
            ..ShardConfig::default()
        },
        min_separation: config.min_separation,
        step_period: config.step_period,
        detection_frames: config.detection_frames,
        noise_scale: config.noise_scale,
        recovery: config.recovery,
        load_time: config.load_time,
        flush_time: config.flush_time,
        reuse_plans: false,
        live_planning: false,
        seed: config.seed,
    };
    let protocol = config
        .protocol
        .clone()
        .unwrap_or_else(|| default_protocol(config.particles));
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("thread pool construction is infallible");
    let mut driver = BatchDriver::new(workload);
    let outcome = pool.install(|| driver.run_protocol(&protocol));

    let rows: Vec<PhaseRow> = outcome
        .phases
        .iter()
        .enumerate()
        .map(|(index, phase)| PhaseRow {
            index,
            phase: phase.phase.clone(),
            moves: phase.moves,
            particles_after: phase.particles_after,
            fluidics_s: phase.time.fluidics.get(),
            sensing_s: phase.time.sensing.get(),
            motion_s: phase.time.motion.get(),
            recovery_s: phase.time.recovery.get(),
            detail: phase.detail.clone(),
        })
        .collect();
    for row in &rows {
        ctx.emit_row(format!(
            "phase {} ({}): {} moves, {} particles — {}",
            row.index, row.phase, row.moves, row.particles_after, row.detail
        ));
    }
    let report = &outcome.report;
    let results = Results {
        protocol_name: protocol.name.clone(),
        rows,
        requested: report.requested,
        routed: report.routed,
        occupancy_detected: report.occupancy_detected,
        mismatches_final: report.mismatches_final,
        true_mismatches_final: report.true_mismatches_final,
        total_time_s: report.time.total().get(),
        conflict_free: report.conflict_free,
    };
    ctx.emit_row(format!(
        "protocol `{}`: {}/{} routed, {} detected, {} mismatches in {:.0} s",
        results.protocol_name,
        results.routed,
        results.requested,
        results.occupancy_detected,
        results.mismatches_final,
        results.total_time_s
    ));
    results
}

/// The programmable-protocol scenario as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolsScenario;

impl Scenario for ProtocolsScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E13"
    }

    fn describe(&self) -> &'static str {
        "Programmable protocols: assays composed from phases, executed as data"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E13"))
    }

    fn quick_config() -> Config {
        Config {
            array_side: 48,
            particles: 20,
            noise_scale: 0.0,
            threads: 1,
            ..Config::default()
        }
    }

    #[test]
    fn default_protocol_runs_and_reports_every_phase() {
        let results = run(&quick_config());
        assert_eq!(results.protocol_name, "two-population-merge");
        assert_eq!(results.rows.len(), 6);
        assert_eq!(results.requested, 20);
        // Two route phases, 20 requests each.
        assert_eq!(results.routed, 40);
        assert!(results.conflict_free);
        // With ideal sensing the final map matches the merge plan exactly.
        assert_eq!(results.mismatches_final, 0);
        assert_eq!(results.true_mismatches_final, 0);
        // Both motion phases commanded moves.
        assert!(results.rows[1].moves > 0, "{:?}", results.rows[1]);
        assert!(results.rows[3].moves > 0, "{:?}", results.rows[3]);
        // The flush emptied the chip.
        assert_eq!(results.rows[5].particles_after, 0);
    }

    #[test]
    fn explicit_protocols_override_the_default() {
        let protocol = Protocol::new("just-load-and-flush")
            .with_phase(PhaseSpec::Load {
                particles: 8,
                capacity_clamp: None,
            })
            .with_phase(PhaseSpec::Flush);
        let config = Config {
            protocol: Some(protocol),
            ..quick_config()
        };
        let results = run(&config);
        assert_eq!(results.protocol_name, "just-load-and-flush");
        assert_eq!(results.rows.len(), 2);
        assert_eq!(results.requested, 8);
        assert_eq!(results.routed, 0);
        // No scan ran: nothing was detected.
        assert_eq!(results.occupancy_detected, 0);
    }

    #[test]
    fn table_has_phase_rows_plus_totals() {
        let results = run(&quick_config());
        let table = results.to_table();
        assert_eq!(table.columns.len(), 9);
        assert_eq!(table.row_count(), 7);
        assert!(table.to_string().contains("merge-pairs"));
    }
}
