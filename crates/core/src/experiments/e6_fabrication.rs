//! E6 — fabrication economics: "two-three days from design to device … very
//! low cost both for the masks (few euros) and overall set-up for fabrication
//! (tens of thousands euros)".
//!
//! Compares the dry-film-resist process of the paper's reference \[5\] against
//! PDMS soft lithography, wet-etched glass and (for contrast) a CMOS
//! prototype run: turnaround, mask cost, set-up cost and per-device cost at
//! several batch sizes.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use labchip_fluidics::fabrication::{FabricationProcess, ProcessKind};
use serde::{Deserialize, Serialize};

/// Configuration of the fabrication comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Processes to compare.
    pub processes: Vec<ProcessKind>,
    /// Batch sizes for the per-device cost figures.
    pub batch_sizes: Vec<u32>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            processes: vec![
                ProcessKind::DryFilmResist,
                ProcessKind::PdmsSoftLithography,
                ProcessKind::GlassEtching,
                ProcessKind::CmosPrototype,
            ],
            batch_sizes: vec![1, 10, 100],
        }
    }
}

/// One row (one process) of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricationRow {
    /// Process name.
    pub process: String,
    /// Turnaround in days.
    pub turnaround_days: f64,
    /// Mask cost in euros.
    pub mask_cost_eur: f64,
    /// Set-up cost in kilo-euros.
    pub setup_cost_keur: f64,
    /// Minimum feature in micrometres.
    pub min_feature_um: f64,
    /// Per-device cost (euros) at each configured batch size, mask included,
    /// set-up excluded.
    pub per_device_eur: Vec<f64>,
}

/// Result of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Batch sizes the per-device costs refer to.
    pub batch_sizes: Vec<u32>,
    /// One row per process.
    pub rows: Vec<FabricationRow>,
}

/// The fabrication comparison as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricationScenario;

impl Scenario for FabricationScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E6"
    }

    fn describe(&self) -> &'static str {
        "Fabrication processes: turnaround, mask cost, set-up and per-device cost"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let mut rows = Vec::with_capacity(config.processes.len());
    for &kind in &config.processes {
        let process = FabricationProcess::preset(kind);
        let per_device = config
            .batch_sizes
            .iter()
            .map(|&batch| process.quote(batch, false).cost_per_device().get())
            .collect();
        let row = FabricationRow {
            process: process.name.clone(),
            turnaround_days: process.turnaround.as_days(),
            mask_cost_eur: process.mask_cost.get(),
            setup_cost_keur: process.setup_cost.as_kilo_euros(),
            min_feature_um: process.min_feature().as_micrometers(),
            per_device_eur: per_device,
        };
        ctx.emit_row(format!(
            "{}: {:.1} days, {:.0} EUR masks",
            row.process, row.turnaround_days, row.mask_cost_eur
        ));
        rows.push(row);
    }
    Results {
        batch_sizes: config.batch_sizes.clone(),
        rows,
    }
}

impl Results {
    /// The dry-film-resist row (the paper's process), if swept.
    pub fn dry_film_row(&self) -> Option<&FabricationRow> {
        self.rows.iter().find(|r| r.process.contains("dry film"))
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        let mut columns = vec![
            "process".to_string(),
            "turnaround [days]".to_string(),
            "mask [EUR]".to_string(),
            "set-up [kEUR]".to_string(),
            "min feature [um]".to_string(),
        ];
        for batch in &self.batch_sizes {
            columns.push(format!("EUR/device @{batch}"));
        }
        ExperimentTable::new(
            "E6",
            "Fabrication processes: turnaround, mask cost, set-up and per-device cost",
            columns,
            self.rows
                .iter()
                .map(|r| {
                    let mut row = vec![
                        r.process.clone(),
                        format!("{:.1}", r.turnaround_days),
                        format!("{:.0}", r.mask_cost_eur),
                        format!("{:.0}", r.setup_cost_keur),
                        format!("{:.1}", r.min_feature_um),
                    ];
                    for cost in &r.per_device_eur {
                        row.push(format!("{:.0}", cost));
                    }
                    row
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E6"))
    }

    #[test]
    fn dry_film_matches_the_papers_numbers() {
        let results = run(&Config::default());
        let dry = results.dry_film_row().expect("dry film resist is swept");
        // C6: 2-3 days, masks of a few euros, set-up of tens of kEUR.
        assert!(dry.turnaround_days >= 2.0 && dry.turnaround_days <= 3.0);
        assert!(dry.mask_cost_eur < 10.0);
        assert!(dry.setup_cost_keur >= 10.0 && dry.setup_cost_keur <= 100.0);
    }

    #[test]
    fn dry_film_is_fastest_and_cheapest_fluidic_option() {
        let results = run(&Config::default());
        let dry = results.dry_film_row().unwrap();
        for row in &results.rows {
            if row.process == dry.process {
                continue;
            }
            assert!(row.turnaround_days >= dry.turnaround_days);
            assert!(row.mask_cost_eur >= dry.mask_cost_eur);
        }
    }

    #[test]
    fn per_device_cost_falls_with_batch_size() {
        let results = run(&Config::default());
        for row in &results.rows {
            for pair in row.per_device_eur.windows(2) {
                assert!(pair[1] <= pair[0]);
            }
        }
    }

    #[test]
    fn cmos_contrast_is_orders_of_magnitude() {
        let results = run(&Config::default());
        let dry = results.dry_film_row().unwrap();
        let cmos = results
            .rows
            .iter()
            .find(|r| r.process.contains("CMOS"))
            .unwrap();
        assert!(cmos.turnaround_days > 20.0 * dry.turnaround_days);
        assert!(cmos.mask_cost_eur > 1_000.0 * dry.mask_cost_eur);
    }

    #[test]
    fn table_shape() {
        let config = Config::default();
        let table = run(&config).to_table();
        assert_eq!(table.row_count(), config.processes.len());
        assert_eq!(table.columns.len(), 5 + config.batch_sizes.len());
    }
}
