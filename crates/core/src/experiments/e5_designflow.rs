//! E5 — design-flow comparison (Fig. 1 vs Fig. 2): "it is often faster to
//! build and test a prototype than to simulate it".
//!
//! Runs the Monte-Carlo project model under both flows for a sweep of
//! parameter-uncertainty levels, reporting time-to-working-prototype and cost
//! statistics. The expected shape: at 2005-level uncertainty the
//! prototype-in-the-loop flow converges in a fraction of the calendar time;
//! as parameter knowledge improves the gap narrows.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario as EngineScenario, ScenarioContext};
use labchip_designflow::flows::FlowParameters;
use labchip_designflow::montecarlo::MonteCarloComparison;
use labchip_fluidics::uncertainty::FluidicParameters;
use serde::{Deserialize, Serialize};

/// One uncertainty scenario of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario label.
    pub label: String,
    /// Parameter knowledge at project start.
    pub parameters: FluidicParameters,
}

/// Configuration of the flow comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scenarios to sweep.
    pub scenarios: Vec<Scenario>,
    /// Monte-Carlo trials per flow per scenario.
    pub trials: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            scenarios: vec![
                Scenario {
                    label: "literature 2005".into(),
                    parameters: FluidicParameters::literature_2005(),
                },
                Scenario {
                    label: "after characterization".into(),
                    parameters: FluidicParameters::after_prototype_characterization(),
                },
            ],
            trials: 400,
            seed: 2005,
        }
    }
}

/// One row of the comparison (one scenario).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRow {
    /// Scenario label.
    pub scenario: String,
    /// Mean calendar days, simulate-first flow.
    pub simulate_first_days: f64,
    /// Mean calendar days, prototype-in-the-loop flow.
    pub prototype_days: f64,
    /// Mean cost (kEUR), simulate-first flow.
    pub simulate_first_keur: f64,
    /// Mean cost (kEUR), prototype flow.
    pub prototype_keur: f64,
    /// Mean fabrication iterations, simulate-first flow.
    pub simulate_first_iterations: f64,
    /// Mean fabrication iterations, prototype flow.
    pub prototype_iterations: f64,
    /// Calendar-time speed-up of the prototype flow.
    pub speedup: f64,
}

/// Result of the flow comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per scenario.
    pub rows: Vec<FlowRow>,
}

/// The design-flow comparison as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesignFlowScenario;

impl EngineScenario for DesignFlowScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E5"
    }

    fn describe(&self) -> &'static str {
        "Design-flow comparison (Fig. 1 vs Fig. 2): time and cost to a working fluidic prototype"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let mut rows = Vec::with_capacity(config.scenarios.len());
    for scenario in &config.scenarios {
        let comparison = MonteCarloComparison {
            parameters: FlowParameters {
                initial_parameters: scenario.parameters,
                ..FlowParameters::date05_reference()
            },
            trials: config.trials,
            seed: config.seed,
        };
        let outcome = comparison.run().expect("reference parameters are valid");
        let row = FlowRow {
            scenario: scenario.label.clone(),
            simulate_first_days: outcome.simulate_first.mean_duration.as_days(),
            prototype_days: outcome.prototype_in_loop.mean_duration.as_days(),
            simulate_first_keur: outcome.simulate_first.mean_cost.as_kilo_euros(),
            prototype_keur: outcome.prototype_in_loop.mean_cost.as_kilo_euros(),
            simulate_first_iterations: outcome.simulate_first.mean_iterations,
            prototype_iterations: outcome.prototype_in_loop.mean_iterations,
            speedup: outcome.speedup(),
        };
        ctx.emit_row(format!(
            "{}: prototype {:.2}x faster",
            row.scenario, row.speedup
        ));
        rows.push(row);
    }
    Results { rows }
}

impl Results {
    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E5",
            "Design-flow comparison (Fig. 1 vs Fig. 2): time and cost to a working fluidic prototype",
            vec![
                "scenario".into(),
                "sim-first [days]".into(),
                "prototype [days]".into(),
                "sim-first [kEUR]".into(),
                "prototype [kEUR]".into(),
                "sim-first [iters]".into(),
                "prototype [iters]".into(),
                "speed-up".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.scenario.clone(),
                        format!("{:.0}", r.simulate_first_days),
                        format!("{:.0}", r.prototype_days),
                        format!("{:.1}", r.simulate_first_keur),
                        format!("{:.1}", r.prototype_keur),
                        format!("{:.1}", r.simulate_first_iterations),
                        format!("{:.1}", r.prototype_iterations),
                        format!("{:.2}x", r.speedup),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E5"))
    }

    fn quick_config() -> Config {
        Config {
            trials: 200,
            ..Config::default()
        }
    }

    #[test]
    fn prototype_flow_wins_under_2005_uncertainty() {
        let results = run(&quick_config());
        let row = &results.rows[0];
        assert_eq!(row.scenario, "literature 2005");
        // The paper's claim, as a number: prototyping converges well over
        // 1.5x faster in calendar time, despite using more iterations.
        assert!(row.speedup > 1.5, "speedup = {:.2}", row.speedup);
        assert!(row.prototype_days < row.simulate_first_days);
        assert!(row.prototype_iterations >= row.simulate_first_iterations);
    }

    #[test]
    fn better_knowledge_helps_both_flows() {
        // With well-characterised parameters both flows need fewer spins and
        // less calendar time; the prototype flow still wins on time because
        // its iterations stay an order of magnitude shorter.
        let results = run(&quick_config());
        let before = &results.rows[0];
        let after = &results.rows[1];
        assert!(after.simulate_first_iterations <= before.simulate_first_iterations);
        assert!(after.prototype_iterations <= before.prototype_iterations);
        assert!(after.simulate_first_days <= before.simulate_first_days);
        assert!(after.prototype_days <= before.prototype_days);
        assert!(after.speedup > 1.0);
    }

    #[test]
    fn durations_and_costs_are_positive_and_plausible() {
        let results = run(&quick_config());
        for row in &results.rows {
            assert!(row.simulate_first_days > 10.0 && row.simulate_first_days < 2_000.0);
            assert!(row.prototype_days > 3.0 && row.prototype_days < 1_000.0);
            assert!(row.simulate_first_keur > 0.5);
            assert!(row.prototype_keur > 0.5);
        }
    }

    #[test]
    fn table_shape() {
        let table = run(&quick_config()).to_table();
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.columns.len(), 8);
    }
}
