//! E9 — the assembled device (Fig. 3) runs an end-to-end assay.
//!
//! A complete single-cell isolation assay is executed against the packaged
//! chip model: load a sample, scan the sensors, isolate the target cell,
//! wash the rest to the waste edge, recover the target. The result is the
//! time budget split between fluidic handling, sensing and cage motion — the
//! system-level confirmation that mass transfer, not electronics, dominates
//! the experiment (and that the packaged device has everything it needs).

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use labchip_array::pattern::{CagePattern, PatternKind};
use labchip_fluidics::fabrication::{FabricationProcess, ProcessKind};
use labchip_fluidics::packaging::PackagingStack;
use labchip_manipulation::cage::ParticleId;
use labchip_manipulation::ops::Manipulator;
use labchip_manipulation::protocol::{Protocol, ProtocolExecutor, ProtocolStep};
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridCoord, GridDims, Seconds};
use serde::{Deserialize, Serialize};

/// Configuration of the end-to-end assay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side of the working region used by the assay.
    pub array_side: u32,
    /// Number of cells loaded.
    pub cells: u32,
    /// Frames averaged per detection scan.
    pub detection_frames: u32,
    /// Sample loading time (pipetting, settling, trapping).
    pub load_time: Seconds,
    /// Recovery handling time.
    pub recover_time: Seconds,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 32,
            cells: 9,
            detection_frames: 32,
            load_time: Seconds::from_minutes(3.0),
            recover_time: Seconds::from_minutes(1.0),
        }
    }
}

/// Result of the end-to-end assay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Cells loaded.
    pub cells_loaded: u32,
    /// Cells recovered.
    pub cells_recovered: usize,
    /// Total cage steps executed.
    pub cage_steps: usize,
    /// Time spent in fluidic handling.
    pub fluidics: Seconds,
    /// Time spent scanning sensors.
    pub sensing: Seconds,
    /// Time spent moving cages.
    pub motion: Seconds,
    /// Packaged-device assembly turnaround (dry-film process).
    pub device_turnaround: Seconds,
    /// Packaged-device incremental cost in euros.
    pub device_cost_eur: f64,
}

/// The end-to-end assay as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct AssayScenario;

impl Scenario for AssayScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E9"
    }

    fn describe(&self) -> &'static str {
        "End-to-end single-cell isolation assay on the packaged device"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let dims = GridDims::square(config.array_side);

    // Load sites: a lattice in the central region, enough for the requested
    // number of cells.
    let lattice = CagePattern::new(
        dims,
        PatternKind::Lattice {
            period: 4,
            offset: GridCoord::new(2, 2),
        },
    )
    .expect("period-4 lattice is valid");
    let sites: Vec<GridCoord> = lattice
        .cage_sites()
        .iter()
        .copied()
        .take(config.cells as usize)
        .collect();
    let load_pattern =
        CagePattern::new(dims, PatternKind::Custom(sites)).expect("sites are on the array");

    // Detection scan time: full-array scan with the configured averaging.
    let scan_time = ScanTiming::date05_reference()
        .averaged_scan_time(dims, &FrameAverager::new(config.detection_frames));

    let target = ParticleId(0);
    let protocol = Protocol::new("single-cell isolation")
        .with_step(ProtocolStep::LoadSample {
            pattern: load_pattern,
            handling_time: config.load_time,
        })
        .with_step(ProtocolStep::Detect { scan_time })
        .with_step(ProtocolStep::Isolate { id: target })
        .with_step(ProtocolStep::Detect { scan_time })
        .with_step(ProtocolStep::Wash { keep: vec![target] })
        .with_step(ProtocolStep::Recover {
            id: target,
            handling_time: config.recover_time,
        });

    let mut manipulator = Manipulator::new(dims);
    let report = ProtocolExecutor::new(&mut manipulator)
        .run(&protocol)
        .expect("the reference assay is executable");

    // The physical device the assay runs on (Fig. 3).
    let stack = PackagingStack::date05_reference();
    let process = FabricationProcess::preset(ProcessKind::DryFilmResist);

    let results = Results {
        cells_loaded: config.cells,
        cells_recovered: report.recovered.len(),
        cage_steps: report.cage_steps,
        fluidics: report.time.fluidics,
        sensing: report.time.sensing,
        motion: report.time.motion,
        device_turnaround: stack.assembly_turnaround(&process),
        device_cost_eur: stack.assembly_cost(&process).get(),
    };
    ctx.emit_row(format!(
        "recovered {}/{} cells in {} cage steps",
        results.cells_recovered, results.cells_loaded, results.cage_steps
    ));
    ctx.emit_row(format!(
        "assay total {:.1} min ({:.1}% fluidics)",
        results.total_time().as_minutes(),
        100.0 * results.fluidics.get() / results.total_time().get().max(f64::MIN_POSITIVE)
    ));
    results
}

impl Results {
    /// Total assay time.
    pub fn total_time(&self) -> Seconds {
        self.fluidics + self.sensing + self.motion
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        let total = self.total_time();
        let percent = |part: Seconds| {
            if total.get() > 0.0 {
                format!("{:.1}%", 100.0 * part.get() / total.get())
            } else {
                "0%".into()
            }
        };
        ExperimentTable::new(
            "E9",
            "End-to-end single-cell isolation assay on the packaged device",
            vec!["quantity".into(), "value".into(), "share of assay".into()],
            vec![
                vec![
                    "cells loaded".into(),
                    self.cells_loaded.to_string(),
                    "-".into(),
                ],
                vec![
                    "cells recovered".into(),
                    self.cells_recovered.to_string(),
                    "-".into(),
                ],
                vec!["cage steps".into(), self.cage_steps.to_string(), "-".into()],
                vec![
                    "fluidic handling".into(),
                    format!("{:.1} min", self.fluidics.as_minutes()),
                    percent(self.fluidics),
                ],
                vec![
                    "sensor scanning".into(),
                    format!("{:.1} ms", self.sensing.as_millis()),
                    percent(self.sensing),
                ],
                vec![
                    "cage motion".into(),
                    format!("{:.1} min", self.motion.as_minutes()),
                    percent(self.motion),
                ],
                vec![
                    "total assay".into(),
                    format!("{:.1} min", total.as_minutes()),
                    "100%".into(),
                ],
                vec![
                    "device turnaround".into(),
                    format!("{:.1} days", self.device_turnaround.as_days()),
                    "-".into(),
                ],
                vec![
                    "device cost".into(),
                    format!("{:.0} EUR", self.device_cost_eur),
                    "-".into(),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E9"))
    }

    #[test]
    fn assay_completes_and_recovers_the_target() {
        let results = run(&Config::default());
        assert_eq!(results.cells_recovered, 1);
        assert!(results.cage_steps > 0);
        assert!(results.total_time().as_minutes() > 3.0);
    }

    #[test]
    fn fluidics_dominates_then_motion_then_sensing() {
        // The system-level restatement of C4: mass transfer (handling and
        // cage motion) dwarfs the electronics time.
        let results = run(&Config::default());
        assert!(results.fluidics > results.motion);
        assert!(results.motion > results.sensing);
        assert!(
            results.sensing.get() < 5.0,
            "sensing = {} s",
            results.sensing.get()
        );
    }

    #[test]
    fn packaged_device_is_days_and_tens_of_euros() {
        let results = run(&Config::default());
        assert!(results.device_turnaround.as_days() < 5.0);
        assert!(results.device_cost_eur < 60.0);
    }

    #[test]
    fn more_cells_mean_more_cage_steps() {
        let small = run(&Config {
            cells: 4,
            ..Config::default()
        });
        let large = run(&Config {
            cells: 16,
            ..Config::default()
        });
        assert!(large.cage_steps >= small.cage_steps);
        assert_eq!(large.cells_recovered, 1);
    }

    #[test]
    fn table_shape() {
        let table = run(&Config::default()).to_table();
        assert_eq!(table.columns.len(), 3);
        assert_eq!(table.row_count(), 9);
        assert!(table.to_string().contains("cells recovered"));
    }
}
