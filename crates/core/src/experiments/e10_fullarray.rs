//! E10 — full-array concurrent sort: the paper's "massively parallel
//! manipulation" claim exercised at chip scale.
//!
//! Thousands of particles are loaded across the whole 320×320 array and
//! sorted into two target patterns (one cell class to the left third, the
//! other to the right). Three planners compete at increasing density:
//!
//! * the **greedy** baseline — fast, but it livelocks as opposing traffic
//!   meets;
//! * the **monolithic space–time A\*** of E7 — exact at moderate scale, but
//!   its single global reservation table stops being usable at thousands of
//!   particles, so it runs on a *capped subsample* of the problem (the cap
//!   and its shorter horizon are config knobs, and the strategy column says
//!   exactly what it ran);
//! * the **incremental sharded planner**
//!   ([`IncrementalRouter`]) — windowed,
//!   partitioned, parallel across shards; the planner this experiment
//!   motivates.
//!
//! Per row: success rate, makespan (steps and seconds at the cage-step
//! period), total cage moves, planner wall-clock and planned moves per
//! wall-clock second.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use crate::workload::sort_problem;
use labchip_manipulation::routing::{Router, RoutingOutcome, RoutingProblem, RoutingStrategy};
use labchip_manipulation::sharding::{IncrementalRouter, RouterCache, ShardConfig};
use labchip_units::{GridDims, Seconds};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of the full-array sort experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particle count at the densest setting.
    pub particles: usize,
    /// Density sweep as fractions of `particles` (each fraction is one
    /// sweep point; the last should be 1.0).
    pub density_steps: Vec<f64>,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period (for wall-clock makespan figures).
    pub step_period: Seconds,
    /// Shard tile side of the incremental planner.
    pub shard_side: u32,
    /// Steps per planning window of the incremental planner.
    pub window: u32,
    /// The monolithic A\* runs on at most this many particles of each sweep
    /// point (0 disables the A\* rows entirely); beyond it the planner is
    /// minutes-per-row slow — which is the point of this experiment.
    pub astar_cap: usize,
    /// Horizon (max steps) of the capped A\* sub-problems.
    pub astar_max_steps: usize,
    /// Worker threads for the sharded planner (0 = all cores).
    pub threads: usize,
    /// Keep the incremental planner's per-shard plan cache warm across the
    /// density sweep (bit-identical rows either way).
    pub reuse_plans: bool,
    /// RNG seed for particle placement.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 320,
            particles: 2000,
            density_steps: vec![0.25, 0.5, 1.0],
            min_separation: 2,
            step_period: Seconds::new(0.4),
            shard_side: 32,
            window: 8,
            astar_cap: 96,
            astar_max_steps: 768,
            threads: 0,
            reuse_plans: false,
            seed: 2005,
        }
    }
}

/// One row of the full-array sweep (one particle count, one planner).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullArrayRow {
    /// Particles the planner was given.
    pub particles: usize,
    /// Planner name (including any cap annotation).
    pub strategy: String,
    /// Fraction routed to their targets.
    pub success_rate: f64,
    /// Makespan in cage steps.
    pub makespan_steps: usize,
    /// Makespan in seconds at the configured step period.
    pub makespan_seconds: f64,
    /// Total cage moves planned.
    pub total_moves: usize,
    /// Planner wall-clock, milliseconds.
    pub plan_wall_ms: f64,
    /// Planned moves per second of planner wall-clock.
    pub moves_per_second: f64,
    /// Whether the plan satisfies the separation invariant.
    pub conflict_free: bool,
}

/// Result of the full-array sort sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Rows: per density step, greedy → A\* (if capped in) → incremental.
    pub rows: Vec<FullArrayRow>,
}

impl Results {
    /// Rows of one strategy (substring match on the strategy name).
    pub fn rows_for(&self, fragment: &str) -> Vec<&FullArrayRow> {
        self.rows
            .iter()
            .filter(|r| r.strategy.contains(fragment))
            .collect()
    }

    /// Success rate of a strategy at the densest sweep point.
    pub fn densest_success(&self, fragment: &str) -> Option<f64> {
        self.rows_for(fragment).last().map(|r| r.success_rate)
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E10",
            "Full-array sort: greedy vs space-time A* vs incremental sharded planner",
            vec![
                "particles".into(),
                "strategy".into(),
                "success".into(),
                "makespan [steps]".into(),
                "makespan [s]".into(),
                "moves".into(),
                "plan [ms]".into(),
                "moves/s".into(),
                "conflict-free".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.particles.to_string(),
                        r.strategy.clone(),
                        format!("{:.1}%", r.success_rate * 100.0),
                        r.makespan_steps.to_string(),
                        format!("{:.0}", r.makespan_seconds),
                        r.total_moves.to_string(),
                        format!("{:.0}", r.plan_wall_ms),
                        format!("{:.0}", r.moves_per_second),
                        if r.conflict_free { "yes" } else { "NO" }.into(),
                    ]
                })
                .collect(),
        )
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn row_from_outcome(
    strategy: String,
    problem: &RoutingProblem,
    outcome: &RoutingOutcome,
    step_period: Seconds,
    wall: f64,
) -> FullArrayRow {
    let plan_wall_ms = wall * 1e3;
    FullArrayRow {
        particles: problem.requests.len(),
        strategy,
        success_rate: outcome.success_rate(problem.requests.len()),
        makespan_steps: outcome.makespan,
        makespan_seconds: step_period.get() * outcome.makespan as f64,
        total_moves: outcome.total_moves,
        plan_wall_ms,
        moves_per_second: if wall > 0.0 {
            outcome.total_moves as f64 / wall
        } else {
            0.0
        },
        conflict_free: outcome.is_conflict_free(problem.min_separation),
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let dims = GridDims::square(config.array_side);
    let incremental = IncrementalRouter::new(ShardConfig {
        shard_side: config.shard_side,
        window: config.window,
        ..ShardConfig::default()
    });
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("thread pool construction is infallible");
    let mut cache = config.reuse_plans.then(RouterCache::new);

    let mut rows = Vec::new();
    for &fraction in &config.density_steps {
        let count = ((config.particles as f64 * fraction).round() as usize).max(1);
        let problem = sort_problem(dims, count, config.min_separation, config.seed);

        // Greedy baseline.
        let started = Instant::now();
        let outcome = Router::new(RoutingStrategy::Greedy)
            .solve(&problem)
            .expect("generated problems are always well-formed");
        let row = row_from_outcome(
            "greedy".into(),
            &problem,
            &outcome,
            config.step_period,
            started.elapsed().as_secs_f64(),
        );
        ctx.emit_row(summary(&row));
        rows.push(row);

        // Monolithic space-time A* on a capped subsample.
        if config.astar_cap > 0 {
            let cap = config.astar_cap.min(problem.requests.len());
            let mut sub = problem.clone();
            sub.requests.truncate(cap);
            sub.max_steps = config.astar_max_steps;
            let started = Instant::now();
            let outcome = Router::new(RoutingStrategy::PrioritizedAStar)
                .solve(&sub)
                .expect("sub-problems of well-formed problems are well-formed");
            let row = row_from_outcome(
                format!("space-time A* (first {cap})"),
                &sub,
                &outcome,
                config.step_period,
                started.elapsed().as_secs_f64(),
            );
            ctx.emit_row(summary(&row));
            rows.push(row);
        }

        // The incremental sharded planner.
        let started = Instant::now();
        let outcome = pool.install(|| match cache.as_mut() {
            Some(cache) => incremental
                .solve_cached(&problem, cache)
                .expect("generated problems are always well-formed"),
            None => incremental
                .solve(&problem)
                .expect("generated problems are always well-formed"),
        });
        let row = row_from_outcome(
            "incremental".into(),
            &problem,
            &outcome,
            config.step_period,
            started.elapsed().as_secs_f64(),
        );
        ctx.emit_row(summary(&row));
        rows.push(row);
    }
    Results { rows }
}

fn summary(row: &FullArrayRow) -> String {
    format!(
        "{} particles via {}: {:.0}% in {} steps ({:.0} ms plan)",
        row.particles,
        row.strategy,
        row.success_rate * 100.0,
        row.makespan_steps,
        row.plan_wall_ms
    )
}

/// The full-array sort as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullArrayScenario;

impl Scenario for FullArrayScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E10"
    }

    fn describe(&self) -> &'static str {
        "Full-array concurrent sort at thousands of particles (three planners)"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E10"))
    }

    fn quick_config() -> Config {
        Config {
            array_side: 96,
            particles: 300,
            density_steps: vec![0.5, 1.0],
            astar_cap: 24,
            astar_max_steps: 384,
            threads: 1,
            ..Config::default()
        }
    }

    #[test]
    fn sweep_produces_three_strategies_per_density() {
        let results = run(&quick_config());
        assert_eq!(results.rows.len(), 6);
        assert_eq!(results.rows_for("greedy").len(), 2);
        assert_eq!(results.rows_for("A*").len(), 2);
        assert_eq!(results.rows_for("incremental").len(), 2);
    }

    #[test]
    fn incremental_is_conflict_free_and_beats_greedy_when_dense() {
        let results = run(&quick_config());
        for row in results.rows_for("incremental") {
            assert!(row.conflict_free, "{row:?}");
        }
        let incremental = results.densest_success("incremental").unwrap();
        let greedy = results.densest_success("greedy").unwrap();
        assert!(
            incremental >= 2.0 * greedy,
            "incremental {incremental} vs greedy {greedy}"
        );
        assert!(incremental > 0.85, "incremental routed only {incremental}");
    }

    #[test]
    fn astar_cap_zero_disables_astar_rows() {
        let config = Config {
            astar_cap: 0,
            ..quick_config()
        };
        let results = run(&config);
        assert_eq!(results.rows.len(), 4);
        assert!(results.rows_for("A*").is_empty());
    }

    #[test]
    fn plan_reuse_leaves_every_row_bit_identical() {
        let cold = run(&quick_config());
        let warm = run(&Config {
            reuse_plans: true,
            ..quick_config()
        });
        assert_eq!(cold.rows.len(), warm.rows.len());
        for (c, w) in cold.rows.iter().zip(&warm.rows) {
            // Wall-clock columns are the only thing the cache may change.
            let mut w = w.clone();
            w.plan_wall_ms = c.plan_wall_ms;
            w.moves_per_second = c.moves_per_second;
            assert_eq!(*c, w);
        }
    }

    #[test]
    fn table_shape() {
        let results = run(&quick_config());
        let table = results.to_table();
        assert_eq!(table.columns.len(), 9);
        assert_eq!(table.row_count(), 6);
    }
}
