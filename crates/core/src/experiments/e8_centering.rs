//! E8 — design centering (the dashed loop of Fig. 1): simulation buys yield.
//!
//! Runs the design-centering optimisation for a sensor-offset-like
//! performance figure starting from several initial mis-centrings, and
//! reports the yield trajectory — the quantitative content of the "design
//! centering" arrow in the paper's electronic design flow.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use labchip_designflow::centering::DesignCentering;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the centering experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Spec half-width in units of the process sigma.
    pub spec_halfwidth_sigmas: f64,
    /// Initial mis-centrings (in sigmas) to sweep.
    pub initial_offsets: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            spec_halfwidth_sigmas: 3.0,
            initial_offsets: vec![0.0, 1.0, 2.0, 3.0],
            seed: 21,
        }
    }
}

/// One row of the centering experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CenteringRow {
    /// Initial mis-centring in sigmas.
    pub initial_offset: f64,
    /// Yield before centering.
    pub initial_yield: f64,
    /// Yield after the centering loop.
    pub final_yield: f64,
    /// Number of centering iterations run.
    pub iterations: usize,
    /// Final nominal (should approach zero).
    pub final_nominal: f64,
}

/// Result of the centering experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per initial offset.
    pub rows: Vec<CenteringRow>,
}

/// The centering experiment as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct CenteringScenario;

impl Scenario for CenteringScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E8"
    }

    fn describe(&self) -> &'static str {
        "Design centering: yield recovery from initial mis-centrings"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let centering = DesignCentering::reference(config.spec_halfwidth_sigmas)
        .expect("positive half-width is valid");
    let rows = config
        .initial_offsets
        .iter()
        .map(|&offset| {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ offset.to_bits());
            let outcome = centering.run(offset, &mut rng);
            let row = CenteringRow {
                initial_offset: offset,
                initial_yield: outcome.initial_yield(),
                final_yield: outcome.final_yield,
                iterations: outcome.iterations.len(),
                final_nominal: outcome.final_nominal,
            };
            ctx.emit_row(format!(
                "offset {offset:.1} sigma: yield {:.1}% -> {:.1}%",
                row.initial_yield * 100.0,
                row.final_yield * 100.0
            ));
            row
        })
        .collect();
    Results { rows }
}

impl Results {
    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E8",
            "Design centering: yield recovery of mis-centred designs (Fig. 1 dashed loop)",
            vec![
                "initial offset [sigma]".into(),
                "initial yield".into(),
                "final yield".into(),
                "iterations".into(),
                "final nominal".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.1}", r.initial_offset),
                        format!("{:.1}%", r.initial_yield * 100.0),
                        format!("{:.1}%", r.final_yield * 100.0),
                        r.iterations.to_string(),
                        format!("{:.3}", r.final_nominal),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E8"))
    }

    #[test]
    fn centering_recovers_yield_for_every_offset() {
        let results = run(&Config::default());
        for row in &results.rows {
            assert!(
                row.final_yield > 0.95,
                "offset {}: final yield {}",
                row.initial_offset,
                row.final_yield
            );
            assert!(row.final_nominal.abs() < 0.2);
        }
    }

    #[test]
    fn larger_mis_centrings_start_with_lower_yield() {
        let results = run(&Config::default());
        for pair in results.rows.windows(2) {
            assert!(pair[1].initial_yield <= pair[0].initial_yield + 0.02);
        }
        // A 3-sigma mis-centring starts near 50 % yield.
        let worst = results.rows.last().unwrap();
        assert!(worst.initial_yield < 0.65);
    }

    #[test]
    fn table_shape() {
        let config = Config::default();
        let table = run(&config).to_table();
        assert_eq!(table.row_count(), config.initial_offsets.len());
        assert_eq!(table.columns.len(), 5);
    }
}
