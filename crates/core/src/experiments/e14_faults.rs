//! E14 — fault injection: kill-point sweep with replay and resume oracles.
//!
//! The event-sourced pipeline makes a hard claim: kill the chip controller
//! after *any* journaled event and nothing is lost — the journal prefix
//! replays to exactly the checkpointed state, and
//! [`ProtocolRunner::resume`](crate::workload::ProtocolRunner::resume)
//! finishes the assay to a final [`ChipState`]
//! bit-identical to an uninterrupted run. This scenario turns that claim
//! into a measured sweep:
//!
//! 1. run the canned cycle once with a journal attached — the *baseline*
//!    (final state hash, total event count);
//! 2. draw a seeded, stratified [`FaultPlan::sweep`] of kill points over
//!    `1..=total_events`, so deaths land inside load batches, mid-route,
//!    mid-sense and mid-recovery-round;
//! 3. for every kill point, run with the fault armed; on interruption
//!    verify (a) the journal prefix at the checkpoint offset replays to
//!    the checkpoint snapshot, (b) the checkpoint survives a JSON round
//!    trip, (c) resume reaches the baseline state hash.
//!
//! The table reports kill-point coverage per interrupted phase, the resume
//! success rate and the replay-divergence count — the whole sweep is a
//! tripwire, so **any** divergence is a red result (CI asserts zero).

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use crate::workload::{BatchDriver, Checkpoint, Protocol, RecoveryPolicy, WorkloadConfig};
use labchip_manipulation::journal::{replay, FaultPlan};
use labchip_manipulation::sharding::ShardConfig;
use labchip_manipulation::state::ChipState;
use labchip_units::{GridDims, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the fault-injection sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particles loaded per cycle.
    pub particles: usize,
    /// Kill points drawn from the baseline run's event count.
    pub kill_points: usize,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Scale applied to every sensor noise term (noisy by default, so the
    /// sweep covers the recovery loop too).
    pub noise_scale: f64,
    /// Closed-loop recovery policy.
    pub recovery: RecoveryPolicy,
    /// Fluidic handling time per batch load.
    pub load_time: Seconds,
    /// Fluidic handling time per batch flush.
    pub flush_time: Seconds,
    /// Shard tile side of the incremental router.
    pub shard_side: u32,
    /// Steps per planning window.
    pub window: u32,
    /// Worker threads for the sharded planner (0 = all cores).
    pub threads: usize,
    /// Base RNG seed (batch placement, sensor noise and the kill-point
    /// draw).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 48,
            particles: 60,
            kill_points: 50,
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 2,
            noise_scale: 8.0,
            recovery: RecoveryPolicy::date05_reference(),
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            shard_side: 32,
            window: 8,
            threads: 1,
            seed: 2005,
        }
    }
}

/// Kill-point coverage of one assay phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Name of the phase the fault interrupted.
    pub phase: String,
    /// Kill points that landed in this phase.
    pub kills: usize,
    /// Of those, resumes that reached the baseline state hash.
    pub resumed_ok: usize,
}

/// Result of the fault-injection sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Events the uninterrupted baseline run journaled.
    pub total_events: usize,
    /// Kill points actually swept.
    pub kill_points: usize,
    /// Sweep runs the fault interrupted.
    pub interrupted: usize,
    /// Sweep runs that completed before the kill point could fire (a kill
    /// on the final events of a run has no later poll point to abort at).
    pub ran_to_completion: usize,
    /// Interrupted runs whose resume reached the baseline state hash.
    pub resume_successes: usize,
    /// Replay/resume oracle violations (prefix replay mismatch, resume
    /// hash mismatch, or a completed fault run diverging from baseline) —
    /// **must be zero**.
    pub replay_divergences: usize,
    /// Checkpoints that failed their JSON round trip — must be zero.
    pub checkpoint_roundtrip_failures: usize,
    /// Distinct phases the sweep killed inside.
    pub phases_covered: usize,
    /// Per-phase coverage, in first-kill order.
    pub coverage: Vec<CoverageRow>,
}

impl Results {
    /// Fraction of interrupted runs that resumed to the baseline hash.
    pub fn resume_success_rate(&self) -> f64 {
        if self.interrupted == 0 {
            1.0
        } else {
            self.resume_successes as f64 / self.interrupted as f64
        }
    }

    /// Renders the sweep as a report table (coverage rows plus totals).
    pub fn to_table(&self) -> ExperimentTable {
        let mut rows: Vec<Vec<String>> = self
            .coverage
            .iter()
            .map(|row| {
                vec![
                    row.phase.clone(),
                    row.kills.to_string(),
                    row.resumed_ok.to_string(),
                    "-".into(),
                    format!("{}/{} resumed to baseline hash", row.resumed_ok, row.kills),
                ]
            })
            .collect();
        rows.push(vec![
            "total".into(),
            self.interrupted.to_string(),
            self.resume_successes.to_string(),
            self.replay_divergences.to_string(),
            format!(
                "{} kill points over {} events, {} phases covered, resume rate {:.2}, {} completed uninterrupted",
                self.kill_points,
                self.total_events,
                self.phases_covered,
                self.resume_success_rate(),
                self.ran_to_completion
            ),
        ]);
        ExperimentTable::new(
            "E14",
            "Fault injection: kill-point sweep with replay and resume equivalence",
            vec![
                "killed phase".into(),
                "kills".into(),
                "resumed ok".into(),
                "divergences".into(),
                "detail".into(),
            ],
            rows,
        )
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let workload = WorkloadConfig {
        array_side: config.array_side,
        shards: ShardConfig {
            shard_side: config.shard_side,
            window: config.window,
            ..ShardConfig::default()
        },
        min_separation: config.min_separation,
        step_period: config.step_period,
        detection_frames: config.detection_frames,
        noise_scale: config.noise_scale,
        recovery: config.recovery,
        load_time: config.load_time,
        flush_time: config.flush_time,
        reuse_plans: false,
        live_planning: false,
        seed: config.seed,
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("thread pool construction is infallible");
    let driver = BatchDriver::new(workload);
    let dims = GridDims::square(driver.config().array_side);
    let sep = driver.config().min_separation.max(1);
    let protocol = Protocol::canned_cycle(dims, sep, config.particles);

    // Baseline: the uninterrupted journaled run every kill point must
    // converge back to.
    let (baseline, baseline_journal) = pool.install(|| driver.runner().run_journaled(&protocol, 0));
    let baseline_hash = baseline.state.state_hash();
    let total_events = baseline_journal.len();
    ctx.emit_row(format!(
        "baseline: {} events journaled, final state hash {baseline_hash:#018x}",
        total_events
    ));

    let sweep = FaultPlan::sweep(config.seed, config.kill_points, total_events as u64);
    let mut interrupted = 0usize;
    let mut ran_to_completion = 0usize;
    let mut resume_successes = 0usize;
    let mut replay_divergences = 0usize;
    let mut checkpoint_roundtrip_failures = 0usize;
    // Phase name -> (kills, resumed_ok), insertion-ordered by first kill.
    let mut order: Vec<String> = Vec::new();
    let mut coverage: BTreeMap<String, (usize, usize)> = BTreeMap::new();

    for fault in &sweep {
        match pool.install(|| driver.runner().run_with_fault(&protocol, 0, *fault)) {
            Ok((outcome, _journal)) => {
                ran_to_completion += 1;
                if outcome.state.state_hash() != baseline_hash {
                    replay_divergences += 1;
                    ctx.emit_row(format!(
                        "DIVERGENCE: uninterrupted fault run at kill point {} left a different state",
                        fault.kill_after_events
                    ));
                }
            }
            Err(run) => {
                interrupted += 1;
                let phase = run.error.phase().to_owned();
                if !coverage.contains_key(&phase) {
                    order.push(phase.clone());
                }
                let entry = coverage.entry(phase.clone()).or_insert((0, 0));
                entry.0 += 1;

                // Oracle (a): the journal prefix at the checkpoint offset
                // replays to the checkpoint snapshot.
                let prefix = run.journal.truncated(run.checkpoint.journal_offset);
                let snapshot_hash =
                    ChipState::from_snapshot(run.checkpoint.state.clone()).state_hash();
                match replay(&prefix, dims, sep) {
                    Ok(state) if state.state_hash() == snapshot_hash => {}
                    Ok(_) => {
                        replay_divergences += 1;
                        ctx.emit_row(format!(
                            "DIVERGENCE: prefix replay hash mismatch at kill point {}",
                            fault.kill_after_events
                        ));
                    }
                    Err(err) => {
                        replay_divergences += 1;
                        ctx.emit_row(format!(
                            "DIVERGENCE: prefix replay failed at kill point {}: {err}",
                            fault.kill_after_events
                        ));
                    }
                }

                // Oracle (b): the checkpoint survives its JSON round trip.
                let checkpoint = match Checkpoint::from_json(&run.checkpoint.to_json()) {
                    Ok(restored) if restored == run.checkpoint => restored,
                    _ => {
                        checkpoint_roundtrip_failures += 1;
                        run.checkpoint.clone()
                    }
                };

                // Oracle (c): resume reaches the baseline state hash.
                let resumed = pool.install(|| driver.runner().resume(&checkpoint));
                if resumed.state.state_hash() == baseline_hash {
                    resume_successes += 1;
                    entry.1 += 1;
                } else {
                    replay_divergences += 1;
                    ctx.emit_row(format!(
                        "DIVERGENCE: resume from kill point {} (phase {phase}) missed the baseline hash",
                        fault.kill_after_events
                    ));
                }
            }
        }
    }

    let coverage: Vec<CoverageRow> = order
        .into_iter()
        .map(|phase| {
            let (kills, resumed_ok) = coverage[&phase];
            CoverageRow {
                phase,
                kills,
                resumed_ok,
            }
        })
        .collect();
    let results = Results {
        total_events,
        kill_points: sweep.len(),
        interrupted,
        ran_to_completion,
        resume_successes,
        replay_divergences,
        checkpoint_roundtrip_failures,
        phases_covered: coverage.len(),
        coverage,
    };
    for row in &results.coverage {
        ctx.emit_row(format!(
            "phase {}: {} kills, {} resumed to baseline",
            row.phase, row.kills, row.resumed_ok
        ));
    }
    ctx.emit_row(format!(
        "{} kill points: {} interrupted, {} completed, resume rate {:.2}, {} divergences",
        results.kill_points,
        results.interrupted,
        results.ran_to_completion,
        results.resume_success_rate(),
        results.replay_divergences
    ));
    results
}

/// The fault-injection sweep as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultsScenario;

impl Scenario for FaultsScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E14"
    }

    fn describe(&self) -> &'static str {
        "Fault injection: kill-point sweep with replay and resume equivalence"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E14"))
    }

    fn quick_config() -> Config {
        Config {
            array_side: 32,
            particles: 20,
            kill_points: 6,
            ..Config::default()
        }
    }

    #[test]
    fn sweep_interrupts_resumes_and_never_diverges() {
        let results = run(&quick_config());
        assert_eq!(results.kill_points, 6);
        assert!(results.total_events > 0);
        assert_eq!(results.interrupted + results.ran_to_completion, 6);
        assert!(results.interrupted >= 4, "{results:?}");
        assert_eq!(results.resume_successes, results.interrupted);
        assert_eq!(results.replay_divergences, 0, "{results:?}");
        assert_eq!(results.checkpoint_roundtrip_failures, 0);
        assert!(results.phases_covered >= 1);
        assert_eq!(results.resume_success_rate(), 1.0);
    }

    #[test]
    fn noisy_recovery_path_is_killable_and_recoverable_too() {
        // The default noisy config drives the closed loop; a denser sweep
        // must still resume cleanly from kills inside it.
        let results = run(&Config {
            kill_points: 10,
            ..quick_config()
        });
        assert_eq!(results.replay_divergences, 0, "{results:?}");
        assert_eq!(results.resume_successes, results.interrupted);
        // Kill points span more than one phase of the canned cycle.
        assert!(results.phases_covered >= 2, "{results:?}");
    }

    #[test]
    fn table_has_coverage_rows_plus_totals() {
        let results = run(&quick_config());
        let table = results.to_table();
        assert_eq!(table.columns.len(), 5);
        assert_eq!(table.row_count(), results.coverage.len() + 1);
        assert!(table.to_string().contains("resume rate"));
    }
}
