//! E3 — motion timescales: "cells move … at 10–100 µm/s … plenty of time to
//! program the actuator array, scan sensor output etc."
//!
//! A single cell is dragged across the array by stepping its cage one
//! electrode at a time at a commanded speed. The experiment reports, per
//! commanded speed: whether the cell kept up (tracking success), the achieved
//! speed, and how the cage-step period compares with the time the electronics
//! needs to reprogram the array and scan the sensors — the slack the paper
//! proposes to spend on quality.

use crate::biochip::Biochip;
use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use crate::simulator::{ChipSimulator, SimulationConfig};
use labchip_array::addressing::ProgrammingInterface;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridCoord, GridDims, MetersPerSecond, Seconds};
use serde::{Deserialize, Serialize};

/// Configuration of the motion experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Commanded cell speeds in micrometres per second.
    pub speeds_um_s: Vec<f64>,
    /// Number of cage steps to command.
    pub travel_steps: u32,
    /// Side of the (small) test array.
    pub array_side: u32,
    /// Integration time step.
    pub dt: Seconds,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the particle loop (0 = all cores). The experiment
    /// steps a single cell, so the default pins one worker and avoids
    /// spawn overhead; population-scale assays raise it.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            speeds_um_s: vec![10.0, 25.0, 50.0, 100.0, 200.0, 5_000.0],
            travel_steps: 6,
            array_side: 16,
            dt: Seconds::from_millis(1.0),
            seed: 7,
            threads: 1,
        }
    }
}

/// One row of the motion experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionRow {
    /// Commanded speed, µm/s.
    pub commanded_um_s: f64,
    /// Cage-step period, milliseconds.
    pub step_period_ms: f64,
    /// Achieved speed of the cell, µm/s (distance travelled / elapsed time).
    pub achieved_um_s: f64,
    /// Final lateral distance from the last cage centre, µm.
    pub final_error_um: f64,
    /// Whether the cell was still trapped at the end (error below one pitch).
    pub tracked: bool,
    /// Electronics busy time per step (programming + one sensor scan), ms.
    pub electronics_ms: f64,
    /// Slack ratio: step period over electronics busy time.
    pub slack_ratio: f64,
}

/// Result of the motion experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per commanded speed.
    pub rows: Vec<MotionRow>,
}

fn run_speed(config: &Config, speed_um_s: f64, ctx: &ScenarioContext) -> MotionRow {
    let mut chip = Biochip::small_reference(config.array_side);
    let start = GridCoord::new(2, config.array_side / 2);
    chip.program_single_cage(start)
        .expect("start electrode exists");
    let pitch = chip.array().pitch();
    let pitch_m = pitch.get();

    // Electronics timing uses the *full-size* paper chip, which is the
    // honest comparison: the mechanics does not care how big the array is,
    // the electronics does.
    let paper_dims = GridDims::new(320, 320);
    let programming = ProgrammingInterface::date05_reference().full_frame_time(paper_dims);
    let scan = ScanTiming::date05_reference().frame_time(paper_dims);
    let electronics = programming + scan;

    let speed = MetersPerSecond::from_micrometers_per_second(speed_um_s);
    let step_period = pitch / speed;

    let mut sim = ChipSimulator::new(
        chip,
        SimulationConfig {
            dt: config.dt,
            brownian: true,
            seed: config.seed,
        },
    )
    .with_threads(config.threads);
    // Long drags report liveness through the scenario progress sink.
    sim.set_step_observer(ctx.step_observer());
    let idx = sim
        .add_reference_particle_at(start)
        .expect("start site is on the array");

    // Let the cell settle into the cage before moving.
    sim.run_for(Seconds::new(0.5));

    let mut cage = start;
    for step in 0..config.travel_steps {
        cage = GridCoord::new(start.x + step + 1, start.y);
        sim.chip_mut()
            .program_single_cage(cage)
            .expect("target electrode exists");
        sim.refresh_field();
        sim.run_for(step_period);
    }

    let final_error = sim.lateral_distance_from(idx, cage);
    let travel_time = step_period.get() * config.travel_steps as f64;
    let start_center = sim
        .chip()
        .array()
        .to_electrode_plane()
        .electrode_center(start);
    let travelled = (sim.particles()[idx].state.position.xy()
        - labchip_units::Vec2::new(start_center.x, start_center.y))
    .norm();
    let achieved = travelled / travel_time;

    MotionRow {
        commanded_um_s: speed_um_s,
        step_period_ms: step_period.as_millis(),
        achieved_um_s: achieved * 1e6,
        final_error_um: final_error * 1e6,
        tracked: final_error < pitch_m,
        electronics_ms: electronics.as_millis(),
        slack_ratio: step_period.get() / electronics.get(),
    }
}

/// The motion experiment as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct MotionScenario;

impl Scenario for MotionScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E3"
    }

    fn describe(&self) -> &'static str {
        "Motion timescales: cage stepping vs electronics time budget"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let mut rows = Vec::with_capacity(config.speeds_um_s.len());
    for &speed in &config.speeds_um_s {
        let row = run_speed(config, speed, ctx);
        ctx.emit_row(format!(
            "{speed:.0} um/s commanded: achieved {:.1} um/s, tracked = {}",
            row.achieved_um_s, row.tracked
        ));
        rows.push(row);
    }
    Results { rows }
}

impl Results {
    /// Highest commanded speed at which the cell still tracked its cage.
    pub fn max_tracked_speed(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.tracked)
            .map(|r| r.commanded_um_s)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E3",
            "Motion timescales: cage stepping vs electronics time budget",
            vec![
                "commanded [um/s]".into(),
                "step period [ms]".into(),
                "achieved [um/s]".into(),
                "final error [um]".into(),
                "tracked".into(),
                "electronics [ms]".into(),
                "slack ratio".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.0}", r.commanded_um_s),
                        format!("{:.0}", r.step_period_ms),
                        format!("{:.1}", r.achieved_um_s),
                        format!("{:.1}", r.final_error_um),
                        if r.tracked { "yes".into() } else { "no".into() },
                        format!("{:.2}", r.electronics_ms),
                        format!("{:.0}", r.slack_ratio),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E3"))
    }

    fn quick_config() -> Config {
        Config {
            speeds_um_s: vec![25.0, 50.0, 5_000.0],
            travel_steps: 4,
            ..Config::default()
        }
    }

    #[test]
    fn cells_track_at_paper_speeds_but_not_arbitrarily_fast() {
        let results = run(&quick_config());
        let slow = &results.rows[0];
        let medium = &results.rows[1];
        let fast = &results.rows[2];
        // C4: 10-100 µm/s is the working range.
        assert!(slow.tracked, "cell must track at 25 um/s");
        assert!(medium.tracked, "cell must track at 50 um/s");
        // At 5 mm/s the Stokes drag needed to keep up (~850 pN) exceeds the
        // cage's holding force and the cell is left behind.
        assert!(!fast.tracked, "tracking should fail at 5 mm/s");
        assert_eq!(results.max_tracked_speed().unwrap(), 50.0);
    }

    #[test]
    fn electronics_slack_is_enormous_at_working_speeds() {
        let results = run(&quick_config());
        let medium = &results.rows[1];
        // C4: the electronics needs a few ms per step, the mechanics takes
        // hundreds — a slack ratio of tens to hundreds.
        assert!(medium.slack_ratio > 10.0, "slack = {}", medium.slack_ratio);
        assert!(medium.electronics_ms < 20.0);
        assert!(medium.step_period_ms > 100.0);
    }

    #[test]
    fn achieved_speed_is_close_to_commanded_when_tracking() {
        let results = run(&quick_config());
        let medium = &results.rows[1];
        assert!(
            (medium.achieved_um_s / medium.commanded_um_s) > 0.6,
            "achieved {} um/s at commanded {}",
            medium.achieved_um_s,
            medium.commanded_um_s
        );
    }

    #[test]
    fn table_shape() {
        let table = run(&quick_config()).to_table();
        assert_eq!(table.row_count(), 3);
        assert_eq!(table.columns.len(), 7);
    }
}
