//! E1 — array scale: ">100,000 electrodes … tens of thousands of DEP cages".
//!
//! Sweeps the array size from a small test chip up to (and beyond) the
//! paper's 320×320 device and reports, for each size: the electrode count,
//! the number of simultaneous cages under the standard lattice patterns, the
//! configuration memory, the full-frame programming time and the silicon die
//! cost.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use labchip_array::addressing::ProgrammingInterface;
use labchip_array::pattern::{CagePattern, PatternKind};
use labchip_array::pixel::PixelCell;
use labchip_array::technology::TechnologyNode;
use labchip_physics::field::superposition::SuperpositionField;
use labchip_physics::field::{ElectrodePhase, ElectrodePlane, FieldModel};
use labchip_units::{GridCoord, GridDims, Meters, Vec3};
use serde::{Deserialize, Serialize};

/// Configuration of the scale sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array sides to sweep (square arrays).
    pub sides: Vec<u32>,
    /// Cage-lattice period for the dense pattern.
    pub dense_period: u32,
    /// Cage-lattice period for the moving-cage pattern.
    pub sparse_period: u32,
    /// Technology node used for cost figures.
    pub technology: TechnologyNode,
    /// Electrode pitch.
    pub pitch: Meters,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sides: vec![64, 128, 256, 320, 512],
            dense_period: 2,
            sparse_period: 3,
            technology: TechnologyNode::cmos_350nm(),
            pitch: Meters::from_micrometers(20.0),
        }
    }
}

/// One row of the scale sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Array side (electrodes).
    pub side: u32,
    /// Total electrodes.
    pub electrodes: u64,
    /// Cages under the dense lattice.
    pub dense_cages: usize,
    /// Cages under the sparse (moving) lattice.
    pub sparse_cages: usize,
    /// Configuration memory in bits.
    pub memory_bits: u64,
    /// Full-frame programming time in milliseconds.
    pub frame_program_ms: f64,
    /// Die cost in euros (active area, excluding mask NRE).
    pub die_cost_euros: f64,
    /// |E| probed 1.2 pitches above a central cage on the full-size plane,
    /// in kV/m. Constant across sides (the cage is local physics); the point
    /// of the column is that the probe stays cheap at every scale, because
    /// field construction is one flat voltage-buffer sweep and evaluation is
    /// cutoff-bounded.
    pub cage_field_kv_m: f64,
}

/// Result of the scale sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per array size.
    pub rows: Vec<ScaleRow>,
}

/// |E| (kV/m) above a single cage programmed at the centre of a full-size
/// plane — exercises whole-array field construction at every swept scale.
fn cage_field_probe(dims: GridDims, config: &Config) -> f64 {
    let mut plane = ElectrodePlane::new(
        dims,
        config.pitch,
        config.technology.supply_voltage,
        Meters::from_micrometers(80.0),
    );
    let cage = GridCoord::new(dims.cols / 2, dims.rows / 2);
    plane.set_phase(cage, ElectrodePhase::CounterPhase);
    let field = SuperpositionField::new(plane);
    let center = field.plane().electrode_center(cage);
    let probe = Vec3::new(center.x, center.y, 1.2 * config.pitch.get());
    field.e_squared(probe).sqrt() * 1e-3
}

/// The scale sweep as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScaleScenario;

impl Scenario for ScaleScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E1"
    }

    fn describe(&self) -> &'static str {
        "Array scale: electrodes, simultaneous DEP cages, memory and programming time"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let iface = ProgrammingInterface::date05_reference();
    let mut rows = Vec::with_capacity(config.sides.len());
    for &side in &config.sides {
        let dims = GridDims::square(side);
        let dense = CagePattern::new(
            dims,
            PatternKind::Lattice {
                period: config.dense_period,
                offset: GridCoord::new(1, 1),
            },
        )
        .expect("lattice period >= 2 always fits");
        let sparse = CagePattern::new(
            dims,
            PatternKind::Lattice {
                period: config.sparse_period,
                offset: GridCoord::new(1, 1),
            },
        )
        .expect("lattice period >= 2 always fits");
        let row = ScaleRow {
            side,
            electrodes: dims.count(),
            dense_cages: dense.cage_count(),
            sparse_cages: sparse.cage_count(),
            memory_bits: dims.count() * PixelCell::MEMORY_BITS as u64,
            frame_program_ms: iface.full_frame_time(dims).as_millis(),
            die_cost_euros: config.technology.die_cost(dims.count(), config.pitch).get(),
            cage_field_kv_m: cage_field_probe(dims, config),
        };
        ctx.emit_row(format!(
            "{side}x{side}: {} electrodes, {} dense cages",
            row.electrodes, row.dense_cages
        ));
        rows.push(row);
    }
    Results { rows }
}

impl Results {
    /// The row matching the paper's 320×320 chip, if it was swept.
    pub fn paper_scale_row(&self) -> Option<&ScaleRow> {
        self.rows.iter().find(|r| r.side == 320)
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E1",
            "Array scale: electrodes, simultaneous DEP cages, memory and programming time",
            vec![
                "array".into(),
                "electrodes".into(),
                "cages (dense)".into(),
                "cages (moving)".into(),
                "memory [bit]".into(),
                "frame program [ms]".into(),
                "die cost [EUR]".into(),
                "cage |E| [kV/m]".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{0}x{0}", r.side),
                        r.electrodes.to_string(),
                        r.dense_cages.to_string(),
                        r.sparse_cages.to_string(),
                        r.memory_bits.to_string(),
                        format!("{:.2}", r.frame_program_ms),
                        format!("{:.0}", r.die_cost_euros),
                        format!("{:.1}", r.cage_field_kv_m),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E1"))
    }

    #[test]
    fn paper_scale_claims_hold() {
        let results = run(&Config::default());
        let row = results
            .paper_scale_row()
            .expect("320x320 is swept by default");
        // C1: more than 100,000 electrodes.
        assert!(row.electrodes > 100_000);
        // C1: tens of thousands of simultaneous cages.
        assert!(row.dense_cages > 20_000);
        assert!(row.sparse_cages > 10_000);
        // §2: programming the whole array is a sub-millisecond affair.
        assert!(row.frame_program_ms < 1.5);
        // The configuration memory is a modest few hundred kilobits.
        assert!(row.memory_bits < 1_000_000);
        // The cage field is tens-to-hundreds of kV/m and costs the same to
        // probe at 100k electrodes as at 4k.
        assert!(row.cage_field_kv_m > 10.0 && row.cage_field_kv_m < 1_000.0);
    }

    #[test]
    fn counts_scale_quadratically_with_side() {
        let results = run(&Config::default());
        let r64 = &results.rows[0];
        let r128 = &results.rows[1];
        assert_eq!(r64.side, 64);
        assert_eq!(r128.side, 128);
        assert_eq!(r128.electrodes, 4 * r64.electrodes);
        // The cage is local physics: the probe must not depend on array size.
        let rel = (r128.cage_field_kv_m - r64.cage_field_kv_m).abs() / r64.cage_field_kv_m;
        assert!(rel < 1e-9, "cage field drifted with array size: {rel}");
        assert!(r128.dense_cages > 3 * r64.dense_cages);
        assert!(r128.die_cost_euros > 3.0 * r64.die_cost_euros);
    }

    #[test]
    fn table_has_one_row_per_side() {
        let config = Config::default();
        let table = run(&config).to_table();
        assert_eq!(table.row_count(), config.sides.len());
        assert_eq!(table.columns.len(), 8);
        assert!(table.to_string().contains("320x320"));
    }
}
