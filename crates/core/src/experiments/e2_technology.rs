//! E2 — technology/voltage sweep: "older generation technologies may best
//! fit your purpose".
//!
//! For every CMOS node of the ladder the experiment builds a small chip at
//! that node's supply voltage (optionally using thick-oxide I/O drivers),
//! programs one cage, and measures the quantities the paper's argument rests
//! on: the DEP holding force (∝ V²), the trap stiffness, whether a viable
//! cell levitates at all, plus the mask-set cost of the node. The expected
//! shape: force falls steeply as the node advances while the NRE cost rises.

use crate::biochip::{Biochip, BiochipBuilder};
use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use labchip_array::technology::TechnologyNode;
use labchip_units::{GridCoord, GridDims};
use serde::{Deserialize, Serialize};

/// Configuration of the technology sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Nodes to sweep.
    pub nodes: Vec<TechnologyNode>,
    /// Whether thick-oxide I/O drivers are allowed.
    pub use_io_drivers: bool,
    /// Side of the (small) test array used for the field analysis.
    pub array_side: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            nodes: TechnologyNode::ladder(),
            use_io_drivers: false,
            array_side: 11,
        }
    }
}

/// One row of the technology sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyRow {
    /// Node name.
    pub node: String,
    /// Drive voltage used.
    pub drive_voltage: f64,
    /// Electrode pitch in micrometres.
    pub pitch_um: f64,
    /// Lateral holding force of the cage, piconewtons.
    pub holding_force_pn: f64,
    /// Lateral trap stiffness, N/m.
    pub stiffness: f64,
    /// Whether a viable cell is stably levitated.
    pub levitates: bool,
    /// Levitation height in micrometres (0 when not levitating).
    pub levitation_height_um: f64,
    /// V² figure of merit relative to the 0.35 µm node.
    pub dep_figure_of_merit: f64,
    /// Mask-set cost in kilo-euros.
    pub mask_set_cost_keur: f64,
}

/// Result of the technology sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per node, in sweep order (oldest first).
    pub rows: Vec<TechnologyRow>,
}

fn analyze_node(node: &TechnologyNode, config: &Config) -> TechnologyRow {
    let mut chip: Biochip = BiochipBuilder::new()
        .dims(GridDims::square(config.array_side))
        .technology(node.clone())
        .pitch(node.electrode_pitch_for_cells(labchip_units::Meters::from_micrometers(25.0)))
        .io_drivers(config.use_io_drivers)
        .build()
        .expect("sweep configurations are valid");
    let center = GridCoord::new(config.array_side / 2, config.array_side / 2);
    chip.program_single_cage(center)
        .expect("centre electrode exists");
    let summary = chip.cage_summary(center).expect("cage was just programmed");
    TechnologyRow {
        node: node.name.clone(),
        drive_voltage: chip.drive_voltage().get(),
        pitch_um: chip.array().pitch().as_micrometers(),
        holding_force_pn: summary.holding_force.as_piconewtons(),
        stiffness: summary.lateral_stiffness,
        levitates: summary.levitation_height.is_some(),
        levitation_height_um: summary
            .levitation_height
            .map(|h| h.as_micrometers())
            .unwrap_or(0.0),
        dep_figure_of_merit: node.dep_figure_of_merit(config.use_io_drivers),
        mask_set_cost_keur: node.mask_set_cost.as_kilo_euros(),
    }
}

/// The technology sweep as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct TechnologyScenario;

impl Scenario for TechnologyScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E2"
    }

    fn describe(&self) -> &'static str {
        "Technology sweep: DEP holding force vs supply voltage and node cost"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let mut rows = Vec::with_capacity(config.nodes.len());
    for node in &config.nodes {
        let row = analyze_node(node, config);
        ctx.emit_row(format!(
            "{}: {:.1} V, {:.1} pN holding force",
            row.node, row.drive_voltage, row.holding_force_pn
        ));
        rows.push(row);
    }
    Results { rows }
}

impl Results {
    /// Finds a row by (partial) node name.
    pub fn row_for(&self, name_fragment: &str) -> Option<&TechnologyRow> {
        self.rows.iter().find(|r| r.node.contains(name_fragment))
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E2",
            "Technology sweep: DEP holding force vs supply voltage and node cost",
            vec![
                "node".into(),
                "drive [V]".into(),
                "pitch [um]".into(),
                "holding force [pN]".into(),
                "stiffness [N/m]".into(),
                "levitates".into(),
                "levitation [um]".into(),
                "V^2 FoM".into(),
                "mask set [kEUR]".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.node.clone(),
                        format!("{:.1}", r.drive_voltage),
                        format!("{:.0}", r.pitch_um),
                        format!("{:.1}", r.holding_force_pn),
                        format!("{:.2e}", r.stiffness),
                        if r.levitates {
                            "yes".into()
                        } else {
                            "no".into()
                        },
                        format!("{:.1}", r.levitation_height_um),
                        format!("{:.2}", r.dep_figure_of_merit),
                        format!("{:.0}", r.mask_set_cost_keur),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E2"))
    }

    #[test]
    fn holding_force_falls_as_technology_advances() {
        // The paper's §2 claim: the actuation figure of merit is highest on
        // the oldest (highest-voltage) node and falls monotonically.
        let results = run(&Config::default());
        assert_eq!(results.rows.len(), 5);
        for pair in results.rows.windows(2) {
            assert!(
                pair[0].holding_force_pn >= pair[1].holding_force_pn * 0.99,
                "{} ({:.2} pN) should hold at least as strongly as {} ({:.2} pN)",
                pair[0].node,
                pair[0].holding_force_pn,
                pair[1].node,
                pair[1].holding_force_pn
            );
            assert!(pair[0].dep_figure_of_merit >= pair[1].dep_figure_of_merit);
            assert!(pair[0].mask_set_cost_keur <= pair[1].mask_set_cost_keur);
        }
    }

    #[test]
    fn old_nodes_levitate_cells_newest_struggles() {
        let results = run(&Config::default());
        let old = results.row_for("0.35").expect("0.35 um node swept");
        assert!(old.levitates, "the paper's node must levitate the cell");
        assert!(old.holding_force_pn > 1.0);
        // The 1.0 V, 90 nm node has (1/3.3)² ≈ 9 % of the reference force.
        let newest = results.row_for("90 nm").expect("90 nm node swept");
        assert!(newest.dep_figure_of_merit < 0.15);
    }

    #[test]
    fn io_drivers_recover_force_on_advanced_nodes() {
        let core_only = run(&Config::default());
        let with_io = run(&Config {
            use_io_drivers: true,
            ..Config::default()
        });
        let core_row = core_only.row_for("0.18").unwrap();
        let io_row = with_io.row_for("0.18").unwrap();
        assert!(io_row.drive_voltage > core_row.drive_voltage);
        assert!(io_row.holding_force_pn > core_row.holding_force_pn * 2.0);
    }

    #[test]
    fn table_shape() {
        let table = run(&Config::default()).to_table();
        assert_eq!(table.row_count(), 5);
        assert_eq!(table.columns.len(), 9);
    }
}
