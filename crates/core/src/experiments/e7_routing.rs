//! E7 — parallel manipulation at scale: "changing the pattern of voltages …
//! the DEP cages can be shifted, thus dragging along the trapped particles".
//!
//! At the scale the paper envisions — thousands of simultaneously trapped
//! cells — the software that shifts all those cages concurrently becomes the
//! bottleneck. The experiment sweeps the number of particles routed across a
//! fixed array and compares the proposed prioritized space-time A\* router
//! against the greedy baseline: success rate, makespan (in cage steps and in
//! wall-clock time at 50 µm/s), and total cage moves.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use labchip_manipulation::cage::ParticleId;
use labchip_manipulation::routing::{Router, RoutingProblem, RoutingRequest, RoutingStrategy};
use labchip_units::{GridCoord, GridDims, Seconds};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the routing experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particle counts to sweep.
    pub particle_counts: Vec<usize>,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period (for wall-clock figures).
    pub step_period: Seconds,
    /// RNG seed for start/goal placement.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 64,
            particle_counts: vec![10, 25, 50, 100, 140],
            min_separation: 2,
            step_period: Seconds::new(0.4),
            seed: 99,
        }
    }
}

/// One row of the routing sweep (one particle count, one strategy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingRow {
    /// Number of particles requested to move.
    pub particles: usize,
    /// Strategy name.
    pub strategy: String,
    /// Fraction of particles routed to their goals.
    pub success_rate: f64,
    /// Makespan in cage steps.
    pub makespan_steps: usize,
    /// Makespan in seconds at the configured step period.
    pub makespan_seconds: f64,
    /// Total cage moves.
    pub total_moves: usize,
    /// Completed particles per second of wall-clock time.
    pub particles_per_second: f64,
}

/// Result of the routing sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Rows, two per particle count (A*, then greedy).
    pub rows: Vec<RoutingRow>,
}

/// Generates a random but well-posed routing problem: particles start on a
/// lattice in the left third of the array (one electrode of headroom beyond
/// the minimum cage separation, as a real loading pattern would use) and are
/// sent across the array to slots in the right third. Start/goal pairing
/// preserves the scan order of the slots — the assignment a real scheduler
/// would make — while the random subset of occupied slots varies with the
/// seed.
pub fn generate_problem(config: &Config, particles: usize) -> RoutingProblem {
    let dims = GridDims::square(config.array_side);
    let spacing = config.min_separation.max(1) + 1;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ particles as u64);

    let lattice = |x_lo: u32, x_hi: u32| -> Vec<GridCoord> {
        let mut slots = Vec::new();
        let mut y = 1;
        while y < dims.rows - 1 {
            let mut x = x_lo;
            while x < x_hi {
                slots.push(GridCoord::new(x, y));
                x += spacing;
            }
            y += spacing;
        }
        slots
    };

    let all_starts = lattice(1, dims.cols / 3);
    let all_goals = lattice(2 * dims.cols / 3, dims.cols - 1);
    let count = particles.min(all_starts.len()).min(all_goals.len());

    // Choose a random subset of slots on each side, then pair them in scan
    // order so that trajectories do not have to overtake each other.
    let mut starts: Vec<GridCoord> = {
        let mut s = all_starts;
        s.shuffle(&mut rng);
        s.truncate(count);
        s.sort_unstable_by_key(|c| (c.y, c.x));
        s
    };
    let goals: Vec<GridCoord> = {
        let mut g = all_goals;
        g.shuffle(&mut rng);
        g.truncate(count);
        g.sort_unstable_by_key(|c| (c.y, c.x));
        g
    };
    starts.sort_unstable_by_key(|c| (c.y, c.x));

    let requests = starts
        .into_iter()
        .zip(goals)
        .enumerate()
        .map(|(i, (start, goal))| RoutingRequest {
            id: ParticleId(i as u64),
            start,
            goal,
        })
        .collect();

    let mut problem = RoutingProblem::new(dims, requests);
    problem.min_separation = config.min_separation;
    problem
}

fn run_one(config: &Config, particles: usize, strategy: RoutingStrategy) -> RoutingRow {
    let problem = generate_problem(config, particles);
    let requested = problem.requests.len();
    let outcome = Router::new(strategy)
        .solve(&problem)
        .expect("generated problems are always valid");
    let makespan_seconds = config.step_period.get() * outcome.makespan as f64;
    let completed = outcome.paths.len();
    RoutingRow {
        particles: requested,
        strategy: match strategy {
            RoutingStrategy::PrioritizedAStar => "space-time A*".into(),
            RoutingStrategy::Greedy => "greedy".into(),
            RoutingStrategy::Incremental => "incremental".into(),
        },
        success_rate: outcome.success_rate(requested),
        makespan_steps: outcome.makespan,
        makespan_seconds,
        total_moves: outcome.total_moves,
        particles_per_second: if makespan_seconds > 0.0 {
            completed as f64 / makespan_seconds
        } else {
            0.0
        },
    }
}

/// The routing sweep as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoutingScenario;

impl Scenario for RoutingScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E7"
    }

    fn describe(&self) -> &'static str {
        "Parallel cage routing: space-time A* vs greedy baseline"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let mut rows = Vec::with_capacity(2 * config.particle_counts.len());
    for &particles in &config.particle_counts {
        for strategy in [RoutingStrategy::PrioritizedAStar, RoutingStrategy::Greedy] {
            let row = run_one(config, particles, strategy);
            ctx.emit_row(format!(
                "{} particles via {}: {:.0}% routed in {} steps",
                row.particles,
                row.strategy,
                row.success_rate * 100.0,
                row.makespan_steps
            ));
            rows.push(row);
        }
    }
    Results { rows }
}

impl Results {
    /// Rows of one strategy.
    pub fn rows_for(&self, strategy_fragment: &str) -> Vec<&RoutingRow> {
        self.rows
            .iter()
            .filter(|r| r.strategy.contains(strategy_fragment))
            .collect()
    }

    /// Renders the result as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "E7",
            "Parallel cage routing: space-time A* vs greedy baseline",
            vec![
                "particles".into(),
                "strategy".into(),
                "success".into(),
                "makespan [steps]".into(),
                "makespan [s]".into(),
                "total moves".into(),
                "particles/s".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.particles.to_string(),
                        r.strategy.clone(),
                        format!("{:.0}%", r.success_rate * 100.0),
                        r.makespan_steps.to_string(),
                        format!("{:.0}", r.makespan_seconds),
                        r.total_moves.to_string(),
                        format!("{:.2}", r.particles_per_second),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E7"))
    }

    fn quick_config() -> Config {
        Config {
            array_side: 32,
            particle_counts: vec![8, 24],
            ..Config::default()
        }
    }

    #[test]
    fn generated_problems_are_valid_and_span_the_array() {
        let config = quick_config();
        let problem = generate_problem(&config, 24);
        assert!(problem.validate().is_ok());
        assert_eq!(problem.requests.len(), 24);
        for r in &problem.requests {
            assert!(r.start.x < problem.dims.cols / 3);
            assert!(r.goal.x >= 2 * problem.dims.cols / 3);
            assert!(problem.dims.contains(r.start) && problem.dims.contains(r.goal));
        }
    }

    #[test]
    fn astar_sustains_high_success_as_density_grows() {
        let results = run(&quick_config());
        let astar = results.rows_for("A*");
        assert_eq!(astar.len(), 2);
        for row in &astar {
            assert!(
                row.success_rate > 0.9,
                "A* success {} at {} particles",
                row.success_rate,
                row.particles
            );
        }
    }

    #[test]
    fn astar_beats_or_matches_greedy_everywhere() {
        let results = run(&quick_config());
        let astar = results.rows_for("A*");
        let greedy = results.rows_for("greedy");
        for (a, g) in astar.iter().zip(greedy.iter()) {
            assert_eq!(a.particles, g.particles);
            assert!(
                a.success_rate >= g.success_rate,
                "A* {} vs greedy {} at {} particles",
                a.success_rate,
                g.success_rate,
                a.particles
            );
        }
        // At the denser point the baseline visibly degrades relative to A*.
        let last_a = astar.last().unwrap();
        let last_g = greedy.last().unwrap();
        assert!(last_a.success_rate - last_g.success_rate > -1e-9);
    }

    #[test]
    fn throughput_grows_with_parallelism() {
        let results = run(&quick_config());
        let astar = results.rows_for("A*");
        assert!(astar[1].particles_per_second > astar[0].particles_per_second);
    }

    #[test]
    fn table_shape() {
        let config = quick_config();
        let table = run(&config).to_table();
        assert_eq!(table.row_count(), 2 * config.particle_counts.len());
        assert_eq!(table.columns.len(), 7);
    }
}
