//! E11 — sustained-throughput assay: repeated route→sense→flush cycles on
//! the full array.
//!
//! The paper's working regime is not one manipulation but a *stream* of
//! them: load a batch, sort it, read the sensors, flush, repeat. This
//! experiment drives the [`BatchDriver`] for a configurable number of
//! cycles and reports, per cycle: routing success, makespan, planner
//! wall-clock, planned moves per wall-clock second, the simulated chip time
//! by phase (fluidics / sensing / motion), and how much of the cage-step
//! period the array's row-rewrite budget actually used. The totals row
//! gives the sustained figures — including the planner headroom, the ratio
//! of chip time to planner time that shows the software keeps far ahead of
//! the hardware.

use crate::experiments::ExperimentTable;
use crate::scenario::{Scenario, ScenarioContext};
use crate::workload::{BatchDriver, CycleReport, RecoveryPolicy, WorkloadConfig};
use labchip_manipulation::sharding::ShardConfig;
use labchip_units::Seconds;
use serde::{Deserialize, Serialize};

/// Configuration of the sustained-throughput assay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particles loaded per cycle (clamped to the target-pattern capacity).
    pub particles_per_cycle: usize,
    /// Number of route→sense→flush cycles.
    pub cycles: usize,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Scale applied to every sensor noise term (1 = reference channel).
    pub noise_scale: f64,
    /// Fluidic handling time per batch load.
    pub load_time: Seconds,
    /// Fluidic handling time per batch flush.
    pub flush_time: Seconds,
    /// Shard tile side of the incremental router.
    pub shard_side: u32,
    /// Steps per planning window.
    pub window: u32,
    /// Worker threads for the sharded planner (0 = all cores).
    pub threads: usize,
    /// Reuse per-shard plans across cycles (bit-identical output either way).
    pub reuse_plans: bool,
    /// Base RNG seed for batch placement.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 128,
            particles_per_cycle: 500,
            cycles: 3,
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 16,
            noise_scale: 1.0,
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            shard_side: 32,
            window: 8,
            threads: 0,
            reuse_plans: false,
            seed: 2005,
        }
    }
}

/// One cycle of the assay, rendered for the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleRow {
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Particles loaded.
    pub particles: usize,
    /// Particles routed to their targets.
    pub routed: usize,
    /// Makespan in cage steps.
    pub makespan_steps: usize,
    /// Cage moves planned.
    pub total_moves: usize,
    /// Planner wall-clock, milliseconds.
    pub plan_wall_ms: f64,
    /// Planned moves per second of planner wall-clock.
    pub moves_per_second: f64,
    /// Cage-motion time at the step period, seconds.
    pub motion_s: f64,
    /// Detection-scan time, seconds.
    pub sensing_s: f64,
    /// Fluidic handling time, seconds.
    pub fluidics_s: f64,
    /// Fraction of the step period the busiest row rewrite used.
    pub programming_utilization: f64,
    /// Whether the executed plan passed the separation invariant.
    pub conflict_free: bool,
}

impl CycleRow {
    /// Renders a driver cycle report for the table; `step_period` is the
    /// budget the programming utilization is measured against.
    pub fn from_report(report: &CycleReport, step_period: Seconds) -> Self {
        let wall = report.planning.get();
        Self {
            cycle: report.cycle,
            particles: report.requested,
            routed: report.routed,
            makespan_steps: report.makespan_steps,
            total_moves: report.total_moves,
            plan_wall_ms: wall * 1e3,
            moves_per_second: if wall > 0.0 {
                report.total_moves as f64 / wall
            } else {
                0.0
            },
            motion_s: report.time.motion.get(),
            sensing_s: report.time.sensing.get(),
            fluidics_s: report.time.fluidics.get(),
            programming_utilization: report.budget.utilization(step_period),
            conflict_free: report.conflict_free,
        }
    }
}

/// Result of the sustained-throughput assay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// One row per cycle.
    pub rows: Vec<CycleRow>,
    /// Particles requested across all cycles.
    pub total_requested: usize,
    /// Particles routed across all cycles.
    pub total_routed: usize,
    /// Cage moves across all cycles.
    pub total_moves: usize,
    /// Sustained planned moves per second of planner wall-clock.
    pub sustained_moves_per_second: f64,
    /// Completed particles per hour of simulated chip time.
    pub particles_per_chip_hour: f64,
    /// Chip time over planner time (≫ 1: the software keeps ahead).
    pub planner_headroom: f64,
    /// Maximum cage speed the force envelope permits, µm/s.
    pub envelope_max_speed_um_s: f64,
    /// Planned moves checked against the envelope across all cycles.
    pub moves_checked: usize,
    /// Moves the envelope rejected (0 for a feasible step period).
    pub infeasible_moves: usize,
}

impl Results {
    /// Renders the result as a report table (cycle rows plus a totals row).
    pub fn to_table(&self) -> ExperimentTable {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.cycle.to_string(),
                    r.particles.to_string(),
                    format!(
                        "{:.1}%",
                        100.0 * r.routed as f64 / r.particles.max(1) as f64
                    ),
                    r.makespan_steps.to_string(),
                    r.total_moves.to_string(),
                    format!("{:.0}", r.plan_wall_ms),
                    format!("{:.0}", r.moves_per_second),
                    format!("{:.0}", r.motion_s),
                    format!("{:.2}", r.sensing_s),
                    format!("{:.0}", r.fluidics_s),
                    format!("{:.2}%", 100.0 * r.programming_utilization),
                ]
            })
            .collect();
        rows.push(vec![
            "total".into(),
            self.total_requested.to_string(),
            format!(
                "{:.1}%",
                100.0 * self.total_routed as f64 / self.total_requested.max(1) as f64
            ),
            "-".into(),
            self.total_moves.to_string(),
            "-".into(),
            format!("{:.0}", self.sustained_moves_per_second),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        ExperimentTable::new(
            "E11",
            "Sustained throughput: repeated route→sense→flush assay cycles",
            vec![
                "cycle".into(),
                "particles".into(),
                "routed".into(),
                "makespan [steps]".into(),
                "moves".into(),
                "plan [ms]".into(),
                "moves/s".into(),
                "motion [s]".into(),
                "sense [s]".into(),
                "fluidics [s]".into(),
                "prog util".into(),
            ],
            rows,
        )
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let workload = WorkloadConfig {
        array_side: config.array_side,
        shards: ShardConfig {
            shard_side: config.shard_side,
            window: config.window,
            ..ShardConfig::default()
        },
        min_separation: config.min_separation,
        step_period: config.step_period,
        detection_frames: config.detection_frames,
        noise_scale: config.noise_scale,
        recovery: RecoveryPolicy::disabled(),
        load_time: config.load_time,
        flush_time: config.flush_time,
        reuse_plans: config.reuse_plans,
        live_planning: false,
        seed: config.seed,
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("thread pool construction is infallible");
    let mut driver = BatchDriver::new(workload);

    let mut rows = Vec::with_capacity(config.cycles);
    let mut moves_checked = 0usize;
    let mut infeasible_moves = 0usize;
    for _ in 0..config.cycles {
        let report = pool.install(|| driver.run_cycle(config.particles_per_cycle));
        moves_checked += report.moves_checked;
        infeasible_moves += report.infeasible_moves;
        let row = CycleRow::from_report(&report, config.step_period);
        ctx.emit_row(format!(
            "cycle {}: {}/{} routed, {} moves in {:.0} ms ({:.0} moves/s)",
            row.cycle,
            row.routed,
            row.particles,
            row.total_moves,
            row.plan_wall_ms,
            row.moves_per_second
        ));
        rows.push(row);
    }

    let totals = driver.totals();
    let results = Results {
        rows,
        total_requested: totals.requested,
        total_routed: totals.completed,
        total_moves: totals.total_moves,
        sustained_moves_per_second: totals.moves_per_planning_second(),
        particles_per_chip_hour: totals.particles_per_chip_second() * 3600.0,
        planner_headroom: totals.planner_headroom(),
        envelope_max_speed_um_s: driver.envelope().max_speed.as_micrometers_per_second(),
        moves_checked,
        infeasible_moves,
    };
    ctx.emit_row(format!(
        "sustained: {:.0} moves/s planned, {:.0} particles/chip-hour, headroom {:.0}x",
        results.sustained_moves_per_second,
        results.particles_per_chip_hour,
        results.planner_headroom
    ));
    results
}

/// The sustained-throughput assay as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputScenario;

impl Scenario for ThroughputScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E11"
    }

    fn describe(&self) -> &'static str {
        "Sustained-throughput assay: repeated route/sense/flush cycles"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: &Config) -> Results {
        run_with(config, &mut ScenarioContext::silent("E11"))
    }

    fn quick_config() -> Config {
        Config {
            array_side: 64,
            particles_per_cycle: 60,
            cycles: 2,
            threads: 1,
            ..Config::default()
        }
    }

    #[test]
    fn cycles_run_and_totals_accumulate() {
        let results = run(&quick_config());
        assert_eq!(results.rows.len(), 2);
        assert_eq!(results.total_requested, 120);
        assert!(
            results.total_routed > 100,
            "routed {}",
            results.total_routed
        );
        assert!(results.sustained_moves_per_second > 0.0);
        assert!(results.planner_headroom > 1.0);
        assert_eq!(results.infeasible_moves, 0);
        assert!(results.moves_checked >= results.total_moves);
    }

    #[test]
    fn every_cycle_is_conflict_free_with_slack() {
        let results = run(&quick_config());
        for row in &results.rows {
            assert!(row.conflict_free, "{row:?}");
            assert!(row.programming_utilization < 0.5, "{row:?}");
            assert!(row.fluidics_s > row.sensing_s);
        }
    }

    #[test]
    fn table_has_cycle_rows_plus_totals() {
        let results = run(&quick_config());
        let table = results.to_table();
        assert_eq!(table.columns.len(), 11);
        assert_eq!(table.row_count(), 3);
        assert!(table.to_string().contains("total"));
    }
}
