//! Integration: the full-array pipeline scenarios (E10/E11) end to end —
//! serial-vs-parallel bit-identical outputs through the `Runner`, the
//! incremental planner's conflict-free invariant at scale, and the batch
//! workload driver's phase accounting.

use labchip::scenario::{Runner, ScenarioRegistry};
use labchip::workload::{sort_problem, BatchDriver, WorkloadConfig};
use labchip_manipulation::routing::{Router, RoutingStrategy};
use labchip_manipulation::sharding::{IncrementalRouter, ShardConfig};
use labchip_units::GridDims;

/// A runner with E10/E11 shrunk to integration-test size (the default
/// 320²/2000-particle sweep is what `report run e10 e11` exercises).
fn scale_runner() -> Runner {
    let mut runner = Runner::new(ScenarioRegistry::all());
    for spec in [
        "array_side=64",
        "particles=80",
        "density_steps=[0.5,1.0]",
        "astar_cap=12",
        "astar_max_steps=256",
        "particles_per_cycle=40",
        "cycles=2",
        "threads=2",
    ] {
        runner.set_override(spec).expect("spec is well-formed");
    }
    runner
}

/// Recursively zeroes the host-timing fields (planner wall-clock and the
/// moves/sec figure derived from it) — everything else the scenarios emit
/// is required to be bit-identical across serial/parallel execution.
fn mask_wall_clock(value: &mut serde_json::Value) {
    match value {
        serde_json::Value::Object(map) => {
            for key in [
                "plan_wall_ms",
                "moves_per_second",
                "planning",
                "sustained_moves_per_second",
                "planner_headroom",
            ] {
                if map.get(key).is_some() {
                    map.insert(key, serde_json::Value::Null);
                }
            }
            let keys: Vec<String> = map.iter().map(|(k, _)| k.clone()).collect();
            for key in keys {
                if let Some(v) = map.get_mut(&key) {
                    mask_wall_clock(v);
                }
            }
        }
        serde_json::Value::Array(items) => {
            for item in items {
                mask_wall_clock(item);
            }
        }
        _ => {}
    }
}

#[test]
fn e10_and_e11_plans_are_bit_identical_across_serial_and_parallel_runs() {
    let ids = ["e10", "e11"];
    let parallel = scale_runner().run(&ids).expect("parallel run succeeds");
    let mut serial_runner = scale_runner();
    serial_runner.set_parallel(false);
    let serial = serial_runner.run(&ids).expect("serial run succeeds");
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.id, s.id);
        let mut po = p.output.clone();
        let mut so = s.output.clone();
        mask_wall_clock(&mut po);
        mask_wall_clock(&mut so);
        assert_eq!(po, so, "{} plans differ", p.id);
    }
}

#[test]
fn incremental_planner_is_deterministic_across_thread_counts_at_scale() {
    let problem = sort_problem(GridDims::square(96), 250, 2, 77);
    let router = IncrementalRouter::new(ShardConfig {
        shard_side: 24,
        window: 6,
        ..ShardConfig::default()
    });
    let solve_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds")
            .install(|| router.solve(&problem).expect("problem is well-formed"))
    };
    let one = solve_with(1);
    let four = solve_with(4);
    assert_eq!(one, four, "thread count changed the plan");
    assert!(one.is_conflict_free(problem.min_separation));
}

#[test]
fn incremental_beats_greedy_by_2x_at_the_densest_setting() {
    // The acceptance shape of E10, at integration-test scale: the densest
    // sweep point of the full-array sort.
    let problem = sort_problem(GridDims::square(96), 300, 2, 2005);
    let total = problem.requests.len();
    let incremental = IncrementalRouter::default()
        .solve(&problem)
        .expect("well-formed");
    let greedy = Router::new(RoutingStrategy::Greedy)
        .solve(&problem)
        .expect("well-formed");
    assert!(incremental.is_conflict_free(problem.min_separation));
    assert!(
        incremental.success_rate(total) >= 2.0 * greedy.success_rate(total),
        "incremental {} vs greedy {}",
        incremental.success_rate(total),
        greedy.success_rate(total)
    );
    assert!(incremental.success_rate(total) > 0.85);
}

#[test]
fn batch_driver_accounts_every_phase_and_validates_moves() {
    let mut driver = BatchDriver::new(WorkloadConfig {
        array_side: 64,
        ..WorkloadConfig::default()
    });
    let report = driver.run_cycle(60);
    assert!(report.conflict_free);
    assert!(report.success_rate() > 0.9, "routed {}", report.routed);
    // Every phase of the paper-style assay is accounted for.
    assert!(report.time.fluidics.get() > 0.0);
    assert!(report.time.sensing.get() > 0.0);
    assert!(report.time.motion.get() > 0.0);
    // Force-feasibility checked each planned move and found the reference
    // operating point safe; the row-rewrite budget fits the step period.
    assert_eq!(report.moves_checked, report.total_moves);
    assert_eq!(report.infeasible_moves, 0);
    assert!(report.budget.fits_within(driver.config().step_period));
    assert_eq!(report.occupancy_detected, report.requested);
}
