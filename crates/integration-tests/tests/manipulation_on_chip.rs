//! Integration: manipulation layer → actuation array. Every frame produced by
//! a manipulation operation is a programmable electrode pattern, and the
//! complete assay remains executable on the chip facade.

use labchip::prelude::*;
use labchip_units::{GridCoord, GridDims, Seconds};

#[test]
fn every_motion_frame_is_programmable_on_the_array() {
    let dims = GridDims::square(24);
    let mut manipulator = Manipulator::new(dims);
    manipulator
        .grid_mut()
        .place(ParticleId(1), GridCoord::new(3, 3))
        .unwrap();
    manipulator
        .grid_mut()
        .place(ParticleId(2), GridCoord::new(3, 12))
        .unwrap();
    let report = manipulator
        .move_group(&[
            (ParticleId(1), GridCoord::new(20, 3)),
            (ParticleId(2), GridCoord::new(20, 12)),
        ])
        .expect("routing succeeds");

    // Program every intermediate frame onto a chip of the same size: if any
    // frame were invalid the facade would reject it.
    let mut chip = BiochipBuilder::new()
        .dims(dims)
        .build()
        .expect("valid configuration");
    for frame in &report.frames {
        chip.program_pattern(frame).expect("frame is programmable");
        assert_eq!(chip.cage_count(), frame.cage_count());
        assert_eq!(frame.cage_count(), 2, "no cage is lost or merged");
    }
}

#[test]
fn assay_protocol_runs_on_the_same_grid_the_chip_exposes() {
    let chip = Biochip::small_reference(32);
    let dims = chip.array().dims();

    let sites: Vec<GridCoord> = CagePattern::new(
        dims,
        labchip_array::pattern::PatternKind::Lattice {
            period: 6,
            offset: GridCoord::new(3, 3),
        },
    )
    .unwrap()
    .cage_sites()
    .iter()
    .copied()
    .take(6)
    .collect();
    let pattern =
        CagePattern::new(dims, labchip_array::pattern::PatternKind::Custom(sites)).unwrap();

    let scan_time = chip
        .scan_timing()
        .averaged_scan_time(dims, &FrameAverager::new(16));
    let protocol = Protocol::new("integration assay")
        .with_step(ProtocolStep::LoadSample {
            pattern,
            handling_time: Seconds::from_minutes(2.0),
        })
        .with_step(ProtocolStep::Detect { scan_time })
        .with_step(ProtocolStep::Isolate { id: ParticleId(2) })
        .with_step(ProtocolStep::Wash {
            keep: vec![ParticleId(2)],
        })
        .with_step(ProtocolStep::Recover {
            id: ParticleId(2),
            handling_time: Seconds::from_minutes(1.0),
        });

    let mut manipulator = Manipulator::new(dims);
    let report = ProtocolExecutor::new(&mut manipulator)
        .run(&protocol)
        .expect("assay executes");
    assert_eq!(report.recovered, vec![ParticleId(2)]);
    assert!(report.time.fluidics > report.time.motion);
    assert!(report.time.motion > report.time.sensing);

    // The final state of the manipulation is programmable on the chip.
    let mut chip = chip;
    chip.program_pattern(&manipulator.grid().to_pattern())
        .expect("final pattern programmable");
    assert_eq!(chip.cage_count(), manipulator.grid().particle_count());
}

#[test]
fn routed_plans_respect_the_cage_separation_at_every_step() {
    let config = labchip::experiments::e7_routing::Config {
        array_side: 32,
        ..labchip::experiments::e7_routing::Config::default()
    };
    let problem = labchip::experiments::e7_routing::generate_problem(&config, 20);
    let outcome = Router::new(RoutingStrategy::PrioritizedAStar)
        .solve(&problem)
        .expect("valid problem");
    assert!(outcome.success_rate(problem.requests.len()) > 0.9);
    assert!(outcome.is_conflict_free(problem.min_separation));
}
