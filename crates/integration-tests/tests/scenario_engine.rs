//! Integration: the scenario engine end to end — registry coverage, bulk
//! runs through the `Runner`, typed `key=value` overrides, the single JSON
//! document behind `report run --all --json`, and streamed telemetry
//! (including simulator step batches bridged from the step-observer hook).

use labchip::scenario::{
    outcomes_to_json, CollectingProgress, ProgressEvent, Runner, ScenarioRegistry,
};
use serde_json::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// Overrides that shrink the heavy sweeps without changing any scenario's
/// shape — applied across the full registry so `--all` style runs stay fast
/// in debug builds.
fn quick_runner() -> Runner {
    let mut runner = Runner::new(ScenarioRegistry::all());
    for spec in [
        "sides=[64,320]",            // E1: two array sizes still cover the paper point
        "speeds_um_s=[25.0,5000.0]", // E3: one tracked and one untracked speed
        "travel_steps=3",            // E3
        "trials=150",                // E4 + E5 Monte-Carlo trial counts
        "frame_counts=[1,16]",       // E4
        "particle_counts=[8]",       // E7
        "array_side=16",             // E2 + E3 + E7 + E9 + E10 + E11 + E12 region
        "particles=40",              // E10 (clamped to the tiny array)
        "density_steps=[1.0]",       // E10: one sweep point
        "astar_cap=8",               // E10: tiny A* subsample
        "astar_max_steps=128",       // E10
        "particles_per_cycle=10",    // E11
        "cycles=1",                  // E11
        "noise_scales=[0.0,6.0]",    // E12: one quiet and one loud point
        "kill_points=4",             // E14: a token fault sweep
    ] {
        runner.set_override(spec).expect("spec is well-formed");
    }
    runner
}

#[test]
fn registry_ids_are_unique_and_default_runs_produce_rows() {
    let registry = ScenarioRegistry::all();
    assert!(registry.len() >= 14, "core scenarios must not disappear");
    let unique: HashSet<&str> = registry.iter().map(|s| s.id()).collect();
    assert_eq!(unique.len(), registry.len(), "scenario ids must be unique");

    // Cheap scenarios run their untouched paper defaults here; the full
    // default sweep of every scenario is what `report run --all` does in CI.
    for id in ["E2", "E4", "E5", "E6", "E8"] {
        let run = registry
            .get(id)
            .expect("id registered")
            .run_default()
            .expect("default config decodes");
        assert!(run.table.row_count() >= 1, "{id} produced no rows");
        assert!(!run.output.is_null());
    }
}

#[test]
fn run_all_covers_the_whole_registry_and_emits_one_valid_json_document() {
    // Expectations derive from the registry itself — registering E15+ in
    // core must not require editing this test.
    let expected: Vec<String> = ScenarioRegistry::all()
        .iter()
        .map(|s| s.id().to_owned())
        .collect();
    let outcomes = quick_runner().run_all().expect("bulk run succeeds");
    let ids: Vec<&str> = outcomes.iter().map(|o| o.id.as_str()).collect();
    assert_eq!(ids, expected);
    for outcome in &outcomes {
        assert!(
            outcome.table.row_count() >= 1,
            "{} produced no rows",
            outcome.id
        );
    }

    // The document `report run --all --json` prints: one parseable JSON
    // text covering every scenario, tables included.
    let document = outcomes_to_json(&outcomes);
    let text = serde_json::to_string_pretty(&document);
    let parsed: Value = serde_json::from_str(&text).expect("document is valid JSON");
    let scenarios = parsed
        .as_object()
        .and_then(|o| o.get("scenarios"))
        .and_then(Value::as_array)
        .expect("document has a scenarios array");
    assert_eq!(scenarios.len(), outcomes.len());
    for (entry, outcome) in scenarios.iter().zip(&outcomes) {
        let entry = entry.as_object().unwrap();
        assert_eq!(entry.get("id").unwrap().as_str(), Some(outcome.id.as_str()));
        assert!(entry.get("config").unwrap().as_object().is_some());
        assert!(entry.get("table").unwrap().as_object().is_some());
    }
}

#[test]
fn typed_overrides_round_trip_onto_configs() {
    // `report run e3 --set threads=2`: the override lands in the typed
    // config (visible in the outcome's serialised config) and the run
    // still produces the narrative result.
    let mut runner = Runner::new(ScenarioRegistry::all());
    for spec in [
        "threads=2",
        "speeds_um_s=[50.0]",
        "travel_steps=3",
        "array_side=16",
    ] {
        runner.set_override(spec).unwrap();
    }
    let outcomes = runner.run(&["e3"]).unwrap();
    let config = outcomes[0].config.as_object().unwrap();
    assert_eq!(config.get("threads").unwrap().as_u64(), Some(2));
    assert_eq!(outcomes[0].table.row_count(), 1);

    // A wrong-typed value is rejected with the scenario named.
    let mut bad = Runner::new(ScenarioRegistry::all());
    bad.set_override("threads=not-a-number").unwrap();
    let err = bad.run(&["e3"]).unwrap_err().to_string();
    assert!(err.contains("E3"), "error should name the scenario: {err}");
}

#[test]
fn progress_stream_includes_rows_and_simulator_step_batches() {
    let progress = Arc::new(CollectingProgress::new());
    let mut runner = Runner::new(ScenarioRegistry::all());
    for spec in [
        "speeds_um_s=[25.0,5000.0]",
        "travel_steps=3",
        "array_side=16",
    ] {
        runner.set_override(spec).unwrap();
    }
    runner.set_parallel(false);
    runner.set_progress(progress.clone());
    runner.run(&["e3"]).unwrap();

    let events = progress.events_for("E3");
    assert!(matches!(
        events.first(),
        Some(ProgressEvent::ScenarioStarted { .. })
    ));
    assert!(matches!(
        events.last(),
        Some(ProgressEvent::ScenarioFinished { .. })
    ));
    let rows = events
        .iter()
        .filter(|e| matches!(e, ProgressEvent::Row { .. }))
        .count();
    assert_eq!(rows, 2, "one row per configured speed");
    // The ChipSimulator step-observer hook feeds the same stream.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::SimSteps { .. })),
        "expected simulator step telemetry in the progress stream"
    );
}

#[test]
fn base_seed_changes_stochastic_outputs_deterministically() {
    let seeded = |seed: u64| {
        let mut runner = Runner::new(ScenarioRegistry::all());
        runner.set_base_seed(seed);
        runner.run(&["e8"]).unwrap().remove(0)
    };
    let a = seeded(1);
    let b = seeded(1);
    let c = seeded(2);
    assert_eq!(a.output, b.output, "same base seed, same output");
    assert_eq!(a.seed, b.seed);
    assert_ne!(a.seed, c.seed, "different base seed derives a new seed");
}
