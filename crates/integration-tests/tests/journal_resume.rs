//! Property tests of the event-sourced execution contract: kill a protocol
//! run at *any* journal offset, and the checkpoint + journal pair is enough
//! to get back — the truncated prefix replays to the checkpoint state bit
//! for bit, the checkpoint survives its JSON round trip, and resuming
//! reaches the same final chip state (and report, planner wall-clock
//! aside) as the run that was never interrupted.
//!
//! The sweep crosses seeds × sensor noise × recovery policy so the killable
//! surface includes the closed-loop recovery path, not just the happy path.
//! Alongside the property, two regressions pin the serde edges: astral-plane
//! protocol names (surrogate pairs in JSON) round-trip, and non-finite
//! ledger floats are rejected cleanly by `Checkpoint::from_json` rather
//! than resurrected as NaN.

use labchip::workload::{
    BatchDriver, Checkpoint, ForceEnvelope, Protocol, RecoveryPolicy, WorkloadConfig,
};
use labchip_manipulation::journal::{replay, FaultPlan};
use labchip_units::{GridDims, Seconds};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The force envelope is derived from the cached field engine once for the
/// whole suite — it is config-independent and costs a field probe.
fn envelope() -> ForceEnvelope {
    static ENVELOPE: OnceLock<ForceEnvelope> = OnceLock::new();
    *ENVELOPE.get_or_init(ForceEnvelope::date05_reference)
}

fn workload(seed: u64, noise_scale: f64, recovery: RecoveryPolicy) -> WorkloadConfig {
    WorkloadConfig {
        array_side: 32,
        noise_scale,
        detection_frames: 2,
        recovery,
        seed,
        ..WorkloadConfig::default()
    }
}

fn canned(config: &WorkloadConfig, particles: usize) -> Protocol {
    Protocol::canned_cycle(
        GridDims::square(config.array_side),
        config.min_separation.max(1),
        particles,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kill_anywhere_and_resume_reaches_the_uninterrupted_state(
        seed in 0u64..1000,
        noisy in proptest::bool::ANY,
        recovering in proptest::bool::ANY,
        kill_sel in 0u64..10_000,
    ) {
        let recovery = if recovering {
            RecoveryPolicy::date05_reference()
        } else {
            RecoveryPolicy::disabled()
        };
        let config = workload(seed, if noisy { 8.0 } else { 0.0 }, recovery);
        let protocol = canned(&config, 20);
        let dims = GridDims::square(config.array_side);
        let sep = config.min_separation.max(1);
        let driver = BatchDriver::with_envelope(config, envelope());

        // The oracle: the same cycle, never interrupted.
        let (baseline, journal) = driver.runner().run_journaled(&protocol, 0);
        let baseline_hash = baseline.state.state_hash();
        let total = journal.len() as u64;
        prop_assert!(total > 0, "a canned cycle always journals events");

        // Replay of the full journal is the equivalence oracle.
        let replayed = replay(&journal, dims, sep).expect("recorded journals replay");
        prop_assert_eq!(replayed.state_hash(), baseline_hash);

        // Kill anywhere in [1, total + 10]: offsets past the end must let
        // the run complete untouched.
        let kill = 1 + kill_sel % (total + 10);
        match driver.runner().run_with_fault(&protocol, 0, FaultPlan::after(kill)) {
            Ok((outcome, journal)) => {
                prop_assert!(kill >= total, "in-journal kill must interrupt");
                prop_assert_eq!(outcome.state.state_hash(), baseline_hash);
                prop_assert_eq!(journal.len() as u64, total);
            }
            Err(run) => {
                prop_assert!(kill < total, "kill past the journal end must complete");

                // The journal prefix up to the checkpoint offset replays to
                // the checkpointed state bit for bit.
                let prefix = run.journal.truncated(run.checkpoint.journal_offset);
                let from_prefix = replay(&prefix, dims, sep).expect("prefix replays");
                let from_snapshot =
                    labchip_manipulation::state::ChipState::from_snapshot(run.checkpoint.state.clone());
                prop_assert_eq!(from_prefix.state_hash(), from_snapshot.state_hash());

                // The checkpoint is durable: its JSON round trip is identity.
                let round_tripped = Checkpoint::from_json(&run.checkpoint.to_json())
                    .expect("checkpoint JSON parses back");
                prop_assert_eq!(&round_tripped, &run.checkpoint);

                // Resume reaches the uninterrupted final state, and the
                // report too once the planner wall-clock is aligned.
                let resumed = driver.runner().resume(&run.checkpoint);
                prop_assert_eq!(resumed.state.state_hash(), baseline_hash);
                let mut report = resumed.report;
                report.planning = baseline.report.planning;
                prop_assert_eq!(report, baseline.report);
            }
        }
    }
}

/// Grabs a real checkpoint by killing a short run early.
fn interrupted_checkpoint(name: &str) -> Checkpoint {
    let config = workload(2005, 0.0, RecoveryPolicy::disabled());
    let mut protocol = canned(&config, 12);
    protocol.name = name.to_string();
    let driver = BatchDriver::with_envelope(config, envelope());
    let run = driver
        .runner()
        .run_with_fault(&protocol, 0, FaultPlan::after(5))
        .expect_err("an early kill point interrupts the run");
    run.checkpoint
}

/// Astral-plane characters in the protocol name survive the checkpoint's
/// JSON round trip — they encode as UTF-16 surrogate pairs in `\u` escapes
/// and must decode back to the same scalar values.
#[test]
fn checkpoint_json_round_trips_surrogate_pair_protocol_names() {
    let name = "assay-\u{1D538}\u{1F9EB}-\"quoted\"-\u{10FFFF}";
    let checkpoint = interrupted_checkpoint(name);
    let round_tripped =
        Checkpoint::from_json(&checkpoint.to_json()).expect("astral names parse back");
    assert_eq!(round_tripped.protocol.name, name);
    assert_eq!(round_tripped, checkpoint);
}

/// Non-finite ledger floats cannot survive: the JSON writer encodes them as
/// `null`, and the typed reader must reject that cleanly (an `Err`, not a
/// panic and not a resurrected NaN).
#[test]
fn checkpoint_json_rejects_non_finite_ledger_floats_cleanly() {
    let mut checkpoint = interrupted_checkpoint("nan-probe");

    checkpoint.ctx.planning = Seconds::new(f64::NAN);
    let text = checkpoint.to_json();
    assert!(text.contains("null"), "non-finite floats encode as null");
    assert!(Checkpoint::from_json(&text).is_err());

    checkpoint.ctx.planning = Seconds::new(0.0);
    checkpoint.state.time.motion = Seconds::new(f64::INFINITY);
    assert!(Checkpoint::from_json(&checkpoint.to_json()).is_err());
}
