//! Integration: the scenario count is single-sourced from the registry.
//!
//! Every place that talks about "E1..E<n>" — README, architecture docs,
//! the `report` binary's usage text — must keep up when a new scenario
//! registers. These tests derive the expected span from the live
//! registries ([`ScenarioRegistry::all`] for core, [`full_registry`] for
//! the whole workspace) and scan the prose for stale ranges, so an E16
//! that forgets the docs fails CI instead of silently drifting.

use labchip::scenario::ScenarioRegistry;
use labchip_farm::full_registry;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("the workspace root exists")
}

/// Extracts every standalone `E<digits>` token (word-boundary on both
/// sides, value capped to two digits so hex strings and scientific
/// notation never match) and returns the largest scenario number
/// mentioned.
fn max_scenario_token(text: &str) -> Option<u32> {
    let bytes = text.as_bytes();
    let mut max = None;
    for (index, _) in text.match_indices('E') {
        if index > 0 && (bytes[index - 1].is_ascii_alphanumeric() || bytes[index - 1] == b'_') {
            continue;
        }
        let digits: String = text[index + 1..]
            .chars()
            .take_while(char::is_ascii_digit)
            .take(2)
            .collect();
        if digits.is_empty() {
            continue;
        }
        let after = index + 1 + digits.len();
        if bytes
            .get(after)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            continue;
        }
        let value: u32 = digits.parse().expect("digits parse");
        if value >= 1 && value > max.unwrap_or(0) {
            max = Some(value);
        }
    }
    max
}

#[test]
fn full_registry_is_core_plus_the_farm_scenarios_with_contiguous_ids() {
    let core = ScenarioRegistry::all();
    let full = full_registry();
    assert_eq!(
        full.len(),
        core.len() + 2,
        "the farm crate adds exactly E15 and E16"
    );

    // Ids are contiguous E1..E<n> in registration order, and id_range()
    // (what `report` prints on an unknown id) reports exactly that span.
    let expected: Vec<String> = (1..=full.len()).map(|n| format!("E{n}")).collect();
    let actual: Vec<&str> = full.iter().map(|scenario| scenario.id()).collect();
    assert_eq!(actual, expected);
    assert_eq!(full.id_range(), format!("E1..E{}", full.len()));
    assert_eq!(core.id_range(), format!("E1..E{}", core.len()));
}

#[test]
fn docs_mention_the_current_scenario_span_not_a_stale_one() {
    let top = full_registry().len() as u32;
    let root = repo_root();
    for relative in [
        "README.md",
        "docs/ARCHITECTURE.md",
        "crates/bench/src/main.rs",
    ] {
        let path = root.join(relative);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|error| panic!("reading {}: {error}", path.display()));
        let mentioned = max_scenario_token(&text)
            .unwrap_or_else(|| panic!("{relative} mentions no scenario ids at all"));
        assert_eq!(
            mentioned, top,
            "{relative}: highest scenario mentioned is E{mentioned}, but the registry \
             tops out at E{top} — update the doc (or register the missing scenario)"
        );
    }
}

#[test]
fn scenario_token_scan_has_word_boundaries() {
    assert_eq!(max_scenario_token("runs E1 through E15"), Some(15));
    assert_eq!(max_scenario_token("E2E tests and 1E9 floats"), None);
    assert_eq!(max_scenario_token("0xE15 is hex"), None);
    assert_eq!(max_scenario_token("the E13–E14 pair"), Some(14));
    assert_eq!(max_scenario_token("no ids here"), None);
}
