//! Property tests: every scenario config round-trips through JSON text —
//! `Config -> serde_json::to_string -> serde_json::from_str -> Config` is
//! the identity. This is the contract the scenario engine's type-erased
//! boundary (and the `report run --set/--json` surface) rests on.

use labchip::experiments::{
    e10_fullarray, e11_throughput, e12_closedloop, e13_protocols, e14_faults, e1_scale,
    e2_technology, e3_motion, e4_sensing, e5_designflow, e6_fabrication, e7_routing, e8_centering,
    e9_assay,
};
use labchip::workload::RecoveryPolicy;
use labchip_array::technology::TechnologyNode;
use labchip_fluidics::fabrication::ProcessKind;
use labchip_units::{GridDims, Meters, Seconds};
use proptest::prelude::*;

fn round_trip<T>(config: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let text = serde_json::to_string(config);
    serde_json::from_str(&text).expect("config JSON parses back")
}

proptest! {
    #[test]
    fn e1_scale_config_round_trips(
        sides in proptest::collection::vec(2u32..600, 1..5),
        dense_period in 2u32..8,
        sparse_period in 2u32..8,
        pitch_um in 1.0f64..100.0,
        node_index in 0usize..5,
    ) {
        let config = e1_scale::Config {
            sides,
            dense_period,
            sparse_period,
            technology: TechnologyNode::ladder()[node_index].clone(),
            pitch: Meters::from_micrometers(pitch_um),
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e2_technology_config_round_trips(
        keep in 1usize..6,
        use_io_drivers in proptest::bool::ANY,
        array_side in 5u32..33,
    ) {
        let mut nodes = TechnologyNode::ladder();
        nodes.truncate(keep);
        let config = e2_technology::Config { nodes, use_io_drivers, array_side };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e3_motion_config_round_trips(
        speeds_um_s in proptest::collection::vec(1.0f64..10_000.0, 1..6),
        travel_steps in 1u32..10,
        array_side in 8u32..64,
        dt_ms in 0.1f64..5.0,
        seed in 0u64..u64::MAX,
        threads in 0usize..8,
    ) {
        let config = e3_motion::Config {
            speeds_um_s,
            travel_steps,
            array_side,
            dt: Seconds::from_millis(dt_ms),
            seed,
            threads,
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e4_sensing_config_round_trips(
        frame_counts in proptest::collection::vec(1u32..256, 1..8),
        side in 8u32..400,
        trials in 1u32..10_000,
        step_period_s in 0.01f64..2.0,
        seed in 0u64..u64::MAX,
    ) {
        let config = e4_sensing::Config {
            frame_counts,
            dims: GridDims::square(side),
            trials,
            step_period: Seconds::new(step_period_s),
            seed,
            ..e4_sensing::Config::default()
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e5_designflow_config_round_trips(
        keep in 1usize..3,
        trials in 1u32..2_000,
        seed in 0u64..u64::MAX,
    ) {
        let mut config = e5_designflow::Config { trials, seed, ..Default::default() };
        config.scenarios.truncate(keep);
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e6_fabrication_config_round_trips(
        process_mask in 1usize..16,
        batch_sizes in proptest::collection::vec(1u32..1_000, 1..5),
    ) {
        let all = [
            ProcessKind::DryFilmResist,
            ProcessKind::PdmsSoftLithography,
            ProcessKind::GlassEtching,
            ProcessKind::CmosPrototype,
        ];
        let processes: Vec<ProcessKind> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| process_mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        let config = e6_fabrication::Config { processes, batch_sizes };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e7_routing_config_round_trips(
        array_side in 8u32..128,
        particle_counts in proptest::collection::vec(1usize..200, 1..5),
        min_separation in 1u32..4,
        step_period_s in 0.05f64..2.0,
        seed in 0u64..u64::MAX,
    ) {
        let config = e7_routing::Config {
            array_side,
            particle_counts,
            min_separation,
            step_period: Seconds::new(step_period_s),
            seed,
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e8_centering_config_round_trips(
        spec_halfwidth_sigmas in 0.5f64..6.0,
        initial_offsets in proptest::collection::vec(-4.0f64..4.0, 1..6),
        seed in 0u64..u64::MAX,
    ) {
        let config = e8_centering::Config { spec_halfwidth_sigmas, initial_offsets, seed };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e9_assay_config_round_trips(
        array_side in 8u32..64,
        cells in 1u32..32,
        detection_frames in 1u32..128,
        load_time_s in 1.0f64..600.0,
        recover_time_s in 1.0f64..600.0,
    ) {
        let config = e9_assay::Config {
            array_side,
            cells,
            detection_frames,
            load_time: Seconds::new(load_time_s),
            recover_time: Seconds::new(recover_time_s),
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e10_fullarray_config_round_trips(
        array_side in 16u32..512,
        particles in 1usize..20_000,
        density_steps in proptest::collection::vec(0.01f64..1.0, 1..5),
        min_separation in 1u32..4,
        step_period_s in 0.05f64..2.0,
        shard_side in 4u32..64,
        window in 1u32..32,
        astar_cap in 0usize..512,
        astar_max_steps in 16usize..2048,
        threads in 0usize..8,
        reuse_plans in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
    ) {
        let config = e10_fullarray::Config {
            array_side,
            particles,
            density_steps,
            min_separation,
            step_period: Seconds::new(step_period_s),
            shard_side,
            window,
            astar_cap,
            astar_max_steps,
            threads,
            reuse_plans,
            seed,
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e11_throughput_config_round_trips(
        array_side in 16u32..512,
        particles_per_cycle in 1usize..5_000,
        cycles in 1usize..16,
        min_separation in 1u32..4,
        step_period_s in 0.05f64..2.0,
        detection_frames in 1u32..128,
        load_time_s in 1.0f64..600.0,
        flush_time_s in 1.0f64..600.0,
        shard_side in 4u32..64,
        window in 1u32..32,
        threads in 0usize..8,
        reuse_plans in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
    ) {
        let config = e11_throughput::Config {
            array_side,
            particles_per_cycle,
            cycles,
            min_separation,
            step_period: Seconds::new(step_period_s),
            detection_frames,
            noise_scale: detection_frames as f64 * 0.25,
            load_time: Seconds::new(load_time_s),
            flush_time: Seconds::new(flush_time_s),
            shard_side,
            window,
            threads,
            reuse_plans,
            seed,
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e12_closedloop_config_round_trips(
        array_side in 16u32..512,
        particles in 1usize..5_000,
        noise_scales in proptest::collection::vec(0.0f64..16.0, 1..5),
        frame_counts in proptest::collection::vec(1u32..128, 1..5),
        rescan_factor in 1u32..16,
        max_recovery_rounds in 0u32..8,
        min_separation in 1u32..4,
        step_period_s in 0.05f64..2.0,
        load_time_s in 1.0f64..600.0,
        flush_time_s in 1.0f64..600.0,
        shard_side in 4u32..64,
        window in 1u32..32,
        threads in 0usize..8,
        reuse_plans in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
    ) {
        let config = e12_closedloop::Config {
            array_side,
            particles,
            noise_scales,
            frame_counts,
            rescan_factor,
            max_recovery_rounds,
            min_separation,
            step_period: Seconds::new(step_period_s),
            load_time: Seconds::new(load_time_s),
            flush_time: Seconds::new(flush_time_s),
            shard_side,
            window,
            threads,
            reuse_plans,
            seed,
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e13_protocols_config_round_trips(
        array_side in 16u32..512,
        particles in 1usize..5_000,
        with_protocol in proptest::bool::ANY,
        noise_scale in 0.0f64..16.0,
        detection_frames in 1u32..128,
        max_rounds in 0u32..8,
        min_separation in 1u32..4,
        threads in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let config = e13_protocols::Config {
            array_side,
            particles,
            protocol: with_protocol.then(|| e13_protocols::default_protocol(particles)),
            min_separation,
            detection_frames,
            noise_scale,
            recovery: RecoveryPolicy { max_rounds, rescan_factor: 4 },
            threads,
            seed,
            ..e13_protocols::Config::default()
        };
        prop_assert_eq!(round_trip(&config), config);
    }

    #[test]
    fn e14_faults_config_round_trips(
        array_side in 16u32..512,
        particles in 1usize..5_000,
        kill_points in 0usize..200,
        noise_scale in 0.0f64..16.0,
        detection_frames in 1u32..128,
        max_rounds in 0u32..8,
        min_separation in 1u32..4,
        threads in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let config = e14_faults::Config {
            array_side,
            particles,
            kill_points,
            min_separation,
            detection_frames,
            noise_scale,
            recovery: RecoveryPolicy { max_rounds, rescan_factor: 4 },
            threads,
            seed,
            ..e14_faults::Config::default()
        };
        prop_assert_eq!(round_trip(&config), config);
    }
}

/// The default configs themselves (the paper scenarios) round-trip too —
/// including through the pretty printer the CLI uses.
#[test]
fn default_configs_round_trip_pretty() {
    macro_rules! check {
        ($($module:ident),*) => {$(
            let config = $module::Config::default();
            let pretty = serde_json::to_string_pretty(&config);
            let back: $module::Config =
                serde_json::from_str(&pretty).expect("pretty JSON parses");
            assert_eq!(back, config, stringify!($module));
        )*};
    }
    check!(
        e1_scale,
        e2_technology,
        e3_motion,
        e4_sensing,
        e5_designflow,
        e6_fabrication,
        e7_routing,
        e8_centering,
        e9_assay,
        e10_fullarray,
        e11_throughput,
        e12_closedloop,
        e13_protocols,
        e14_faults
    );
}
