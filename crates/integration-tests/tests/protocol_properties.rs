//! Property tests of the protocol pipeline: any serde-round-tripped
//! [`Protocol`] executes with the `ChipState` invariants held.
//!
//! The invariants locked here are the contract of the phase decomposition:
//!
//! * particle count is conserved by every phase except `Load` and `Flush`
//!   (routing and recovery relocate, never create or destroy);
//! * the cached electrode pattern always agrees with the grid;
//! * the cycle's [`TimeBreakdown::total`] equals the sum of the per-phase
//!   ledgers the runner reports;
//! * executing the serde round-trip of a protocol reproduces the original
//!   run bit for bit (protocols are *data*, and data is the whole truth).

use labchip::workload::{
    BatchDriver, ForceEnvelope, PhaseSpec, Protocol, RecoveryPolicy, RouteTarget, WorkloadConfig,
};
use labchip_manipulation::protocol::TimeBreakdown;
use labchip_units::Seconds;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The force envelope is derived from the cached field engine once for the
/// whole suite — it is config-independent and costs a field probe.
fn envelope() -> ForceEnvelope {
    static ENVELOPE: OnceLock<ForceEnvelope> = OnceLock::new();
    *ENVELOPE.get_or_init(ForceEnvelope::date05_reference)
}

/// Decodes one proptest-chosen `(kind, knob)` pair into a phase spec.
fn phase_from(kind: u8, knob: usize) -> PhaseSpec {
    match kind % 5 {
        0 => PhaseSpec::Load {
            particles: knob % 24 + 1,
            capacity_clamp: if knob.is_multiple_of(3) {
                Some(knob % 16 + 4)
            } else {
                None
            },
        },
        1 => PhaseSpec::Route {
            target: if knob.is_multiple_of(2) {
                RouteTarget::SortSplit
            } else {
                RouteTarget::MergePairs
            },
        },
        2 => PhaseSpec::Sense {
            frames: if knob.is_multiple_of(2) {
                None
            } else {
                Some((knob % 4 + 1) as u32)
            },
        },
        3 => PhaseSpec::Recover {
            policy: Some(RecoveryPolicy {
                max_rounds: (knob % 3) as u32,
                rescan_factor: 2,
            }),
        },
        _ => PhaseSpec::Flush,
    }
}

fn workload(seed: u64, noise_scale: f64) -> WorkloadConfig {
    WorkloadConfig {
        array_side: 32,
        noise_scale,
        detection_frames: 2,
        seed,
        ..WorkloadConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_round_tripped_protocol_holds_the_chip_state_invariants(
        specs in proptest::collection::vec((0u8..5, 0usize..1000), 1..8),
        seed in 0u64..1000,
        noisy in 0u8..2,
    ) {
        let mut protocol = Protocol::new("property-protocol");
        for (kind, knob) in &specs {
            protocol = protocol.with_phase(phase_from(*kind, *knob));
        }

        // Serde round trip: the protocol is pure data.
        let value = serde_json::to_value(&protocol);
        let round_tripped: Protocol =
            serde_json::from_value(&value).expect("protocols are serde-round-trippable");
        prop_assert_eq!(&round_tripped, &protocol);

        let noise_scale = if noisy == 0 { 0.0 } else { 4.0 };
        let config = workload(seed, noise_scale);
        let outcome = BatchDriver::with_envelope(config, envelope()).run_protocol(&protocol);

        // Invariant: phases other than load/flush conserve the population.
        let mut population = 0usize;
        for phase in &outcome.phases {
            let conserves = !(phase.phase.starts_with("load") || phase.phase.starts_with("flush"));
            if conserves {
                prop_assert_eq!(
                    phase.particles_after, population,
                    "phase `{}` changed the particle count", &phase.phase
                );
            }
            population = phase.particles_after;
        }

        // Invariant: the cached pattern always agrees with the grid.
        let mut state = outcome.state;
        let grid_sites: Vec<_> = state.grid().iter_particles().map(|(_, c)| c).collect();
        let pattern_sites = state.pattern().cage_sites();
        let mut expected = grid_sites.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(pattern_sites, &expected[..]);
        prop_assert_eq!(state.occupancy().occupied_count(), expected.len());

        // Invariant: the cycle total equals the sum of phase ledgers.
        let summed = outcome
            .phases
            .iter()
            .fold(TimeBreakdown::default(), |mut acc, phase| {
                acc.fluidics += phase.time.fluidics;
                acc.sensing += phase.time.sensing;
                acc.motion += phase.time.motion;
                acc.recovery += phase.time.recovery;
                acc
            });
        let total = outcome.report.time.total().get();
        prop_assert!(
            (summed.total().get() - total).abs() <= 1e-9 * total.max(1.0),
            "phase ledgers sum to {} but the cycle total is {}",
            summed.total().get(),
            total
        );
        prop_assert_eq!(outcome.report.time.total(), Seconds::new(total));

        // Executing the round-tripped protocol reproduces the run
        // bit-for-bit (planner wall-clock is real time and is aligned).
        let replay = BatchDriver::with_envelope(config, envelope()).run_protocol(&round_tripped);
        let mut replay_report = replay.report;
        replay_report.planning = outcome.report.planning;
        prop_assert_eq!(replay_report, outcome.report);
    }
}
