//! Integration: the assembled chip, its timing budget and its power, checked
//! against the headline numbers of the paper.

use labchip::prelude::*;
use labchip_array::timing::TimingBudget;
use labchip_units::{GridCoord, MetersPerSecond, Seconds};

#[test]
fn paper_reference_chip_is_internally_consistent() {
    let chip = Biochip::date05_reference();

    // C1: >100,000 electrodes under a ~4 µl chamber.
    assert!(chip.array().electrode_count() > 100_000);
    let volume = chip.chamber().volume().as_microliters();
    assert!(volume > 3.0 && volume < 5.0);

    // The chamber height used by the field models is the packaging spacer.
    assert_eq!(
        chip.array().chamber_height(),
        chip.packaging().chamber_height()
    );

    // The chip dissipates tens of milliwatts — it will not cook the sample:
    // the temperature rise from its power density is far below 1 K/s of
    // heating even if all of it went into the liquid.
    assert!(chip.total_power().as_milliwatts() < 200.0);
}

#[test]
fn programming_a_full_lattice_creates_tens_of_thousands_of_cages() {
    let mut chip = Biochip::date05_reference();
    let pattern = CagePattern::standard_lattice(chip.array().dims()).expect("lattice fits");
    chip.program_pattern(&pattern).expect("pattern applies");
    assert!(chip.cage_count() > 10_000);
    // Reprogramming the whole array takes well under the time of one cage
    // step at any realistic cell speed.
    assert!(chip.frame_program_time() < Seconds::from_millis(2.0));
}

#[test]
fn electronics_budget_fits_easily_inside_the_mechanics() {
    let chip = Biochip::date05_reference();
    let budget = TimingBudget::compute(
        chip.array().dims(),
        chip.array().pitch(),
        MetersPerSecond::from_micrometers_per_second(50.0),
        chip.programming(),
        chip.frame_scan_time(),
    );
    assert!(budget.is_feasible());
    assert!(budget.slack_ratio() > 10.0);
    assert!(budget.frames_available_for_averaging >= 32);
}

#[test]
fn cage_summary_reports_a_usable_trap_on_the_large_array() {
    // Same analysis as the small-array unit tests, but on the real 320x320
    // device: the truncated field model keeps this tractable.
    let mut chip = Biochip::date05_reference();
    let site = GridCoord::new(160, 160);
    chip.program_single_cage(site).expect("site exists");
    let summary = chip.cage_summary(site).expect("cage programmed");
    assert!(summary.is_trap);
    assert!(summary.holding_force.as_piconewtons() > 1.0);
    let height = summary.levitation_height.expect("cell levitates");
    assert!(height.as_micrometers() > 10.0 && height.as_micrometers() < 80.0);
}

#[test]
fn packaged_device_stack_supports_the_chamber_and_the_field_model() {
    let chip = Biochip::date05_reference();
    chip.packaging()
        .validate()
        .expect("reference stack is valid");
    // The lid is conductive, so the field model's counter-electrode
    // assumption holds.
    assert!(chip.packaging().conductive_lid);
    // The layout used for the packaging passes the dry-film design rules.
    let layout = MaskLayout::date05_reference();
    let process = FabricationProcess::preset(ProcessKind::DryFilmResist);
    let rules = DesignRules::for_process(&process, chip.packaging().spacer_thickness);
    assert!(rules.check(&layout).is_clean());
    assert!(process.check_capability(&layout).is_ok());
}
