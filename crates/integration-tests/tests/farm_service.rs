//! Integration: the chip-farm job service end to end — tenant-fair
//! scheduling, bounded-queue backpressure, cancellation at every phase
//! boundary, and the kill-anywhere × resume == uninterrupted equivalence,
//! checked against the journal/replay oracle.
//!
//! The queue properties run against [`TenantQueue`] directly (it is a pure
//! data structure); the cancellation boundary sweep runs against the core
//! [`ProtocolRunner`] with a scripted [`RunControl`]; the kill/resume
//! properties go through the full [`Farm`] service with `pause_on_fault`
//! as the deterministic rendezvous.

use labchip::scenario::Runner;
use labchip::workload::{
    BatchDriver, NeverStop, Protocol, ProtocolRunner, RunControl, StopCause, WorkloadConfig,
};
use labchip_farm::{full_registry, Farm, FarmConfig, JobSpec, JobStatus, TenantQueue};
use labchip_manipulation::journal::{replay, FaultPlan, Journal};
use labchip_units::GridDims;
use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        array_side: 16,
        seed,
        ..WorkloadConfig::default()
    }
}

fn protocol(config: &WorkloadConfig, particles: usize) -> Protocol {
    Protocol::canned_cycle(
        GridDims::square(config.array_side),
        config.min_separation,
        particles,
    )
}

/// Uninterrupted baseline: final state hash and full journal.
fn baseline(config: &WorkloadConfig, protocol: &Protocol) -> (u64, Journal) {
    let driver = BatchDriver::new(*config);
    let (outcome, journal) = driver.runner().run_journaled(protocol, 0);
    (outcome.state.state_hash(), journal)
}

/// A scripted [`RunControl`] that cancels exactly at one phase boundary.
struct StopAt {
    boundary: usize,
}

impl RunControl for StopAt {
    fn should_stop(&self, next_phase: usize) -> bool {
        next_phase == self.boundary
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-robin fairness: while a tenant has queued work, it is served
    /// at least once in any window of `active tenants` consecutive pops —
    /// a tenant that floods the queue cannot starve the others. FIFO
    /// order within each tenant is checked on the same drain.
    #[test]
    fn tenant_rotation_never_starves_an_active_tenant(
        pushes in proptest::collection::vec((0u8..4, 0u32..1000), 1..40)
    ) {
        let mut queue = TenantQueue::new(64);
        let mut model: BTreeMap<String, VecDeque<u32>> = BTreeMap::new();
        for (tenant, item) in &pushes {
            let tenant = format!("t{tenant}");
            queue.push(&tenant, *item).expect("capacity covers every push");
            model.entry(tenant).or_default().push_back(*item);
        }
        // Distinct other tenants served since each active tenant was last
        // served (or admitted). Round-robin means no other tenant is ever
        // served *twice* inside that window — the no-starvation bound
        // (service within `#active tenants` pops) follows directly.
        let mut since_served: BTreeMap<String, Vec<String>> = model
            .keys()
            .map(|tenant| (tenant.clone(), Vec::new()))
            .collect();
        while let Some((tenant, item)) = queue.pop() {
            let expected = model.get_mut(&tenant).and_then(VecDeque::pop_front);
            prop_assert_eq!(expected, Some(item), "FIFO within tenant {}", &tenant);
            if model.get(&tenant).is_some_and(VecDeque::is_empty) {
                model.remove(&tenant);
                since_served.remove(&tenant);
            } else {
                since_served.insert(tenant.clone(), Vec::new());
            }
            for (waiting, served) in &mut since_served {
                if *waiting != tenant {
                    prop_assert!(
                        !served.contains(&tenant),
                        "tenant {} starved: {} was served twice while it waited",
                        waiting, &tenant
                    );
                    served.push(tenant.clone());
                }
            }
        }
        prop_assert!(model.is_empty(), "drain covers every pushed item");
    }

    /// The queue depth is a hard bound: `push` fails exactly when the
    /// queue is at capacity, the length never exceeds it, and a pop
    /// re-opens a slot.
    #[test]
    fn queue_depth_is_a_hard_bound_until_a_slot_frees(
        capacity in 1usize..8,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u8..3), 1..60)
    ) {
        let mut queue = TenantQueue::new(capacity);
        let mut len = 0usize;
        for (index, (push, tenant)) in ops.into_iter().enumerate() {
            if push {
                let accepted = queue.push(&format!("t{tenant}"), index).is_ok();
                prop_assert_eq!(accepted, len < capacity);
                if accepted {
                    len += 1;
                }
            } else {
                let popped = queue.pop().is_some();
                prop_assert_eq!(popped, len > 0);
                if popped {
                    len -= 1;
                }
            }
            prop_assert_eq!(queue.len(), len);
            prop_assert!(queue.len() <= capacity);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cancelling at *every* phase boundary and resuming reaches the
    /// uninterrupted final state, and the committed journal prefix plus
    /// the continuation journal is bit-identical to the uninterrupted
    /// journal — the core guarantee the farm's cooperative cancel and
    /// re-queue path is built on.
    #[test]
    fn cancel_at_any_boundary_then_resume_matches_the_baseline(
        particles in 4usize..12,
        seed in 1u64..1000
    ) {
        let config = workload(seed);
        let protocol = protocol(&config, particles);
        let driver = BatchDriver::new(config);
        let runner: ProtocolRunner<'_> = driver.runner();
        let (base_hash, base_journal) = {
            let (outcome, journal) = runner.run_journaled(&protocol, 0);
            (outcome.state.state_hash(), journal)
        };
        for boundary in 0..protocol.len() {
            let stopped = runner
                .run_controlled(&protocol, 0, None, &StopAt { boundary })
                .expect_err("the scripted control stops before the final phase");
            prop_assert!(
                matches!(stopped.cause, StopCause::Cancelled { next_phase } if next_phase == boundary)
            );
            prop_assert_eq!(stopped.checkpoint.completed.len(), boundary);
            let committed = stopped.journal.truncated(stopped.checkpoint.journal_offset);
            let (outcome, continuation) = runner
                .resume_controlled(&stopped.checkpoint, None, &NeverStop)
                .expect("an uncontested resume runs to completion");
            prop_assert_eq!(
                outcome.state.state_hash(), base_hash,
                "resume from boundary {} missed the baseline hash", boundary
            );
            let mut accumulated = committed;
            for event in continuation.events() {
                accumulated.record(event.clone());
            }
            prop_assert_eq!(
                &accumulated, &base_journal,
                "committed prefix + continuation diverged at boundary {}", boundary
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill-anywhere equivalence through the full farm service: a job
    /// killed by an injected fault anywhere in its run is re-queued with
    /// its checkpoint and resumes to the exact uninterrupted state — hash,
    /// journal length, and replay of the accumulated journal all match.
    #[test]
    fn a_kill_anywhere_in_the_run_resumes_to_the_uninterrupted_state(
        kill_tenths in 1u64..10,
        seed in 1u64..1000
    ) {
        let config = workload(seed);
        let protocol = protocol(&config, 10);
        let (base_hash, base_journal) = baseline(&config, &protocol);
        let events = base_journal.len() as u64;
        prop_assume!(events >= 10);
        let kill = (events * kill_tenths / 10).clamp(1, events - 1);
        let farm = Farm::new(FarmConfig {
            workers: 1,
            workload: config,
            pause_on_fault: true,
            ..FarmConfig::default()
        });
        let id = farm
            .submit(
                protocol,
                JobSpec::tenant("chaos").with_fault(FaultPlan::after(kill)),
            )
            .expect("the queue has room");
        // The injected kill fires mid-run; pause_on_fault holds the fleet
        // so the re-queued checkpointed job is observable before resume.
        farm.wait_paused();
        let record = farm.record(id).expect("job exists");
        prop_assert_eq!(&record.status, &JobStatus::Queued, "{}", &record.detail);
        prop_assert!(record.journal_events < events as usize);
        farm.start();
        farm.wait_idle();
        let record = farm.record(id).expect("job exists");
        prop_assert_eq!(&record.status, &JobStatus::Done, "{}", &record.detail);
        prop_assert_eq!(record.resumes, 1);
        prop_assert_eq!(record.state_hash, Some(format!("{base_hash:#018x}")));
        let accumulated = farm.accumulated_journal(id).expect("job exists");
        prop_assert_eq!(&accumulated, &base_journal);
        // Replay oracle: the accumulated journal reconstructs the final
        // chip state bit-for-bit from an empty chip.
        let replayed = replay(
            &accumulated,
            GridDims::square(config.array_side),
            config.min_separation,
        )
        .expect("the accumulated journal replays cleanly");
        prop_assert_eq!(replayed.state_hash(), base_hash);
    }

    /// Cancel-before-start versus run-to-completion: jobs cancelled while
    /// queued never execute a phase or touch a chip, and their departure
    /// does not disturb the surviving jobs' determinism.
    #[test]
    fn cancel_before_start_leaves_no_trace_and_survivors_stay_deterministic(
        jobs in 2usize..6,
        cancel_index in 0usize..6,
        seed in 1u64..1000
    ) {
        let cancel_index = cancel_index % jobs;
        let config = workload(seed);
        let protocol = protocol(&config, 8);
        let (base_hash, base_journal) = baseline(&config, &protocol);
        let farm = Farm::new(FarmConfig {
            workers: 2,
            workload: config,
            start_paused: true,
            ..FarmConfig::default()
        });
        let ids: Vec<_> = (0..jobs)
            .map(|index| {
                farm.submit(
                    protocol.clone(),
                    JobSpec::tenant(if index % 2 == 0 { "even" } else { "odd" }),
                )
                .expect("the queue has room")
            })
            .collect();
        prop_assert!(farm.cancel(ids[cancel_index]));
        farm.start();
        farm.wait_idle();
        for (index, id) in ids.iter().enumerate() {
            let record = farm.record(*id).expect("job exists");
            if index == cancel_index {
                prop_assert_eq!(&record.status, &JobStatus::Cancelled);
                prop_assert_eq!(record.phases_completed, 0);
                prop_assert_eq!(record.journal_events, 0);
                prop_assert_eq!(record.state_hash, None);
            } else {
                prop_assert_eq!(&record.status, &JobStatus::Done, "{}", &record.detail);
                prop_assert_eq!(record.state_hash, Some(format!("{base_hash:#018x}")));
                prop_assert_eq!(record.journal_events, base_journal.len());
            }
        }
    }
}

/// E15 runs through the scenario engine like any other scenario: the
/// full registry resolves it, `key=value` overrides land on its typed
/// config, and the shrunk sweep completes with zero divergences.
#[test]
fn e15_runs_through_the_engine_with_shrunk_overrides() {
    let mut runner = Runner::new(full_registry());
    for spec in [
        "tenants=2",
        "jobs_per_tenant=2",
        "worker_counts=[1,2]",
        "kill_jobs=1",
        "cancel_jobs=1",
        "array_side=16",
        "particles=8",
    ] {
        runner.set_override(spec).expect("spec is well-formed");
    }
    let outcomes = runner.run(&["e15"]).expect("E15 resolves and runs");
    assert_eq!(outcomes[0].id, "E15");
    let config = outcomes[0].config.as_object().expect("config serialises");
    assert_eq!(config.get("tenants").and_then(|v| v.as_u64()), Some(2));
    // One row per worker count plus the summary row.
    assert_eq!(outcomes[0].table.row_count(), 3);
    let output = outcomes[0].output.as_object().expect("output serialises");
    assert_eq!(
        output.get("total_divergences").and_then(|v| v.as_u64()),
        Some(0),
        "the fleet sweep must reproduce every baseline"
    );
    assert_eq!(
        output.get("queue_full_rejections").and_then(|v| v.as_u64()),
        Some(2),
        "4 submissions into a depth-2 queue reject exactly 2"
    );
}

/// Scheduling fairness through the live service: with one worker and a
/// flooding tenant, interleaved single jobs from other tenants are all
/// served — completion order respects the round-robin rotation, so no
/// tenant waits behind the flood.
#[test]
fn a_flooding_tenant_cannot_starve_the_others() {
    let config = workload(5);
    let protocol = protocol(&config, 6);
    let farm = Farm::new(FarmConfig {
        workers: 1,
        workload: config,
        start_paused: true,
        ..FarmConfig::default()
    });
    // Tenant "flood" swamps the queue before "a" and "b" each submit one.
    let flood: Vec<_> = (0..4)
        .map(|_| {
            farm.submit(protocol.clone(), JobSpec::tenant("flood"))
                .expect("the queue has room")
        })
        .collect();
    let a = farm.submit(protocol.clone(), JobSpec::tenant("a")).unwrap();
    let b = farm.submit(protocol.clone(), JobSpec::tenant("b")).unwrap();
    farm.start();
    farm.wait_idle();
    for id in flood.iter().chain([&a, &b]) {
        assert_eq!(farm.status(*id), Some(JobStatus::Done));
    }
    // Everyone finished; the rotation guarantee itself (a and b are
    // served after at most one flood job each) is proptested on
    // TenantQueue above — here we assert the service end of it: queue_ms
    // for a and b is bounded by three executions, not the whole flood.
    let flood_tail = farm.record(flood[3]).expect("job exists");
    let single = farm.record(b).expect("job exists");
    assert!(
        single.queue_ms <= flood_tail.queue_ms,
        "the single-job tenant ({:.1} ms) outwaited the flood tail ({:.1} ms)",
        single.queue_ms,
        flood_tail.queue_ms
    );
}
