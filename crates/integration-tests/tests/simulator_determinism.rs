//! Thread-count determinism of the parallel particle loop.
//!
//! `ChipSimulator::run` steps particles in parallel; each particle owns a
//! ChaCha8 stream derived from `(config.seed, particle index)`, so the
//! trajectories must be **bit-identical** for every worker count.

use labchip::prelude::*;
use labchip_units::{GridCoord, Meters, Seconds, Vec3};

fn populated_simulator(threads: usize, seed: u64) -> ChipSimulator {
    let mut chip = Biochip::small_reference(16);
    chip.program_single_cage(GridCoord::new(8, 8)).unwrap();
    let mut sim = ChipSimulator::new(
        chip,
        SimulationConfig {
            dt: Seconds::from_millis(0.5),
            brownian: true,
            seed,
        },
    )
    .with_threads(threads);
    // A mix of trapped and free particles across the array.
    sim.add_reference_particle_at(GridCoord::new(8, 8)).unwrap();
    for i in 0..7u32 {
        let cell = *sim.chip().reference_particle();
        sim.add_particle(
            cell,
            Vec3::new(
                (30 + 35 * i) as f64 * 1e-6,
                (290 - 30 * i) as f64 * 1e-6,
                (20 + 5 * i) as f64 * 1e-6,
            ),
        )
        .unwrap();
    }
    sim
}

fn positions(sim: &ChipSimulator) -> Vec<(f64, f64, f64)> {
    sim.particles()
        .iter()
        .map(|p| (p.state.position.x, p.state.position.y, p.state.position.z))
        .collect()
}

#[test]
fn one_and_four_threads_produce_identical_trajectories() {
    let mut serial = populated_simulator(1, 42);
    let mut parallel = populated_simulator(4, 42);
    for _ in 0..4 {
        serial.run(100);
        parallel.run(100);
        // Bit-identical at every checkpoint, not just the end.
        assert_eq!(positions(&serial), positions(&parallel));
    }
    assert_eq!(serial.elapsed(), parallel.elapsed());
}

#[test]
fn auto_thread_count_matches_pinned() {
    let mut auto = populated_simulator(0, 7);
    let mut pinned = populated_simulator(2, 7);
    auto.run(200);
    pinned.run(200);
    assert_eq!(positions(&auto), positions(&pinned));
}

#[test]
fn different_seeds_diverge() {
    let mut a = populated_simulator(1, 1);
    let mut b = populated_simulator(1, 2);
    a.run(100);
    b.run(100);
    assert_ne!(positions(&a), positions(&b));
}

#[test]
fn reprogramming_between_runs_stays_deterministic() {
    // The e3-style drag sequence — settle, shift the cage, settle again —
    // must also be thread-count independent.
    let run_sequence = |threads: usize| {
        let mut sim = populated_simulator(threads, 23);
        sim.run(200);
        sim.chip_mut()
            .program_single_cage(GridCoord::new(9, 8))
            .unwrap();
        sim.refresh_field();
        sim.run(200);
        positions(&sim)
    };
    assert_eq!(run_sequence(1), run_sequence(4));
}

#[test]
fn particles_are_clamped_by_their_own_radius() {
    // Two particles of different radii sediment on a cage-free plane; each
    // must come to rest at its own radius above the chip floor (the seed
    // applied one shared clamp from the largest radius to every particle).
    let mut chip = Biochip::small_reference(16);
    chip.array_mut().reset();
    let mut sim = ChipSimulator::new(
        chip,
        SimulationConfig {
            dt: Seconds::from_millis(0.5),
            brownian: false,
            seed: 5,
        },
    );
    let big = Particle::viable_cell(Meters::from_micrometers(10.0));
    let small = Particle::viable_cell(Meters::from_micrometers(4.0));
    let idx_big = sim
        .add_particle(big, Vec3::new(120e-6, 120e-6, 50e-6))
        .unwrap();
    let idx_small = sim
        .add_particle(small, Vec3::new(200e-6, 200e-6, 50e-6))
        .unwrap();
    sim.run_for(Seconds::new(30.0));
    let z_big = sim.particles()[idx_big].state.position.z;
    let z_small = sim.particles()[idx_small].state.position.z;
    assert!((z_big - 10e-6).abs() < 1e-9, "big cell rests at {z_big}");
    assert!(
        (z_small - 4e-6).abs() < 1e-9,
        "small cell must reach its own floor, rests at {z_small}"
    );
}
