//! Golden-snapshot regression lock for the full-array pipeline scenarios.
//!
//! `report run e10 e11 e12 --json` at a fixed seed and reduced sizes is
//! captured once into `tests/golden/pipeline_e10_e11_e12.json` and asserted
//! bit-identical forever after — the safety net under any refactor of the
//! workload driver (the ChipState / assay-phase decomposition rode on top of
//! exactly this lock). Only wall-clock-derived values are scrubbed before
//! comparison: planner wall time is real time, not simulated time, and
//! legitimately differs between runs.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p labchip-integration-tests --test golden_pipeline
//! ```

use labchip::scenario::{outcomes_to_json, Runner, ScenarioRegistry};
use labchip::workload::{BatchDriver, Protocol, WorkloadConfig};
use labchip_manipulation::journal::replay;
use labchip_units::GridDims;
use serde_json::Value;

/// JSON keys whose values derive from wall-clock time and are therefore
/// removed (recursively) before the snapshot comparison.
const VOLATILE_KEYS: &[&str] = &[
    "wall_ms",
    "plan_wall_ms",
    "moves_per_second",
    "planning",
    "sustained_moves_per_second",
    "planner_headroom",
];

/// Rendered-table columns holding formatted wall-clock figures; their cells
/// are blanked instead of dropped so the table shape stays locked.
const VOLATILE_COLUMNS: &[&str] = &["plan [ms]", "moves/s"];

fn scrub(value: &mut Value) {
    match value {
        Value::Object(map) => {
            for key in VOLATILE_KEYS {
                map.remove(key);
            }
            // A rendered ExperimentTable: blank the wall-clock columns.
            let volatile_columns: Vec<usize> = map
                .get("columns")
                .and_then(Value::as_array)
                .map(|columns| {
                    columns
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.as_str().is_some_and(|c| VOLATILE_COLUMNS.contains(&c)))
                        .map(|(i, _)| i)
                        .collect()
                })
                .unwrap_or_default();
            if !volatile_columns.is_empty() {
                if let Some(rows) = map.get_mut("rows").and_then(Value::as_array_mut) {
                    for row in rows.iter_mut().filter_map(Value::as_array_mut) {
                        for &index in &volatile_columns {
                            if let Some(cell) = row.get_mut(index) {
                                *cell = Value::String("-".to_owned());
                            }
                        }
                    }
                }
            }
            for entry in map.values_mut() {
                scrub(entry);
            }
        }
        Value::Array(items) => {
            for item in items {
                scrub(item);
            }
        }
        _ => {}
    }
}

/// The locked run: `report run e10 e11 e12 --json --serial --seed 20050307`
/// with size-reduction overrides (shared keys apply to every scenario that
/// has them, exactly as the CLI applies `--set`).
fn locked_document_with(extra_overrides: &[&str]) -> Value {
    let mut runner = Runner::new(ScenarioRegistry::all());
    runner.set_parallel(false);
    runner.set_base_seed(20_050_307);
    for spec in [
        "array_side=64",          // E10 + E11 + E12
        "particles=60",           // E10 + E12
        "density_steps=[1.0]",    // E10: one sweep point
        "astar_cap=16",           // E10: small A* subsample
        "astar_max_steps=256",    // E10
        "particles_per_cycle=60", // E11
        "cycles=2",               // E11
        "noise_scales=[0.0,4.0]", // E12
        "frame_counts=[2]",       // E12
        "threads=1",              // all three (results are thread-invariant)
    ]
    .iter()
    .chain(extra_overrides)
    {
        runner.set_override(spec).expect("spec is well-formed");
    }
    let outcomes = runner
        .run(&["e10", "e11", "e12"])
        .expect("locked scenarios run");
    let mut document = outcomes_to_json(&outcomes);
    scrub(&mut document);
    document
}

fn locked_document() -> Value {
    locked_document_with(&[])
}

#[test]
fn pipeline_json_output_is_bit_identical_to_the_golden_snapshot() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/pipeline_e10_e11_e12.json"
    );
    let document = locked_document();
    let text = serde_json::to_string_pretty(&document);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, text + "\n").expect("write golden snapshot");
        return;
    }

    let golden = std::fs::read_to_string(golden_path)
        .expect("golden snapshot exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        text + "\n",
        golden,
        "E10/E11/E12 JSON output drifted from the golden snapshot; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn locked_document_is_itself_deterministic() {
    // The lock is only meaningful if the scrubbed document is reproducible
    // within one build: two runs must serialise identically.
    let a = serde_json::to_string(&locked_document());
    let b = serde_json::to_string(&locked_document());
    assert_eq!(a, b);
}

/// Recursively forces every `"reuse_plans"` value to `false`, so a
/// warm-start document can be compared against the cold golden snapshot:
/// the config echo is the *only* place the knob is allowed to show up.
fn mask_reuse_plans(value: &mut Value) {
    match value {
        Value::Object(map) => {
            if let Some(flag) = map.get_mut("reuse_plans") {
                *flag = Value::Bool(false);
            }
            for entry in map.values_mut() {
                mask_reuse_plans(entry);
            }
        }
        Value::Array(items) => {
            for item in items {
                mask_reuse_plans(item);
            }
        }
        _ => {}
    }
}

#[test]
fn warm_start_pipeline_matches_the_golden_snapshot() {
    // The plan cache's contract is bit-identical output: the same locked
    // run with `reuse_plans=true` must reproduce the golden snapshot
    // exactly, config echo aside.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/pipeline_e10_e11_e12.json"
    );
    let golden: Value = serde_json::from_str(
        &std::fs::read_to_string(golden_path)
            .expect("golden snapshot exists (regenerate with UPDATE_GOLDEN=1)"),
    )
    .expect("golden snapshot parses");

    let mut warm = locked_document_with(&["reuse_plans=true"]);
    mask_reuse_plans(&mut warm);
    assert_eq!(
        warm, golden,
        "reuse_plans=true changed the E10/E11/E12 output — the plan cache \
         must be invisible outside wall-clock columns"
    );
}

#[test]
fn plan_reuse_leaves_the_journal_event_stream_identical() {
    // The event journal sees every chip-state mutation in order, so an
    // identical stream is a much stronger statement than matching reports:
    // the cached planner made the *same moves at the same times*.
    let config = WorkloadConfig {
        array_side: 48,
        seed: 20_050_307,
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(config.array_side);
    let sep = config.min_separation;
    let protocol = Protocol::canned_cycle(dims, sep, 40);

    let cold_driver = BatchDriver::new(config);
    let warm_driver = BatchDriver::new(WorkloadConfig {
        reuse_plans: true,
        ..config
    });

    for cycle in 0..2 {
        let (cold, cold_journal) = cold_driver.runner().run_journaled(&protocol, cycle);
        let (warm, warm_journal) = warm_driver.runner().run_journaled(&protocol, cycle);
        assert_eq!(
            cold_journal.events(),
            warm_journal.events(),
            "cycle {cycle}: warm and cold runs recorded different event streams"
        );
        assert_eq!(cold.state, warm.state, "cycle {cycle}");

        // And the shared journal replays to the same final chip state.
        let replayed = replay(&warm_journal, dims, sep).expect("journal replays");
        assert_eq!(replayed, warm.state, "cycle {cycle}: replay drifted");
    }

    // Repeat a cycle the cache has already seen: the rerun must be served
    // from cache (so the guard above is not vacuously passing on an idle
    // cache) and still record the exact same event stream.
    let before = warm_driver.route_cache_stats();
    let (_, first) = warm_driver.runner().run_journaled(&protocol, 0);
    let (_, second) = warm_driver.runner().run_journaled(&protocol, 0);
    assert_eq!(first.events(), second.events());
    let after = warm_driver.route_cache_stats();
    assert!(
        after.hits > before.hits,
        "rerunning an identical cycle never hit the plan cache ({before:?} -> {after:?})"
    );
}
