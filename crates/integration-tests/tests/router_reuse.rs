//! Equivalence lock on warm-start replanning: a [`RouterCache`]-backed
//! solve must be indistinguishable from a cold solve, for any problem, any
//! mutation history, and any thread count.
//!
//! The cache's contract is stronger than "still conflict-free": because
//! entries are keyed on the *entire* per-shard planning input, a warm solve
//! is bit-identical to a cold solve of the same problem. These properties
//! pin that down:
//!
//! * an unchanged problem re-solved warm replays from cache (zero new
//!   misses) and reproduces the cold outcome exactly;
//! * after arbitrary goal mutations, the warm solve of the mutated problem
//!   equals its cold solve — same routed set, same paths, still
//!   conflict-free — so reuse never costs routed fraction;
//! * the cached path is thread-invariant at 1, 2, 4 and 8 workers, warm
//!   and cold alike.

use labchip::workload::sort_problem;
use labchip_manipulation::routing::{RoutingOutcome, RoutingProblem};
use labchip_manipulation::sharding::{IncrementalRouter, RouterCache, ShardConfig};
use labchip_units::{GridCoord, GridDims};
use proptest::prelude::*;

fn router() -> IncrementalRouter {
    IncrementalRouter::new(ShardConfig {
        shard_side: 16,
        window: 8,
        ..ShardConfig::default()
    })
}

fn problem_for(side: u32, particles: usize, seed: u64) -> RoutingProblem {
    sort_problem(GridDims::square(side), particles, 2, seed)
}

/// Applies goal swaps (a permutation, so the goal set — and with it the
/// separation feasibility — is untouched) to produce a mutated problem.
fn swap_goals(problem: &RoutingProblem, swaps: &[(usize, usize)]) -> RoutingProblem {
    let mut mutated = problem.clone();
    let n = mutated.requests.len();
    for &(a, b) in swaps {
        let (a, b) = (a % n, b % n);
        let goal_a = mutated.requests[a].goal;
        mutated.requests[a].goal = mutated.requests[b].goal;
        mutated.requests[b].goal = goal_a;
    }
    mutated
}

/// The cells a goal permutation touched — what the workload's dirty
/// tracking would report for this mutation.
fn touched_cells(before: &RoutingProblem, after: &RoutingProblem) -> Vec<GridCoord> {
    before
        .requests
        .iter()
        .zip(&after.requests)
        .filter(|(b, a)| b.goal != a.goal)
        .flat_map(|(b, a)| [b.goal, a.goal])
        .collect()
}

fn routed_fraction(outcome: &RoutingOutcome, requested: usize) -> f64 {
    outcome.paths.len() as f64 / requested.max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn warm_resolve_of_an_unchanged_problem_is_bit_identical(
        side in 32u32..56,
        particles in 8usize..48,
        seed in 0u64..1000,
    ) {
        let router = router();
        let problem = problem_for(side, particles, seed);
        let cold = router.solve(&problem).expect("well-formed problem");

        let mut cache = RouterCache::new();
        let warm_first = router.solve_cached(&problem, &mut cache).expect("well-formed problem");
        let misses_after_first = cache.stats().misses;
        let warm_second = router.solve_cached(&problem, &mut cache).expect("well-formed problem");

        prop_assert_eq!(&warm_first, &cold);
        prop_assert_eq!(&warm_second, &cold);
        prop_assert_eq!(
            cache.stats().misses, misses_after_first,
            "re-solving an unchanged problem must be served entirely from cache"
        );
        prop_assert!(cache.stats().hits > 0);
    }

    #[test]
    fn mutated_goals_replan_exactly_like_a_cold_solve(
        side in 32u32..56,
        particles in 8usize..48,
        seed in 0u64..1000,
        swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..4),
    ) {
        let router = router();
        let problem = problem_for(side, particles, seed);

        // Prime the cache on the original problem, then mutate.
        let mut cache = RouterCache::new();
        router.solve_cached(&problem, &mut cache).expect("well-formed problem");
        let mutated = swap_goals(&problem, &swaps);
        cache.invalidate_cells(
            mutated.dims,
            router.effective_side(mutated.min_separation),
            &touched_cells(&problem, &mutated),
        );

        let cold = router.solve(&mutated).expect("well-formed problem");
        let warm = router.solve_cached(&mutated, &mut cache).expect("well-formed problem");

        prop_assert_eq!(&warm, &cold);
        prop_assert!(warm.is_conflict_free(mutated.min_separation));
        let requested = mutated.requests.len();
        prop_assert!(
            routed_fraction(&warm, requested) >= routed_fraction(&cold, requested),
            "plan reuse must never cost routed fraction"
        );
    }
}

proptest! {
    // Thread sweeps run four pools per case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn cached_solves_are_thread_invariant(
        side in 32u32..48,
        particles in 8usize..32,
        seed in 0u64..1000,
    ) {
        let router = router();
        let problem = problem_for(side, particles, seed);
        let mut reference: Option<(RoutingOutcome, RoutingOutcome)> = None;
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction is infallible");
            let mut cache = RouterCache::new();
            let (cold, warm) = pool.install(|| {
                let cold = router.solve_cached(&problem, &mut cache).expect("well-formed problem");
                let warm = router.solve_cached(&problem, &mut cache).expect("well-formed problem");
                (cold, warm)
            });
            match &reference {
                None => reference = Some((cold, warm)),
                Some((ref_cold, ref_warm)) => {
                    prop_assert_eq!(&cold, ref_cold, "cold solve diverged at {} threads", threads);
                    prop_assert_eq!(&warm, ref_warm, "warm solve diverged at {} threads", threads);
                }
            }
        }
    }
}
