//! Property tests of the sharded fleet (E16): for any seed, noise level,
//! recovery policy and shard grid, a sharded run is bit-identical to the
//! monolithic run — and killing any shard worker of the job group at any
//! phase boundary, then resuming, lands on the uninterrupted group's
//! hashes.
//!
//! These are the tentpole equivalence oracles, property-swept:
//!
//! * the sharded run's *global* journal is byte-identical to the
//!   monolithic journal (the mirror never feeds back into the global
//!   algorithm);
//! * the per-shard journals — cross-shard handoff events included —
//!   replay through the ordinary [`replay`] oracle to the live shard
//!   states, and the shards compose back to the monolithic state hash;
//! * the farm's [`ShardGroup`] (one worker per shard, barrier rendezvous
//!   at phase boundaries) reproduces every live shard hash, survives a
//!   kill of *any* worker at *any* interior boundary, and resumes from
//!   the whole-group checkpoint bit-identically;
//! * all of the above hold **with live parallel planning** too
//!   ([`WorkloadConfig::live_planning`]): the live-planned global journal
//!   equals the serial-planned one equals the monolithic one, and live
//!   group checkpoints carry the in-flight handoff queues.
//!
//! [`replay`]: labchip_manipulation::journal::replay

use labchip::workload::{BatchDriver, Protocol, RecoveryPolicy, WorkloadConfig};
use labchip_farm::{GroupKill, ShardGroup};
use labchip_manipulation::fleet::{FleetTopology, ShardedState};
use labchip_units::GridDims;
use proptest::prelude::*;

fn workload(seed: u64, noise_scale: f64, recovery_rounds: u32) -> WorkloadConfig {
    WorkloadConfig {
        array_side: 32,
        noise_scale,
        detection_frames: 2,
        recovery: RecoveryPolicy {
            max_rounds: recovery_rounds,
            rescan_factor: 2,
        },
        seed,
        ..WorkloadConfig::default()
    }
}

fn run_sharded_with(
    config: &WorkloadConfig,
    protocol: &Protocol,
    cols: u32,
    rows: u32,
) -> (
    labchip::workload::ProtocolOutcome,
    labchip_manipulation::journal::Journal,
    ShardedState,
) {
    let driver = BatchDriver::new(*config);
    let dims = GridDims::square(config.array_side);
    let sep = config.min_separation.max(1);
    let fleet = ShardedState::new(FleetTopology::new(dims, sep, cols, rows));
    driver.runner().run_sharded(protocol, 0, fleet)
}

fn canned(config: &WorkloadConfig, particles: usize) -> Protocol {
    Protocol::canned_cycle(
        GridDims::square(config.array_side),
        config.min_separation,
        particles,
    )
}

const GRIDS: [(u32, u32); 3] = [(1, 1), (2, 1), (2, 2)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_seed_noise_recovery_and_grid_replays_to_the_monolithic_hash(
        seed in 0u64..1_000,
        noisy in 0u8..2,
        recovery_rounds in 0u32..3,
        grid_choice in 0usize..GRIDS.len(),
    ) {
        let config = workload(seed, if noisy == 0 { 0.0 } else { 6.0 }, recovery_rounds);
        let protocol = canned(&config, 20);
        let driver = BatchDriver::new(config);
        let (baseline, baseline_journal) = driver.runner().run_journaled(&protocol, 0);

        let (cols, rows) = GRIDS[grid_choice];
        let dims = GridDims::square(config.array_side);
        let sep = config.min_separation.max(1);
        let fleet = ShardedState::new(FleetTopology::new(dims, sep, cols, rows));
        let (outcome, journal, fleet) = driver.runner().run_sharded(&protocol, 0, fleet);

        // The global run never notices the mirror.
        prop_assert_eq!(journal.events(), baseline_journal.events());
        prop_assert_eq!(outcome.state.state_hash(), baseline.state.state_hash());

        // The shards compose back to the monolithic state, and every
        // shard journal replays to its live shard — handoffs included.
        prop_assert_eq!(
            fleet.compose().state_hash(),
            baseline.state.state_hash(),
            "grid {}x{} composed to a different state", cols, rows
        );
        let fleet_outcome = fleet.into_outcome();
        prop_assert_eq!(fleet_outcome.replay_divergences(), 0);
        let total: usize = fleet_outcome
            .states
            .iter()
            .map(|state| state.particle_count())
            .sum();
        prop_assert_eq!(total, baseline.state.particle_count());
    }

    #[test]
    fn killing_any_shard_worker_then_resuming_matches_the_uninterrupted_group(
        seed in 0u64..1_000,
        grid_choice in 1usize..GRIDS.len(),
        kill_shard in 0usize..4,
        kill_boundary in 1usize..8,
    ) {
        let config = workload(seed, 4.0, 1);
        let protocol = canned(&config, 16);
        let (cols, rows) = GRIDS[grid_choice];
        let group = ShardGroup::plan(&config, &protocol, cols, rows);

        let expected = group.expected_hashes();
        let uninterrupted = group.run();
        prop_assert_eq!(uninterrupted.segments_folded, group.segment_count());
        prop_assert_eq!(uninterrupted.state_hashes(), expected.clone());

        let kill = GroupKill {
            shard: kill_shard % group.shard_count(),
            boundary: kill_boundary.clamp(1, group.segment_count() - 1),
        };
        let (stopped, checkpoint) = group.run_killed(kill);
        prop_assert_eq!(stopped.segments_folded, kill.boundary);
        prop_assert!(stopped.segments_folded < group.segment_count());

        // The whole-group checkpoint survives JSON and resumes to the
        // uninterrupted hashes.
        let restored = labchip_farm::GroupCheckpoint::from_json(&checkpoint.to_json())
            .expect("group checkpoints round trip");
        let resumed = group.resume(&restored);
        prop_assert_eq!(resumed.segments_folded, group.segment_count());
        prop_assert_eq!(resumed.state_hashes(), expected);
    }

    #[test]
    fn live_planned_runs_match_serial_planned_and_monolithic_runs(
        seed in 0u64..1_000,
        noisy in 0u8..2,
        recovery_rounds in 0u32..3,
        grid_choice in 0usize..GRIDS.len(),
    ) {
        let serial_config = workload(seed, if noisy == 0 { 0.0 } else { 6.0 }, recovery_rounds);
        let live_config = WorkloadConfig { live_planning: true, ..serial_config };
        let protocol = canned(&serial_config, 20);
        let (baseline, baseline_journal) =
            BatchDriver::new(serial_config).runner().run_journaled(&protocol, 0);

        let (cols, rows) = GRIDS[grid_choice];
        let (serial_outcome, serial_journal, serial_fleet) =
            run_sharded_with(&serial_config, &protocol, cols, rows);
        let (live_outcome, live_journal, live_fleet) =
            run_sharded_with(&live_config, &protocol, cols, rows);

        // Live-planned global journal == serial-planned == monolithic.
        prop_assert_eq!(live_journal.events(), serial_journal.events());
        prop_assert_eq!(live_journal.events(), baseline_journal.events());
        prop_assert_eq!(live_outcome.state.state_hash(), serial_outcome.state.state_hash());
        prop_assert_eq!(live_outcome.state.state_hash(), baseline.state.state_hash());

        // Compose-hash identity and zero replay divergences on the live path.
        prop_assert_eq!(live_fleet.compose().state_hash(), baseline.state.state_hash());
        prop_assert_eq!(serial_fleet.compose().state_hash(), baseline.state.state_hash());
        let live_stats = live_fleet.stats();
        prop_assert!(live_stats.live_windows > 0);
        if cols * rows == 1 {
            prop_assert_eq!(live_stats.seam_messages, 0);
        }
        prop_assert_eq!(live_fleet.into_outcome().replay_divergences(), 0);
    }

    #[test]
    fn live_group_kill_at_any_boundary_resumes_with_in_flight_queues(
        seed in 0u64..1_000,
        grid_choice in 1usize..GRIDS.len(),
        kill_shard in 0usize..4,
        kill_boundary in 1usize..8,
    ) {
        let config = WorkloadConfig {
            live_planning: true,
            ..workload(seed, 4.0, 1)
        };
        let protocol = canned(&config, 16);
        let (cols, rows) = GRIDS[grid_choice];
        let group = ShardGroup::plan(&config, &protocol, cols, rows);
        prop_assert!(group.is_live());

        let expected = group.expected_hashes();
        let uninterrupted = group.run();
        prop_assert_eq!(uninterrupted.state_hashes(), expected.clone());
        // Every folded export rode the seam channels, and every
        // announcement was retired by its matching import.
        prop_assert_eq!(uninterrupted.seam_messages as u64, group.stats().exports);
        prop_assert!(uninterrupted.in_flight.iter().all(Vec::is_empty));

        let kill = GroupKill {
            shard: kill_shard % group.shard_count(),
            boundary: kill_boundary.clamp(1, group.segment_count() - 1),
        };
        let (stopped, checkpoint) = group.run_killed(kill);
        prop_assert_eq!(stopped.segments_folded, kill.boundary);
        // The checkpoint snapshots one in-flight queue per shard and
        // survives JSON round-tripping with them.
        prop_assert_eq!(checkpoint.in_flight.len(), group.shard_count());
        prop_assert_eq!(&checkpoint.in_flight, &stopped.in_flight);
        let restored = labchip_farm::GroupCheckpoint::from_json(&checkpoint.to_json())
            .expect("group checkpoints round trip");
        prop_assert_eq!(&restored, &checkpoint);
        let resumed = group.resume(&restored);
        prop_assert_eq!(resumed.segments_folded, group.segment_count());
        prop_assert_eq!(resumed.state_hashes(), expected);
    }
}
