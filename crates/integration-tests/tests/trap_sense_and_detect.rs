//! Integration: physics → sensing. Cells trapped by the simulator are seen by
//! the capacitive readout, and frame averaging turns a marginal single-frame
//! detection into a reliable occupancy map.

use labchip::prelude::*;
use labchip_units::{GridCoord, Seconds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Simulate three trapped cells, then reconstruct the occupancy map through
/// the noisy capacitive channel and count the mistakes over the whole array.
fn detection_errors(frames: u32, seed: u64) -> usize {
    let mut chip = Biochip::small_reference(24);
    let sites = [
        GridCoord::new(6, 6),
        GridCoord::new(12, 12),
        GridCoord::new(18, 6),
    ];
    // Program the three cages.
    let pattern = CagePattern::new(
        chip.array().dims(),
        labchip_array::pattern::PatternKind::Custom(sites.to_vec()),
    )
    .expect("sites are on the array");
    chip.program_pattern(&pattern).expect("pattern applies");

    // Let the physics settle the cells into their cages.
    let mut sim = ChipSimulator::new(
        chip,
        SimulationConfig {
            dt: Seconds::from_millis(0.5),
            brownian: true,
            seed,
        },
    );
    for site in sites {
        sim.add_reference_particle_at(site).expect("site exists");
    }
    sim.run_for(Seconds::new(0.5));
    let truth = sim.true_occupancy();
    assert_eq!(truth.occupied_count(), 3, "all three cells stay trapped");

    // Read every electrode through the noisy capacitive channel.
    let sensor = sim.chip().capacitive_sensor();
    let detector = Detector::new(0.0, sensor.signal_for(Occupancy::Occupied).get())
        .expect("signal levels differ");
    let averager = FrameAverager::new(frames);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFEED);
    let mut errors = 0usize;
    for coord in (0..truth.dims().cols)
        .flat_map(|x| (0..truth.dims().rows).map(move |y| GridCoord::new(x, y)))
    {
        let level = match truth.get(coord) {
            Occupancy::Occupied => detector.occupied_level,
            Occupancy::Empty => detector.empty_level,
        };
        let measured = averager.measure(level, &sensor.noise, &mut rng);
        if detector.classify(measured) != truth.get(coord) {
            errors += 1;
        }
    }
    errors
}

#[test]
fn averaging_makes_the_occupancy_map_reliable() {
    // With the default noise budget a single frame misclassifies a noticeable
    // number of the 576 sites; 16-frame averaging brings it to (almost
    // always) zero — the E4 claim exercised end to end through the physics.
    let single = detection_errors(1, 3);
    let averaged = detection_errors(16, 3);
    assert!(averaged <= single);
    assert!(
        averaged <= 1,
        "averaged readout should be nearly error-free, got {averaged} errors"
    );
}

#[test]
fn trapped_and_untrapped_cells_are_distinguished_by_the_field() {
    // A viable (nDEP) cell stays in the cage; a non-viable (pDEP at 10 kHz)
    // cell does not levitate there — the dielectric discrimination that makes
    // viability sorting possible, checked through the full chip model.
    let mut chip = Biochip::small_reference(16);
    let site = GridCoord::new(8, 8);
    chip.program_single_cage(site).expect("site exists");
    let field = chip.field_model();
    let medium = *chip.medium();
    let freq = chip.drive_frequency();
    let center = chip.array().to_electrode_plane().electrode_center(site);

    let viable = Particle::viable_cell(labchip_units::Meters::from_micrometers(10.0));
    let dead = Particle::nonviable_cell(labchip_units::Meters::from_micrometers(10.0));
    let viable_lev = LevitationSolver::new(
        &viable,
        &medium,
        freq,
        labchip_units::Meters::from_micrometers(11.0),
        labchip_units::Meters::from_micrometers(70.0),
    )
    .solve(&field, (center.x, center.y));
    let dead_lev = LevitationSolver::new(
        &dead,
        &medium,
        freq,
        labchip_units::Meters::from_micrometers(11.0),
        labchip_units::Meters::from_micrometers(70.0),
    )
    .solve(&field, (center.x, center.y));

    assert!(viable_lev.is_some(), "viable cell is levitated in the cage");
    assert!(dead_lev.is_none(), "pDEP cell is not held by the cage");
}
