//! Integration: every experiment of the harness produces a well-formed table
//! whose shape matches the paper's narrative. Heavier experiments run with
//! reduced configurations to keep the suite fast.
//!
//! All runs go through the [`Scenario`] trait — the per-module free
//! `run(&Config)` shims are gone.

use labchip::experiments::{
    e1_scale, e2_technology, e4_sensing, e5_designflow, e6_fabrication, e7_routing, e8_centering,
    e9_assay, Experiment,
};
use labchip::scenario::{Scenario, ScenarioContext};

/// Runs a scenario with a silent context — the trait-based spelling of the
/// retired `module::run(&config)` shims.
fn run<S: Scenario>(scenario: S, config: &S::Config) -> S::Output {
    scenario.run(config, &mut ScenarioContext::silent(scenario.id()))
}

#[test]
fn experiment_catalogue_is_complete() {
    let ids: Vec<&str> = Experiment::all().iter().map(|e| e.id()).collect();
    assert_eq!(
        ids,
        vec!["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"]
    );
}

#[test]
fn e1_and_e6_default_tables_match_paper_claims() {
    let e1 = run(e1_scale::ScaleScenario, &e1_scale::Config::default());
    let row = e1.paper_scale_row().expect("320x320 swept");
    assert!(row.electrodes > 100_000);
    assert!(row.dense_cages > 20_000);

    let e6 = run(
        e6_fabrication::FabricationScenario,
        &e6_fabrication::Config::default(),
    );
    let dry = e6.dry_film_row().expect("dry film swept");
    assert!(dry.turnaround_days <= 3.0);
    assert!(dry.mask_cost_eur < 10.0);
}

#[test]
fn e2_shape_old_nodes_beat_new_nodes() {
    let results = run(
        e2_technology::TechnologyScenario,
        &e2_technology::Config::default(),
    );
    let first = results.rows.first().unwrap();
    let last = results.rows.last().unwrap();
    assert!(first.holding_force_pn > 2.0 * last.holding_force_pn);
    assert!(first.mask_set_cost_keur < last.mask_set_cost_keur);
}

#[test]
fn e4_shape_snr_grows_as_sqrt_n() {
    let results = run(
        e4_sensing::SensingScenario,
        &e4_sensing::Config {
            frame_counts: vec![1, 16],
            trials: 500,
            ..e4_sensing::Config::default()
        },
    );
    let gain = results.rows[1].snr / results.rows[0].snr;
    assert!(gain > 2.5 && gain < 4.5, "gain = {gain}");
}

#[test]
fn e5_shape_prototyping_wins_under_2005_uncertainty() {
    let results = run(
        e5_designflow::DesignFlowScenario,
        &e5_designflow::Config {
            trials: 150,
            ..e5_designflow::Config::default()
        },
    );
    assert!(results.rows[0].speedup > 1.5);
}

#[test]
fn e7_shape_router_beats_baseline_at_density() {
    let results = run(
        e7_routing::RoutingScenario,
        &e7_routing::Config {
            array_side: 32,
            particle_counts: vec![24],
            ..e7_routing::Config::default()
        },
    );
    let astar = results.rows_for("A*")[0];
    let greedy = results.rows_for("greedy")[0];
    assert!(astar.success_rate >= greedy.success_rate);
    assert!(astar.success_rate > 0.9);
}

#[test]
fn e8_and_e9_tables_are_well_formed() {
    let e8 = run(
        e8_centering::CenteringScenario,
        &e8_centering::Config::default(),
    );
    assert!(e8.rows.iter().all(|r| r.final_yield > 0.9));
    let table = e8.to_table();
    assert_eq!(table.row_count(), e8.rows.len());

    let e9 = run(e9_assay::AssayScenario, &e9_assay::Config::default());
    assert_eq!(e9.cells_recovered, 1);
    assert!(e9.to_table().to_string().contains("total assay"));
}
