//! This crate exists only to host the workspace-level integration tests in
//! its `tests/` directory; it exports nothing.
